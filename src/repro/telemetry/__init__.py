"""repro.telemetry — tracing, metrics, and profiling hooks.

The measurement substrate of the reproduction: hierarchical trace spans
(:mod:`~repro.telemetry.spans`), a deterministic-snapshot metrics
registry (:mod:`~repro.telemetry.metrics`), exporters for Chrome
trace-event JSON and Prometheus text (:mod:`~repro.telemetry.exporters`),
aggregated phase profiling of the simulator hot loop
(:mod:`~repro.telemetry.profiler`), and the propagating on/off context
(:mod:`~repro.telemetry.context`).

Everything is off by default; instrumented call sites pay one
:func:`current` guard check when disabled, and fault-free runs stay
byte-identical to an uninstrumented build. Enable via
``repro-cli mix/sweep --trace-out FILE --metrics-out FILE``, the
``REPRO_TRACE`` environment variable (honoured by the benchmarks and
worker processes), or :func:`configure` in code. See
``docs/observability.md`` for the span taxonomy, metric names and the
overhead contract.
"""

from repro.telemetry.context import (
    TRACE_ENV_VAR,
    TelemetryContext,
    configure,
    current,
    deactivate,
    init_from_env,
    use,
)
from repro.telemetry.exporters import (
    append_trace_part,
    chrome_trace_events,
    merged_trace_events,
    metrics_json,
    prometheus_text,
    write_chrome_trace,
    write_merged_chrome_trace,
    write_prometheus,
)
from repro.telemetry.metrics import (
    DURATION_BUCKETS,
    Counter,
    EventCounterSink,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.profiler import SIMULATOR_PHASES, PhaseProfile
from repro.telemetry.spans import Span, Tracer

__all__ = [
    "TRACE_ENV_VAR",
    "TelemetryContext",
    "configure",
    "current",
    "deactivate",
    "init_from_env",
    "use",
    "Span",
    "Tracer",
    "DURATION_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EventCounterSink",
    "SIMULATOR_PHASES",
    "PhaseProfile",
    "append_trace_part",
    "chrome_trace_events",
    "merged_trace_events",
    "metrics_json",
    "prometheus_text",
    "write_chrome_trace",
    "write_merged_chrome_trace",
    "write_prometheus",
]
