"""The process-wide telemetry context and its propagation rules.

Telemetry is **off by default**: :func:`current` returns ``None`` until
:func:`configure` installs a :class:`TelemetryContext`, and every
instrumented call site guards on that single variable — the disabled fast
path is one attribute read and one ``is None`` branch, no closures, no
allocation, so fault-free runs stay byte-identical to an uninstrumented
build.

Propagation:

* **Threads** — the context is a process-wide global; the tracer inside
  it keeps per-thread span stacks, so threads share one context and
  produce correctly-nested per-thread sub-trees.
* **Processes** — worker processes cannot inherit live objects, so they
  re-initialise from the ``REPRO_TRACE`` environment variable
  (:func:`init_from_env`, called by the worker-side spec executor).
  Contexts built that way auto-flush their spans to
  ``<trace_path>.part-<pid>`` files after every executed spec;
  :func:`repro.telemetry.exporters.merged_trace_events` folds the parts
  back into the parent's trace.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer

__all__ = [
    "TRACE_ENV_VAR",
    "TelemetryContext",
    "current",
    "configure",
    "deactivate",
    "use",
    "init_from_env",
]

#: Environment variable naming the trace output file; setting it opts
#: worker processes (and the benchmarks) into tracing + metrics.
TRACE_ENV_VAR = "REPRO_TRACE"


class TelemetryContext:
    """One activation of the telemetry subsystem.

    Parameters
    ----------
    tracer:
        Span collector, or ``None`` to record metrics only.
    metrics:
        Metrics registry, or ``None`` to trace only.
    trace_path:
        Where the Chrome trace should eventually be written (the caller
        exports; the context only remembers the destination).
    metrics_path:
        Where the Prometheus-style text should eventually be written.
    autoflush:
        True for env-initialised worker contexts: the spec executor
        flushes finished spans to a per-pid part file after every spec.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        autoflush: bool = False,
    ):
        self.tracer = tracer
        self.metrics = metrics
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.autoflush = autoflush
        self.owner_pid = os.getpid()

    def flush_part(self) -> Optional[str]:
        """Append finished spans to this process's trace part file.

        Returns the part-file path, or ``None`` when there is nothing to
        flush (no tracer, no destination, or no finished spans). Used by
        worker processes, whose spans would otherwise die with them.
        """
        if self.tracer is None or self.trace_path is None:
            return None
        spans = self.tracer.drain()
        if not spans:
            return None
        from repro.telemetry.exporters import append_trace_part

        path = f"{self.trace_path}.part-{os.getpid()}"
        append_trace_part(path, spans)
        return path


_current: Optional[TelemetryContext] = None


def current() -> Optional[TelemetryContext]:
    """The active context, or ``None`` when telemetry is disabled.

    This is the guard every instrumented call site checks first.
    """
    return _current


def configure(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    autoflush: bool = False,
) -> TelemetryContext:
    """Install (and return) a new active :class:`TelemetryContext`.

    Replaces any previously active context. Passing neither a tracer nor
    a registry still activates the context (cheap counters only), but
    callers normally provide at least one.
    """
    global _current
    _current = TelemetryContext(
        tracer=tracer,
        metrics=metrics,
        trace_path=trace_path,
        metrics_path=metrics_path,
        autoflush=autoflush,
    )
    return _current


def deactivate() -> None:
    """Return to the disabled (no-op) state."""
    global _current
    _current = None


@contextmanager
def use(context: TelemetryContext) -> Iterator[TelemetryContext]:
    """Temporarily activate *context* (tests, scoped measurements)."""
    global _current
    previous = _current
    _current = context
    try:
        yield context
    finally:
        _current = previous


def init_from_env(environ=None) -> Optional[TelemetryContext]:
    """Activate telemetry from :data:`TRACE_ENV_VAR` when set.

    No-op (returning the existing context, possibly ``None``) when a
    context is already active or the variable is unset. Contexts created
    here are marked ``autoflush`` — this is the worker-process entry
    point, where spans must be flushed to part files per spec.
    """
    if _current is not None:
        return _current
    env = os.environ if environ is None else environ
    trace_path = env.get(TRACE_ENV_VAR)
    if not trace_path:
        return None
    return configure(
        tracer=Tracer(),
        metrics=MetricsRegistry(),
        trace_path=trace_path,
        autoflush=True,
    )
