"""repro — reproduction of "Symbiotic Scheduling for Shared Caches in
Multi-Core Systems Using Memory Footprint Signature" (ICPP 2011).

The package is organised by subsystem:

* :mod:`repro.core` — Bloom-filter signature hardware (the contribution)
* :mod:`repro.cache` — shared-cache multi-core substrate
* :mod:`repro.workloads` — synthetic SPEC/PARSEC-like trace generators
* :mod:`repro.sched` — OS scheduling model
* :mod:`repro.virt` — Xen-like hypervisor layer
* :mod:`repro.alloc` — the three symbiotic allocation algorithms
* :mod:`repro.perf` — closed-loop timing simulation and experiments
* :mod:`repro.jobs` — parallel experiment orchestration with a
  content-addressed result cache
* :mod:`repro.analysis` — result handling and figure builders

The most common entry points are re-exported here; see README.md for a
quickstart and DESIGN.md for the full system inventory.
"""

from repro.alloc import (
    InterferenceGraphPolicy,
    TwoPhasePolicy,
    UserLevelMonitor,
    WeightedInterferenceGraphPolicy,
    WeightSortPolicy,
)
from repro.core import (
    BloomFilter,
    CountingBloomFilter,
    SignatureConfig,
    SignatureUnit,
)
from repro.perf import (
    MulticoreSimulator,
    TimingModel,
    build_tasks,
    core2duo,
    p4xeon,
    quadcore_shared,
    run_mix,
    run_solo,
    two_phase,
)

# Imported after repro.perf: the experiment drivers and the job specs
# reference each other, and the cycle only resolves perf-first.
from repro.jobs import Orchestrator, RunSpec
from repro.virt import Hypervisor, VirtualMachine, vm_two_phase
from repro.workloads import (
    parsec_pool,
    parsec_profile,
    spec_pool,
    spec_profile,
)

__version__ = "1.0.0"

__all__ = [
    "InterferenceGraphPolicy",
    "TwoPhasePolicy",
    "UserLevelMonitor",
    "WeightedInterferenceGraphPolicy",
    "WeightSortPolicy",
    "BloomFilter",
    "CountingBloomFilter",
    "SignatureConfig",
    "SignatureUnit",
    "Orchestrator",
    "RunSpec",
    "MulticoreSimulator",
    "TimingModel",
    "build_tasks",
    "core2duo",
    "p4xeon",
    "quadcore_shared",
    "run_mix",
    "run_solo",
    "two_phase",
    "Hypervisor",
    "VirtualMachine",
    "vm_two_phase",
    "parsec_pool",
    "parsec_profile",
    "spec_pool",
    "spec_profile",
    "__version__",
]
