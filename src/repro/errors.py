"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "SignatureError",
    "CounterSaturationError",
    "SchedulingError",
    "AllocationError",
    "WorkloadError",
    "SimulationError",
    "JobError",
    "ServiceError",
    "ProtocolError",
    "ServiceTimeout",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with invalid or inconsistent parameters."""


class GeometryError(ConfigurationError):
    """A cache/filter geometry parameter is invalid (non power-of-two, ...)."""


class SignatureError(ReproError):
    """Invalid use of the Bloom-filter signature infrastructure."""


class CounterSaturationError(SignatureError):
    """A counting-Bloom-filter counter over/underflowed in strict mode.

    The paper (footnote 1, Section 2.4) requires the counter width ``L`` to
    be "wide enough to prevent saturation"; strict mode turns a saturation
    event into this error instead of silently clamping.
    """


class SchedulingError(ReproError):
    """The OS/hypervisor scheduling model was driven into an invalid state."""


class AllocationError(ReproError):
    """A resource-allocation policy received unusable input."""


class WorkloadError(ReproError, ValueError):
    """A workload/trace generator was misconfigured."""


class SimulationError(ReproError):
    """The closed-loop performance simulation reached an invalid state."""


class JobError(ReproError):
    """A job-orchestration failure: a worker crashed past its retry
    budget, a job timed out, or a run spec could not be executed."""


class ServiceError(ReproError):
    """The online scheduling service was driven into an invalid state
    (duplicate admission, unknown process id, submit after shutdown)."""


class ProtocolError(ServiceError):
    """A malformed or oversized message on the service wire protocol."""


class ServiceTimeout(ServiceError):
    """A service client deadline expired (connect or read).

    Raised instead of blocking forever on a dead or wedged peer; the
    caller cannot tell whether the request was applied, so any retry
    must reuse the same ``(client_id, seq)`` pair and rely on the
    server's idempotency table."""
