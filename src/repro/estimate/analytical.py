"""Closed-form co-run miss-rate and user-time prediction.

The analytical backend composes the per-task :class:`ReuseProfile`\\ s
into a shared-cache performance prediction without simulating a single
interleaved reference (the Barai-style reuse-distance composition,
adapted to this simulator's timing and restart semantics):

1. **Pressure.** A reuse of task *t* with reuse time ``rt`` (own
   references) survives in the cache iff the *total* data volume touched
   meanwhile still fits. That volume is ``V(rt) = fp_t(rt) +
   Σ_j fp_ext_j(rt · ρ_j)`` where ``ρ_j`` converts *t*'s reference count
   into co-runner *j*'s over the same wall-clock span, and ``fp_ext``
   extends *j*'s footprint across restarts (fresh address slices).
2. **Conflict model.** The cache is set-associative, not fully
   associative: with volume ``V`` spread over ``S`` sets, the occupancy
   of *t*'s set is ~Poisson(``V/S``) and the reuse misses when at least
   ``W`` (ways) intervening blocks land in it —
   ``p_miss = P(Poisson(V/S) ≥ W) = gammainc(W, V/S)``.
3. **Timing fixed point.** Miss rates determine cycles-per-access
   (through the machine's :class:`~repro.perf.timing.TimingModel`,
   including the shared-bus queue term), which determine the relative
   rates ``ρ``, which determine miss rates. A handful of damped
   iterations converges far inside the model error.

Grouped mappings (several tasks per core) are handled uniformly: a task
in a group of ``g`` runs ``1/g`` of its core's wall time, so one of its
reuses spans ``rt · cpa_t · g_t`` wall cycles and every co-runner *j*
(same core or not) issues ``ρ_j = (cpa_t · g_t)/(cpa_j · g_j)``
references per reference of *t*. Same-core tasks contribute cache
pressure but not bus queueing (they never execute concurrently), exactly
mirroring the simulator's ``other_intensity`` accounting.

Accuracy (validated against the exact simulator, see
``benchmarks/bench_estimate_accuracy.py``): solo miss rates match to
~1e-3; directed pairwise degradations have mean absolute error ~0.003
across the SPEC pool at 1M instructions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import gammainc

from repro.errors import ConfigurationError
from repro.estimate.options import EstimatorOptions
from repro.estimate.reuse import ReuseProfile, profile_task
from repro.perf.experiment import PairwiseResult
from repro.perf.machine import MachineConfig
from repro.perf.runner import DEFAULT_INSTRUCTIONS, build_tasks
from repro.perf.simulator import SimulationResult, TaskResult
from repro.sched.affinity import Mapping
from repro.sched.process import SimTask

__all__ = [
    "TaskPrediction",
    "MappingPrediction",
    "AnalyticalModel",
    "analytical_simulation",
    "predicted_pairwise",
]


@dataclass(frozen=True)
class TaskPrediction:
    """Predicted steady-state behaviour of one task in one placement."""

    index: int
    name: str
    miss_rate: float
    cycles_per_access: float
    #: Own execution cycles to first completion (the quantity the paper's
    #: "user time" measures — wall time excluded while other tasks run).
    user_cycles: float


@dataclass(frozen=True)
class MappingPrediction:
    """Prediction for one whole mapping (groups of profile indices)."""

    groups: Tuple[Tuple[int, ...], ...]
    tasks: Tuple[TaskPrediction, ...]
    wall_cycles: float
    l2_miss_rate: float

    def task(self, name: str) -> TaskPrediction:
        """Look up a prediction by task name (first match)."""
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(f"no task named {name!r}")

    def user_time(self, name: str) -> float:
        """Predicted user time of the named task."""
        return self.task(name).user_cycles


def _validate_machine(machine: MachineConfig) -> None:
    """Reject machine features the closed-form model cannot express."""
    if machine.l1 is not None:
        raise ConfigurationError(
            "the analytical backend models the L2 reference stream "
            "directly and cannot compose private L1 filtering; use the "
            "exact or sampled backend for L1-bearing machines"
        )


class AnalyticalModel:
    """Composes task reuse profiles into mapping-level predictions.

    Parameters
    ----------
    machine:
        The platform (shared or private L2; L1-less).
    profiles:
        One :class:`ReuseProfile` per task, in task-index order.
    options:
        Estimator knobs; only ``fixed_point_iterations`` is consumed
        here.
    """

    def __init__(
        self,
        machine: MachineConfig,
        profiles: Sequence[ReuseProfile],
        options: Optional[EstimatorOptions] = None,
    ):
        if not profiles:
            raise ConfigurationError("need at least one reuse profile")
        _validate_machine(machine)
        self.machine = machine
        self.profiles = list(profiles)
        self.options = options or EstimatorOptions()
        geometry = machine.l2.geometry
        self._sets = geometry.num_sets
        self._ways = geometry.ways
        self._solo: Dict[int, TaskPrediction] = {}
        # Compress each profile's reuse times into count-weighted
        # log-spaced bins: the footprint curve is smooth, so evaluating
        # it at a bin's mean reuse time instead of every member costs
        # well under the model's own error while making a prediction
        # O(reuse_bins) per task — the property that lets one profiling
        # pass amortise over hundreds of predicted mappings.
        self._reuse_values: List[np.ndarray] = []
        self._reuse_weights: List[np.ndarray] = []
        for prof in self.profiles:
            values, weights = prof.binned_reuses(self.options.reuse_bins)
            self._reuse_values.append(values)
            self._reuse_weights.append(weights)

    # -- building blocks ------------------------------------------------
    def _miss_rate(
        self, index: int, peers: Sequence[Tuple[int, float]]
    ) -> float:
        """Expected miss rate of one task under co-runner pressure.

        *peers* lists ``(profile index, ρ)`` pairs: co-runners sharing
        this task's cache and their reference-rate ratios.
        """
        prof = self.profiles[index]
        rts = self._reuse_values[index]
        if len(rts) == 0:
            return 1.0
        volume = prof.footprint(np.minimum(rts, prof.refs).astype(np.int64))
        for j, rho in peers:
            volume = volume + self.profiles[j].footprint_extended(rts * rho)
        p_miss = gammainc(self._ways, volume / self._sets)
        colds = prof.refs - len(prof.reuse_times)
        reuses = float(p_miss @ self._reuse_weights[index])
        return float((colds + reuses) / prof.refs)

    def _cycles_per_access(
        self, index: int, miss_rate: float, other_intensity: float
    ) -> float:
        """Mean cycles charged per L2 reference of one task."""
        prof = self.profiles[index]
        timing = self.machine.timing
        instructions_per_access = 1000.0 / prof.accesses_per_kinstr
        return (
            instructions_per_access * timing.cpi_base
            + (1.0 - miss_rate) * timing.l2_hit_cycles
            + miss_rate * timing.miss_cycles(prof.mlp, other_intensity)
            + timing.per_access_cycles
        )

    # -- predictions ----------------------------------------------------
    def predict_solo(self, index: int) -> TaskPrediction:
        """The task alone on the machine (degradation baseline)."""
        if index not in self._solo:
            prof = self.profiles[index]
            mr = self._miss_rate(index, [])
            cpa = self._cycles_per_access(index, mr, 0.0)
            self._solo[index] = TaskPrediction(
                index=index,
                name=prof.name,
                miss_rate=mr,
                cycles_per_access=cpa,
                user_cycles=cpa * prof.total_refs,
            )
        return self._solo[index]

    def predict(
        self, groups: Sequence[Sequence[int]]
    ) -> MappingPrediction:
        """Predict every task's co-run behaviour under one mapping.

        *groups* assigns profile indices to cores by position (the run
        spec's mapping convention); every profile index must appear
        exactly once.
        """
        norm = tuple(tuple(sorted(int(i) for i in g)) for g in groups)
        members = [i for g in norm for i in g]
        if sorted(members) != list(range(len(self.profiles))):
            raise ConfigurationError(
                f"mapping {norm} must place each of {len(self.profiles)} "
                "tasks exactly once"
            )
        core_of = {i: c for c, g in enumerate(norm) for i in g}
        gsize = {i: len(norm[core_of[i]]) for i in members}

        # Seed the fixed point with solo behaviour.
        mr = {i: self.predict_solo(i).miss_rate for i in members}
        cpa = {i: self.predict_solo(i).cycles_per_access for i in members}
        # The own-footprint volume term never changes across iterations,
        # and each co-runner's footprint_extended serves every task it
        # pressures in one batched evaluation — the fixed point costs a
        # handful of array calls per iteration, not one per task pair.
        own = {
            i: self.profiles[i].footprint(
                np.minimum(
                    self._reuse_values[i], self.profiles[i].refs
                ).astype(np.int64)
            )
            for i in members
        }
        pressured = {
            j: [
                i
                for i in members
                if i != j
                and (self.machine.shared_l2 or core_of[i] == core_of[j])
            ]
            for j in members
        }
        for _ in range(self.options.fixed_point_iterations):
            volume = {i: own[i] for i in members}
            for j in members:
                targets = pressured[j]
                if not targets:
                    continue
                queries = [
                    self._reuse_values[i]
                    * ((cpa[i] * gsize[i]) / (cpa[j] * gsize[j]))
                    for i in targets
                ]
                contributions = self.profiles[j].footprint_extended(
                    np.concatenate(queries)
                )
                offset = 0
                for i, query in zip(targets, queries):
                    volume[i] = volume[i] + contributions[
                        offset : offset + len(query)
                    ]
                    offset += len(query)
            new_mr = {}
            for i in members:
                prof = self.profiles[i]
                if len(self._reuse_values[i]) == 0:
                    new_mr[i] = 1.0
                    continue
                p_miss = gammainc(self._ways, volume[i] / self._sets)
                colds = prof.refs - len(prof.reuse_times)
                new_mr[i] = float(
                    (colds + p_miss @ self._reuse_weights[i]) / prof.refs
                )
            mr = new_mr
            new_cpa = {}
            for i in members:
                other = sum(
                    mr[j] / (cpa[j] * gsize[j])
                    for j in members
                    if core_of[j] != core_of[i]
                )
                new_cpa[i] = self._cycles_per_access(i, mr[i], other)
            cpa = new_cpa

        tasks = tuple(
            TaskPrediction(
                index=i,
                name=self.profiles[i].name,
                miss_rate=mr[i],
                cycles_per_access=cpa[i],
                user_cycles=cpa[i] * self.profiles[i].total_refs,
            )
            for i in sorted(members)
        )
        by_index = {t.index: t for t in tasks}
        wall = max(
            (sum(by_index[i].user_cycles for i in g) for g in norm if g),
            default=0.0,
        )
        total_refs = sum(self.profiles[i].refs for i in members)
        agg = (
            sum(mr[i] * self.profiles[i].refs for i in members) / total_refs
            if total_refs
            else 0.0
        )
        return MappingPrediction(
            groups=norm, tasks=tasks, wall_cycles=wall, l2_miss_rate=agg
        )


def analytical_simulation(
    machine: MachineConfig,
    tasks: Sequence[SimTask],
    *,
    mapping: Optional[Mapping] = None,
    options: Optional[EstimatorOptions] = None,
) -> SimulationResult:
    """Predict a mix analytically, packaged as a |SimulationResult|.

    The drop-in replacement for the exact
    :meth:`~repro.perf.simulator.MulticoreSimulator.run` on plain
    measurement runs: same result type, no interleaved simulation. The
    mapping (tid groups, like the simulator's) defaults to round-robin
    placement in task order.

    .. |SimulationResult| replace::
       :class:`~repro.perf.simulator.SimulationResult`
    """
    options = options or EstimatorOptions()
    profiles = [profile_task(t, options.profile_refs) for t in tasks]
    model = AnalyticalModel(machine, profiles, options)
    tid_to_index = {t.tid: i for i, t in enumerate(tasks)}
    if mapping is None:
        groups: List[List[int]] = [[] for _ in range(machine.num_cores)]
        for i in range(len(tasks)):
            groups[i % machine.num_cores].append(i)
    else:
        groups = [
            [tid_to_index[tid] for tid in g] for g in mapping.groups
        ]
    prediction = model.predict(groups)
    by_index = {t.index: t for t in prediction.tasks}
    return SimulationResult(
        machine=machine.name,
        wall_cycles=prediction.wall_cycles,
        tasks=[
            TaskResult(
                name=task.name,
                tid=task.tid,
                process_id=task.process_id,
                first_completion_cycles=by_index[i].user_cycles,
                user_cycles=by_index[i].user_cycles,
                completions=1,
                context_switches=0,
            )
            for i, task in enumerate(tasks)
        ],
        l2_miss_rate=prediction.l2_miss_rate,
    )


def predicted_pairwise(
    machine: MachineConfig,
    names: Sequence[str],
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    options: Optional[EstimatorOptions] = None,
) -> PairwiseResult:
    """Analytical stand-in for :func:`~repro.perf.experiment.pairwise_shared`.

    Profiles each benchmark once, then predicts the solo baseline and
    every pair's co-run user times — the
    :class:`~repro.perf.experiment.PairwiseResult` feeds the existing
    degradation-matrix consumers unchanged. Cost is one profiling pass
    per benchmark plus closed-form arithmetic per pair, versus
    ``n + C(n,2)`` full simulations on the exact path.
    """
    options = options or EstimatorOptions()
    ordered = sorted(names)
    solo_times: Dict[str, float] = {}
    pair_times: Dict[Tuple[str, str], Dict[str, float]] = {}
    profiles: Dict[str, ReuseProfile] = {}
    for name in ordered:
        # Match the exact path's build: each benchmark profiled from the
        # same task a solo run would construct.
        task = build_tasks([name], instructions=instructions, seed=seed)[0]
        profiles[name] = profile_task(task, options.profile_refs)
        solo = AnalyticalModel(
            machine, [profiles[name]], options
        ).predict_solo(0)
        solo_times[name] = solo.user_cycles
    for a, b in itertools.combinations(ordered, 2):
        model = AnalyticalModel(
            machine, [profiles[a], profiles[b]], options
        )
        if machine.shared_l2 and machine.num_cores >= 2:
            groups: List[List[int]] = [[0], [1]]
        else:
            groups = [[0, 1]] + [[] for _ in range(machine.num_cores - 1)]
        prediction = model.predict(groups)
        pair_times[(a, b)] = {
            a: prediction.user_time(a),
            b: prediction.user_time(b),
        }
    return PairwiseResult(
        names=tuple(ordered), solo_times=solo_times, pair_times=pair_times
    )
