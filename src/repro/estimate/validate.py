"""Cross-validation of the fast-path backends against exact simulation.

The estimate backends are only useful if the *decisions* they drive
match the decisions exact simulation would drive. This module measures
exactly that, per mix of benchmarks:

1. build the pairwise-degradation matrix from each backend (exact via
   :func:`~repro.perf.experiment.pairwise_shared`, analytical via
   :func:`~repro.estimate.analytical.predicted_pairwise`, sampled via
   :func:`sampled_pairwise`);
2. feed each matrix to three mapping algorithms (greedy weight-sort
   pairing, exhaustive MIN-CUT, solo-time-weighted MIN-CUT) and record
   whether the fast backend's choice is *decision-equivalent* to
   exact's for every algorithm — identical, or costing no more than
   ``tolerance`` extra intra-group interference when priced on the
   **exact** matrix (cache-insensitive mixes tie every mapping; an
   arbitrary tie-break is not a wrong decision);
3. simulate the whole mix under its default mapping once per backend
   and record the aggregate L2 miss-rate error.

:func:`validate_mixes` aggregates this over a mix list into a
:class:`ValidationSummary` whose :meth:`~ValidationSummary.to_dict`
feeds ``benchmarks/bench_estimate_accuracy.py`` and the CI
``estimate-accuracy`` gate (agreement floor + miss-rate MAPE ceiling).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.alloc.mincut import intra_weight, partition_min_cut
from repro.errors import ConfigurationError
from repro.estimate.analytical import analytical_simulation, predicted_pairwise
from repro.estimate.options import EstimatorOptions
from repro.estimate.sampled import sampled_simulation
from repro.perf.experiment import PairwiseResult, pairwise_shared
from repro.perf.machine import MachineConfig
from repro.perf.runner import DEFAULT_INSTRUCTIONS, build_tasks, run_mix
from repro.sched.affinity import Mapping

__all__ = [
    "MixValidation",
    "ValidationSummary",
    "sampled_pairwise",
    "degradation_matrix",
    "candidate_mappings",
    "validate_mixes",
]

#: The mapping algorithms every backend's matrix is pushed through.
MAPPING_ALGORITHMS = ("greedy", "mincut", "weighted")


def sampled_pairwise(
    machine: MachineConfig,
    names: Sequence[str],
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    options: Optional[EstimatorOptions] = None,
) -> PairwiseResult:
    """Sampled-backend stand-in for :func:`~repro.perf.experiment.pairwise_shared`.

    Solo baselines and every pair run through the sampled backend with
    the same shared-L2 placement (``[[0], [1]]``) as the exact helper,
    so degradations are sampled-vs-sampled (consistent extrapolation
    bias cancels in the ratio).
    """
    options = options or EstimatorOptions()
    ordered = sorted(names)
    solo_times: Dict[str, float] = {}
    for name in ordered:
        tasks = build_tasks([name], instructions=instructions, seed=seed)
        result, _ = sampled_simulation(
            machine, tasks, seed=seed, options=options
        )
        solo_times[name] = result.user_time(name)
    pair_times: Dict[Tuple[str, str], Dict[str, float]] = {}
    for a, b in itertools.combinations(ordered, 2):
        tasks = build_tasks([a, b], instructions=instructions, seed=seed)
        result, _ = sampled_simulation(
            machine,
            tasks,
            mapping=Mapping.from_groups([[tasks[0].tid], [tasks[1].tid]]),
            seed=seed,
            options=options,
        )
        pair_times[(a, b)] = {a: result.user_time(a), b: result.user_time(b)}
    return PairwiseResult(
        names=tuple(ordered), solo_times=solo_times, pair_times=pair_times
    )


def degradation_matrix(
    pairwise: PairwiseResult,
) -> Tuple[Tuple[str, ...], np.ndarray]:
    """Symmetric interference weights from a pairwise sweep.

    ``w[i, j] = deg(i | j) + deg(j | i)`` — the total slowdown the pair
    inflicts on itself when co-located — clipped at zero (a backend may
    predict a tiny negative degradation; the allocators require
    non-negative edges).
    """
    names = pairwise.names
    n = len(names)
    w = np.zeros((n, n), dtype=np.float64)
    for i, j in itertools.combinations(range(n), 2):
        a, b = names[i], names[j]
        weight = pairwise.degradation(a, b) + pairwise.degradation(b, a)
        w[i, j] = w[j, i] = max(weight, 0.0)
    return names, w


def _canonical(groups: Sequence[Sequence[int]]) -> Tuple[Tuple[int, ...], ...]:
    """Order-insensitive form of a grouping, for equality tests."""
    return tuple(sorted(tuple(sorted(g)) for g in groups))


def _greedy_pairing(w: np.ndarray) -> List[List[int]]:
    """Weight-sort pairing: heaviest interferer paired with the lightest.

    Tasks are ranked by total interference (row sum); the worst is
    co-located with the mildest remaining, the second-worst with the
    second-mildest, and so on — the paper's sort-and-fold heuristic.
    """
    order = list(np.argsort(-w.sum(axis=1), kind="stable"))
    groups = []
    while order:
        heavy = order.pop(0)
        light = order.pop(-1) if order else heavy
        groups.append(sorted({int(heavy), int(light)}))
    return groups


def _inverted(w: np.ndarray) -> np.ndarray:
    """Flip weights so MIN-CUT splits the heaviest interferers apart.

    ``partition_min_cut`` minimises *cut* weight; co-location cost lives
    on *intra*-group edges, so we cut the complement ``max(w) − w``
    (zero diagonal preserved) — minimising the complement's cut is
    maximising the original's, i.e. minimising intra-group interference.
    """
    top = float(w.max())
    inv = top - w
    np.fill_diagonal(inv, 0.0)
    return inv


def candidate_mappings(
    w: np.ndarray, seed: int = 0
) -> Dict[str, Tuple[Tuple[int, ...], ...]]:
    """All three algorithms' chosen groupings for one weight matrix.

    Returns canonical (order-insensitive) groupings keyed by algorithm
    name; groups are pairs (``num_groups = n // 2`` — the paper's
    dual-core node topology).
    """
    n = w.shape[0]
    if n < 2 or n % 2:
        raise ConfigurationError(
            f"pairing validation needs an even mix size >= 2, got {n}"
        )
    num_groups = n // 2
    greedy = _greedy_pairing(w)
    mincut = partition_min_cut(
        _inverted(w), num_groups, method="exhaustive", seed=seed
    )
    solo_scale = 1.0 + w.sum(axis=1)
    weighted_w = w * np.sqrt(np.outer(solo_scale, solo_scale))
    np.fill_diagonal(weighted_w, 0.0)
    weighted = partition_min_cut(
        _inverted(weighted_w), num_groups, method="exhaustive", seed=seed
    )
    return {
        "greedy": _canonical(greedy),
        "mincut": _canonical(mincut),
        "weighted": _canonical(weighted),
    }


@dataclass(frozen=True)
class MixValidation:
    """One mix's cross-validation record for one backend."""

    mix: Tuple[str, ...]
    backend: str
    agreements: Dict[str, bool]
    exact_miss_rate: float
    estimated_miss_rate: float

    @property
    def agrees(self) -> bool:
        """True when every algorithm was decision-equivalent to exact."""
        return all(self.agreements.values())

    @property
    def miss_rate_error(self) -> float:
        """Absolute miss-rate error of the whole-mix run."""
        return abs(self.estimated_miss_rate - self.exact_miss_rate)


@dataclass(frozen=True)
class ValidationSummary:
    """Aggregate cross-validation outcome over a mix list."""

    records: Tuple[MixValidation, ...]

    def backends(self) -> List[str]:
        """Backends present in the records, sorted."""
        return sorted({r.backend for r in self.records})

    def _of(self, backend: str) -> List[MixValidation]:
        got = [r for r in self.records if r.backend == backend]
        if not got:
            raise ConfigurationError(f"no records for backend {backend!r}")
        return got

    def agreement(self, backend: str) -> Tuple[int, int]:
        """(mixes where every algorithm agreed with exact, total mixes)."""
        records = self._of(backend)
        return sum(r.agrees for r in records), len(records)

    def miss_rate_mape(self, backend: str) -> float:
        """Mean |error| / exact miss rate across mixes, as a fraction."""
        records = self._of(backend)
        return float(
            np.mean(
                [r.miss_rate_error / max(r.exact_miss_rate, 1e-12) for r in records]
            )
        )

    def miss_rate_mae(self, backend: str) -> float:
        """Mean absolute miss-rate error across mixes."""
        return float(np.mean([r.miss_rate_error for r in self._of(backend)]))

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Per-backend summary for bench reports and the CI gate."""
        out: Dict[str, Dict[str, object]] = {}
        for backend in self.backends():
            agreed, total = self.agreement(backend)
            out[backend] = {
                "mixes": total,
                "mapping_agreement": agreed,
                "miss_rate_mape": self.miss_rate_mape(backend),
                "miss_rate_mae": self.miss_rate_mae(backend),
                "disagreeing_mixes": [
                    list(r.mix)
                    for r in self._of(backend)
                    if not r.agrees
                ],
            }
        return out


def _mix_miss_rate(
    machine: MachineConfig,
    mix: Sequence[str],
    backend: str,
    instructions: int,
    seed: int,
    options: EstimatorOptions,
) -> float:
    """Aggregate L2 miss rate of the whole mix under one backend."""
    tasks = build_tasks(list(mix), instructions=instructions, seed=seed)
    if backend == "exact":
        return run_mix(machine, tasks, seed=seed).l2_miss_rate
    if backend == "analytical":
        return analytical_simulation(machine, tasks, options=options).l2_miss_rate
    result, _ = sampled_simulation(machine, tasks, seed=seed, options=options)
    return result.l2_miss_rate


def validate_mixes(
    machine: MachineConfig,
    mixes: Sequence[Sequence[str]],
    *,
    backends: Sequence[str] = ("analytical", "sampled"),
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    tolerance: float = 0.02,
    options: Optional[EstimatorOptions] = None,
) -> ValidationSummary:
    """Cross-validate the fast backends against exact over a mix list.

    An algorithm "agrees" on a mix when the backend's mapping is
    identical to exact's, or prices within *tolerance* extra intra-group
    degradation on the exact matrix (decision-equivalence — see the
    module docstring). Pairwise sweeps are memoised per ``(backend,
    mix)``, so repeated mixes cost nothing extra.
    """
    options = options or EstimatorOptions()
    pairwise_cache: Dict[Tuple[str, Tuple[str, ...]], PairwiseResult] = {}

    def pairwise_for(backend: str, mix: Tuple[str, ...]) -> PairwiseResult:
        key = (backend, mix)
        if key not in pairwise_cache:
            if backend == "exact":
                pairwise_cache[key] = pairwise_shared(
                    machine, mix, instructions=instructions, seed=seed
                )
            elif backend == "analytical":
                pairwise_cache[key] = predicted_pairwise(
                    machine, mix, instructions=instructions, seed=seed,
                    options=options,
                )
            elif backend == "sampled":
                pairwise_cache[key] = sampled_pairwise(
                    machine, mix, instructions=instructions, seed=seed,
                    options=options,
                )
            else:
                raise ConfigurationError(f"unknown backend {backend!r}")
        return pairwise_cache[key]

    records: List[MixValidation] = []
    for raw_mix in mixes:
        mix = tuple(sorted(raw_mix))
        _, exact_w = degradation_matrix(pairwise_for("exact", mix))
        exact_maps = candidate_mappings(exact_w, seed=seed)
        exact_mr = _mix_miss_rate(
            machine, mix, "exact", instructions, seed, options
        )
        for backend in backends:
            _, est_w = degradation_matrix(pairwise_for(backend, mix))
            est_maps = candidate_mappings(est_w, seed=seed)
            agreements = {}
            for algo in MAPPING_ALGORITHMS:
                if est_maps[algo] == exact_maps[algo]:
                    agreements[algo] = True
                    continue
                # Decision-equivalence: price both choices on the exact
                # matrix; an equally-cheap alternative is not an error.
                cost_est = intra_weight(exact_w, est_maps[algo])
                cost_exact = intra_weight(exact_w, exact_maps[algo])
                agreements[algo] = cost_est <= cost_exact + tolerance
            records.append(
                MixValidation(
                    mix=mix,
                    backend=backend,
                    agreements=agreements,
                    exact_miss_rate=exact_mr,
                    estimated_miss_rate=_mix_miss_rate(
                        machine, mix, backend, instructions, seed, options
                    ),
                )
            )
    return ValidationSummary(records=tuple(records))
