"""One-pass reuse-distance / footprint profiling of a task's trace.

The analytical backend never simulates an interleaved trace; everything
it predicts derives from a single vectorised profiling pass per task that
collects:

* the **reuse-time histogram** — for every reference that re-touches a
  block, the number of (own) references since the previous touch;
* the **gap lengths** — runs of references *not* touching each block,
  from which the average **footprint curve** ``fp(w)`` (expected number
  of distinct blocks in a window of ``w`` consecutive references)
  follows in closed form;
* cold-miss and working-set totals.

The footprint identity is exact, not fitted (window-count form of the
higher-order theory of locality): summing distinct-block counts over all
length-``w`` windows is the same as counting, per block, the windows that
*miss* it — and a window misses a block exactly when it fits inside one
of the block's access gaps, so

``fp(w) = m - (1 / (n - w + 1)) · Σ_gaps max(gap - w + 1, 0)``

with ``m`` distinct blocks, ``n`` references, and one gap per reuse
interval (length ``reuse_time - 1``) plus head/tail gaps before each
block's first and after its last access. All of it evaluates with sorted
arrays and cumulative sums — no per-reference Python loop.

Restart semantics (paper Section 4.2) are handled by
:meth:`ReuseProfile.footprint_extended`: a completed task restarts into a
fresh block-address slice, so a co-runner observed across ``k`` full
trace lengths contributes ``k`` *disjoint* working sets plus the
footprint of the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.sched.process import SimTask
from repro.utils.validation import require_positive

__all__ = ["ReuseProfile", "profile_trace", "profile_task"]


@dataclass(frozen=True)
class ReuseProfile:
    """Reuse/footprint summary of one task's reference stream.

    Attributes
    ----------
    name:
        Task display name (benchmark name).
    refs:
        References profiled (``n``).
    distinct_blocks:
        Distinct blocks touched (``m``; the cold-miss count).
    total_refs:
        The task's full trace length — equals ``refs`` unless the
        profiling pass was truncated by ``profile_refs``.
    accesses_per_kinstr, mlp:
        Timing-model parameters copied from the task (memory intensity
        and memory-level parallelism).
    reuse_times:
        Sorted reuse times, one per non-cold reference.
    gap_lengths:
        Sorted gap lengths feeding the footprint identity.
    """

    name: str
    refs: int
    distinct_blocks: int
    total_refs: int
    accesses_per_kinstr: float
    mlp: float
    reuse_times: np.ndarray = field(repr=False)
    gap_lengths: np.ndarray = field(repr=False)
    _gap_cumsum: np.ndarray = field(repr=False)
    #: Memoised :meth:`binned_reuses` results, keyed by bin count — the
    #: same profile is re-binned by every per-mapping analytical model.
    _bin_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def truncated(self) -> bool:
        """True when the profile covers a prefix of the full trace."""
        return self.refs < self.total_refs

    @property
    def cold_fraction(self) -> float:
        """Fraction of profiled references that touch a block first."""
        return self.distinct_blocks / self.refs

    def footprint(self, windows: np.ndarray) -> np.ndarray:
        """Expected distinct blocks in windows of the given lengths.

        Exact for ``1 <= w <= refs`` (matches a brute-force average over
        all length-``w`` windows); inputs are clipped into that range.
        """
        w = np.clip(np.asarray(windows, dtype=np.int64), 1, self.refs)
        gaps = self.gap_lengths
        idx = np.searchsorted(gaps, w, side="left")
        suffix_sum = self._gap_cumsum[-1] - self._gap_cumsum[idx]
        suffix_cnt = len(gaps) - idx
        tail = suffix_sum - (w - 1) * suffix_cnt
        return self.distinct_blocks - tail / np.maximum(self.refs - w + 1, 1)

    def footprint_extended(self, windows: np.ndarray) -> np.ndarray:
        """Footprint of a window that may span restarts of the task.

        A restarted task replays its reference pattern in a *shifted*
        block-address slice (fresh physical pages), so each completed
        trace length contributes its whole working set again:
        ``fp_ext(w) = floor(w / n) · m + fp(w mod n)``.
        """
        w = np.asarray(windows, dtype=np.float64)
        n = float(self.refs)
        full = np.floor(w / n)
        rem = np.maximum((w - full * n).astype(np.int64), 1)
        return full * self.distinct_blocks + self.footprint(rem)

    def hits_within(self, reuse_limit: float) -> int:
        """Number of reuses with reuse time at most *reuse_limit*."""
        return int(np.searchsorted(self.reuse_times, reuse_limit, side="right"))

    def binned_reuses(
        self, max_bins: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Reuse times compressed to ``(values, counts)`` bin pairs.

        Short profiles pass through exactly (weight 1 per reuse); longer
        ones collapse into at most *max_bins* log-spaced bins, each
        represented by its members' mean reuse time and total count.
        The footprint curve is smooth, so downstream volume estimates
        evaluated at bin representatives carry a relative error bounded
        by the bin's log width (``max_rt ** (1/max_bins) - 1``). Results
        are memoised per bin count; callers must not mutate them.
        """
        max_bins = int(max_bins)
        require_positive(max_bins, "max_bins")
        cached = self._bin_cache.get(max_bins)
        if cached is not None:
            return cached
        rts = self.reuse_times.astype(np.float64)
        if len(rts) <= max_bins:
            result = rts, np.ones(len(rts))
        else:
            lo, hi = float(rts[0]), float(rts[-1])
            if hi <= lo:
                result = np.array([lo]), np.array([float(len(rts))])
            else:
                edges = np.geomspace(lo, hi, max_bins + 1)
                idx = np.clip(
                    np.searchsorted(edges, rts, side="right") - 1,
                    0,
                    max_bins - 1,
                )
                counts = np.bincount(idx, minlength=max_bins)
                sums = np.bincount(idx, weights=rts, minlength=max_bins)
                filled = counts > 0
                result = (
                    sums[filled] / counts[filled],
                    counts[filled].astype(np.float64),
                )
        self._bin_cache[max_bins] = result
        return result


def profile_trace(
    name: str,
    blocks: np.ndarray,
    *,
    total_refs: Optional[int] = None,
    accesses_per_kinstr: float = 1.0,
    mlp: float = 1.0,
) -> ReuseProfile:
    """Profile one reference stream into a :class:`ReuseProfile`.

    The pass is fully vectorised: previous-occurrence indices come from
    one stable argsort of the block ids, reuse times and gap lengths are
    then plain array arithmetic.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    n = len(blocks)
    require_positive(n, "trace length")
    _, inv = np.unique(blocks, return_inverse=True)
    m = int(inv.max()) + 1
    order = np.argsort(inv, kind="stable")
    sorted_ids = inv[order]
    same = sorted_ids[1:] == sorted_ids[:-1]
    prev = np.full(n, -1, dtype=np.int64)
    prev[order[1:][same]] = order[:-1][same]
    has_prev = prev >= 0
    reuse_times = (np.arange(n, dtype=np.int64) - prev)[has_prev]
    firsts = order[np.concatenate(([True], ~same))]
    lasts = order[np.concatenate((~same, [True]))]
    gaps = np.concatenate([reuse_times - 1, firsts, n - 1 - lasts])
    gaps = np.sort(gaps[gaps > 0])
    return ReuseProfile(
        name=name,
        refs=n,
        distinct_blocks=m,
        total_refs=int(total_refs if total_refs is not None else n),
        accesses_per_kinstr=float(accesses_per_kinstr),
        mlp=float(mlp),
        reuse_times=np.sort(reuse_times),
        gap_lengths=gaps,
        _gap_cumsum=np.concatenate(([0], np.cumsum(gaps))),
    )


def profile_task(
    task: SimTask, profile_refs: Optional[int] = None
) -> ReuseProfile:
    """Profile a :class:`~repro.sched.process.SimTask`'s trace.

    Generates (and then rewinds) the task's reference stream — the task
    is left exactly as constructed, so profiling never perturbs a later
    exact simulation of the same object. *profile_refs* caps the pass
    for huge traces; the resulting profile is marked truncated.
    """
    n = task.total_accesses
    take = n if profile_refs is None else min(n, int(profile_refs))
    if take <= 0:
        raise WorkloadError(f"task {task.name!r} has an empty trace")
    generator = task.generator
    generator.reset()
    blocks = np.array(generator.next_batch(take), dtype=np.int64, copy=True)
    generator.reset()
    return profile_trace(
        task.name,
        blocks,
        total_refs=n,
        accesses_per_kinstr=task.accesses_per_kinstr,
        mlp=task.mlp,
    )
