"""Fast-path estimation backends behind the exact-simulation interface.

The exact :class:`~repro.perf.simulator.MulticoreSimulator` replays
every reference of every task through real cache state — faithful, and
by far the costliest thing the repo does. This package provides two
cheaper backends that answer the same questions (per-task user times,
co-run degradations, aggregate L2 miss rate) through the same result
types, selectable per :class:`~repro.jobs.spec.RunSpec`:

``analytical``
    One vectorised profiling pass per task (:mod:`.reuse`) feeds a
    closed-form footprint/reuse-distance composition model
    (:mod:`.analytical`) — no interleaved simulation at all.
``sampled``
    Phase detection over windowed signatures (:mod:`.phases`) selects
    representative intervals that run through the *exact* simulator via
    the dispatch seam, then extrapolate (:mod:`.sampled`).

:mod:`.dispatch` is the single entry point (and the only module allowed
to construct the exact simulator — lint rule RPR503); :mod:`.validate`
cross-checks both backends' mapping decisions and miss rates against
exact simulation. See ``docs/estimation.md`` for the selection guide
and the error-bound contract.
"""

from importlib import import_module
from typing import List

# Lazy re-exports (PEP 562). The job-spec layer imports this package for
# backend dispatch while :mod:`repro.perf.experiment` (imported by the
# analytical/validate modules) imports the job-spec layer — eager
# imports here would close that cycle. Submodules load on first
# attribute access instead.
_EXPORTS = {
    "AnalyticalModel": "repro.estimate.analytical",
    "MappingPrediction": "repro.estimate.analytical",
    "TaskPrediction": "repro.estimate.analytical",
    "analytical_simulation": "repro.estimate.analytical",
    "predicted_pairwise": "repro.estimate.analytical",
    "BACKENDS": "repro.estimate.dispatch",
    "estimate_mix": "repro.estimate.dispatch",
    "make_exact_simulator": "repro.estimate.dispatch",
    "EstimateGate": "repro.estimate.gate",
    "EstimatorOptions": "repro.estimate.options",
    "Phase": "repro.estimate.phases",
    "detect_phases": "repro.estimate.phases",
    "representative_windows": "repro.estimate.phases",
    "window_signatures": "repro.estimate.phases",
    "ReuseProfile": "repro.estimate.reuse",
    "profile_task": "repro.estimate.reuse",
    "profile_trace": "repro.estimate.reuse",
    "ReplayGenerator": "repro.estimate.sampled",
    "SampleReport": "repro.estimate.sampled",
    "TaskSample": "repro.estimate.sampled",
    "sampled_simulation": "repro.estimate.sampled",
    "MixValidation": "repro.estimate.validate",
    "ValidationSummary": "repro.estimate.validate",
    "sampled_pairwise": "repro.estimate.validate",
    "validate_mixes": "repro.estimate.validate",
}


def __getattr__(name: str):
    """Resolve a public name from its submodule on first access."""
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    return getattr(import_module(module), name)


def __dir__() -> List[str]:
    """Public surface (lazy names included)."""
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "BACKENDS",
    "AnalyticalModel",
    "EstimateGate",
    "EstimatorOptions",
    "MappingPrediction",
    "MixValidation",
    "Phase",
    "ReplayGenerator",
    "ReuseProfile",
    "SampleReport",
    "TaskPrediction",
    "TaskSample",
    "ValidationSummary",
    "analytical_simulation",
    "detect_phases",
    "estimate_mix",
    "make_exact_simulator",
    "predicted_pairwise",
    "profile_task",
    "profile_trace",
    "representative_windows",
    "sampled_pairwise",
    "sampled_simulation",
    "validate_mixes",
    "window_signatures",
]
