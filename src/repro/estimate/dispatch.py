"""The backend seam: one entry point, three ways to produce a result.

Everything that wants a fast-path result goes through
:func:`estimate_mix` (or, for run specs, the ``backend`` field on
:class:`~repro.jobs.spec.RunSpec`, whose executor calls in here). The
module is also the **only** place inside :mod:`repro.estimate` allowed
to construct the exact :class:`~repro.perf.simulator.MulticoreSimulator`
— lint rule RPR503 enforces that every other estimate module obtains it
via :func:`make_exact_simulator`, which keeps the exact engine swappable
behind one seam (a compiled simulator drops in here, and every backend
picks it up).

Telemetry: enabled runs emit an ``estimate.run`` span and the
``estimate_*`` metrics family (runs per backend, references profiled vs
simulated, sampled coverage/error bound). As everywhere in the
simulation core, the disabled path is untouched arithmetic.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.estimate.gate import EstimateGate
from repro.estimate.options import EstimatorOptions
from repro.estimate.sampled import SampleReport
from repro.perf.machine import MachineConfig
from repro.perf.simulator import MulticoreSimulator, SimulationResult
from repro.sched.affinity import Mapping
from repro.sched.os_model import SchedulerConfig
from repro.sched.process import SimTask
from repro.telemetry.context import current as telemetry_current

__all__ = ["BACKENDS", "MappingLike", "as_mapping", "make_exact_simulator", "estimate_mix"]

#: Simulation backends selectable per run spec.
BACKENDS = ("exact", "analytical", "sampled")

#: A placement: either a ready :class:`~repro.sched.affinity.Mapping`
#: or raw per-core groups of task ids awaiting normalisation.
MappingLike = Union[Mapping, Sequence[Sequence[int]]]


def as_mapping(mapping: Optional[MappingLike]) -> Optional[Mapping]:
    """Normalise a placement argument to a :class:`Mapping` (or None)."""
    if mapping is None or isinstance(mapping, Mapping):
        return mapping
    return Mapping.from_groups(mapping)


def make_exact_simulator(
    machine: MachineConfig,
    tasks: Sequence[SimTask],
    *,
    mapping: Optional[MappingLike] = None,
    scheduler_config: Optional[SchedulerConfig] = None,
    batch_accesses: int = 256,
    seed: int = 0,
) -> MulticoreSimulator:
    """Construct the exact simulator for an estimate-internal run.

    The dispatch seam of RPR503: estimate backends that need exact
    simulation (the sampled backend's representative intervals, the
    validation harness's ground truth) call this instead of naming
    :class:`~repro.perf.simulator.MulticoreSimulator` themselves.
    """
    return MulticoreSimulator(
        machine,
        tasks,
        mapping=as_mapping(mapping),
        scheduler_config=scheduler_config,
        batch_accesses=batch_accesses,
        seed=seed,
    )


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown simulation backend {backend!r}; expected one of {BACKENDS}"
        )


def estimate_mix(
    machine: MachineConfig,
    tasks: Sequence[SimTask],
    *,
    backend: str,
    mapping: Optional[MappingLike] = None,
    scheduler_config: Optional[SchedulerConfig] = None,
    batch_accesses: int = 256,
    seed: int = 0,
    options: Optional[EstimatorOptions] = None,
    gate: Optional[EstimateGate] = None,
) -> Tuple[SimulationResult, Optional[SampleReport]]:
    """Run one mix through the selected backend.

    Returns ``(result, sample_report)`` — the report is ``None`` for
    the exact and analytical backends (they do not sample). The result
    type is identical across backends, so downstream consumers
    (experiment drivers, the alloc degradation matrix, run-spec
    outcomes) never branch on the backend.

    With a :class:`~repro.estimate.gate.EstimateGate` attached, a fast
    backend request whose mix falls outside the gate's envelope
    (signature aliasing, footprint-bomb pressure, collapsed confidence)
    is rerouted to the exact engine: the gate books a structured
    degradation event and the ``estimate_fallback_total`` metric is
    incremented. ``gate=None`` (the default) is byte-identical to the
    ungated seam.
    """
    _check_backend(backend)
    fallback_event = None
    if gate is not None and backend != "exact":
        fallback_event = gate.evaluate(machine, tasks)
        if fallback_event is not None:
            fallback_event = {"requested_backend": backend, **fallback_event}
            gate.record(fallback_event)
            backend = "exact"
    mapping = as_mapping(mapping)
    options = options or EstimatorOptions()
    tel = telemetry_current()
    tracer = tel.tracer if tel is not None else None
    metrics = tel.metrics if tel is not None else None
    span = (
        tracer.begin(
            "estimate.run",
            backend=backend,
            machine=machine.name,
            tasks=len(tasks),
        )
        if tracer is not None
        else None
    )
    try:
        if backend == "exact":
            result = make_exact_simulator(
                machine,
                tasks,
                mapping=mapping,
                scheduler_config=scheduler_config,
                batch_accesses=batch_accesses,
                seed=seed,
            ).run()
            report = None
        elif backend == "analytical":
            from repro.estimate.analytical import analytical_simulation

            result = analytical_simulation(
                machine, tasks, mapping=mapping, options=options
            )
            report = None
        else:
            from repro.estimate.sampled import sampled_simulation

            result, report = sampled_simulation(
                machine,
                tasks,
                mapping=mapping,
                scheduler_config=scheduler_config,
                batch_accesses=batch_accesses,
                seed=seed,
                options=options,
            )
    finally:
        if span is not None:
            tracer.end(span)
    if metrics is not None:
        total_refs = float(sum(t.total_accesses for t in tasks))
        metrics.counter(
            f"estimate_{backend}_runs_total",
            help=f"mixes run through the {backend} backend",
        ).inc()
        if fallback_event is not None:
            metrics.counter(
                "estimate_fallback_total",
                help="fast-path mixes rerouted to the exact engine by the gate",
            ).inc()
        metrics.counter(
            "estimate_refs_total",
            help="full-trace references covered by estimate runs",
        ).inc(total_refs)
        if report is not None:
            metrics.gauge(
                "estimate_sampled_coverage",
                help="fraction of references exactly simulated (last run)",
            ).set(report.coverage)
            if report.error_bound is not None:
                metrics.gauge(
                    "estimate_sampled_error_bound",
                    help="indicative sampling error bound (last run)",
                ).set(report.error_bound)
    return result, report
