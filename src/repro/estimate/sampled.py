"""Representative-interval sampling backend.

The sampled backend keeps the exact simulator's mechanics — real
set-associative LRU state, real interleaving, real timing feedback — but
feeds it a *shortened* trace per task:

1. each task's reference stream is profiled into windowed presence
   signatures and split into phases (:mod:`repro.estimate.phases`);
2. per phase, the most representative ``windows // denominator``
   windows are kept and stitched back together in trace order;
3. the stitched mini-traces run through the exact
   :class:`~repro.perf.simulator.MulticoreSimulator` — obtained via the
   dispatch seam, never constructed here directly (lint rule RPR503) —
   under the requested mapping;
4. per-task user times are extrapolated by each task's kept-reference
   ratio, and the coverage plus a crude error bound are recorded in the
   returned :class:`SampleReport`.

The shortened traces preserve each task's *relative* memory intensity
(accesses per kilo-instruction are untouched), so cross-task rate ratios
— the quantity degradation depends on — are unbiased; only the absolute
run length shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, WorkloadError
from repro.estimate.options import EstimatorOptions
from repro.estimate.phases import (
    coverage,
    detect_phases,
    representative_windows,
    window_signatures,
)
from repro.perf.machine import MachineConfig
from repro.perf.simulator import SimulationResult, TaskResult
from repro.sched.affinity import Mapping
from repro.sched.os_model import SchedulerConfig
from repro.sched.process import SimTask
from repro.workloads.base import TraceGenerator

__all__ = ["ReplayGenerator", "TaskSample", "SampleReport", "sampled_simulation"]


class ReplayGenerator(TraceGenerator):
    """Replays a fixed block-address array as a trace stream.

    Wraps around at the end (restart incarnations re-shift the base the
    same way the original generator's restarts do, because the stored
    addresses are *relative* to ``base_block``).
    """

    def __init__(self, blocks: np.ndarray, base_block: int = 0, seed: int = 0):
        super().__init__(base_block=base_block, seed=seed)
        blocks = np.asarray(blocks, dtype=np.int64)
        if len(blocks) == 0:
            raise WorkloadError("replay trace must be non-empty")
        self._blocks = blocks
        self._pos = 0

    def _generate(self, n: int) -> np.ndarray:
        out = np.empty(n, dtype=np.int64)
        filled = 0
        while filled < n:
            take = min(n - filled, len(self._blocks) - self._pos)
            out[filled : filled + take] = self._blocks[
                self._pos : self._pos + take
            ]
            self._pos = (self._pos + take) % len(self._blocks)
            filled += take
        return out

    def _restart(self) -> None:
        self._pos = 0


@dataclass(frozen=True)
class TaskSample:
    """How one task's trace was shortened.

    ``scale`` is the extrapolation factor (original references per kept
    reference); ``error_bound`` is the indicative ``1/√k`` sampling
    bound over the kept windows (``None`` when nothing was dropped).
    """

    name: str
    total_refs: int
    kept_refs: int
    phases: int
    coverage: float
    error_bound: Optional[float]

    @property
    def scale(self) -> float:
        """Extrapolation factor applied to the sampled user time."""
        return self.total_refs / self.kept_refs


@dataclass(frozen=True)
class SampleReport:
    """Aggregate sampling metadata of one sampled run."""

    samples: Tuple[TaskSample, ...]

    @property
    def coverage(self) -> float:
        """Overall fraction of references actually simulated."""
        total = sum(s.total_refs for s in self.samples)
        kept = sum(s.kept_refs for s in self.samples)
        return kept / total if total else 0.0

    @property
    def error_bound(self) -> Optional[float]:
        """Worst per-task indicative error bound (``None`` if exact)."""
        bounds = [s.error_bound for s in self.samples if s.error_bound]
        return max(bounds) if bounds else None


def _sample_task(
    task: SimTask, options: EstimatorOptions
) -> Tuple[SimTask, TaskSample]:
    """Build the shortened replay twin of one task."""
    generator = task.generator
    generator.reset()
    base = generator.base_block
    absolute = np.array(
        generator.next_batch(task.total_accesses), dtype=np.int64, copy=True
    )
    generator.reset()
    relative = absolute - base

    signatures = window_signatures(relative, options)
    phases = detect_phases(signatures, options)
    kept_windows = representative_windows(signatures, phases, options)
    frac, bound = coverage(kept_windows, len(signatures))

    window = options.window_refs
    pieces = [
        relative[w * window : (w + 1) * window] for w in kept_windows
    ]
    stitched = np.concatenate(pieces)
    sampled = SimTask(
        name=task.name,
        generator=ReplayGenerator(stitched, base_block=base, seed=task.generator.seed),
        total_accesses=len(stitched),
        accesses_per_kinstr=task.accesses_per_kinstr,
        mlp=task.mlp,
    )
    sampled.tid = task.tid
    sampled.process_id = task.process_id
    return sampled, TaskSample(
        name=task.name,
        total_refs=int(task.total_accesses),
        kept_refs=int(len(stitched)),
        phases=len(phases),
        coverage=frac,
        error_bound=bound,
    )


def sampled_simulation(
    machine: MachineConfig,
    tasks: Sequence[SimTask],
    *,
    mapping: Optional[Mapping] = None,
    scheduler_config: Optional[SchedulerConfig] = None,
    batch_accesses: int = 256,
    seed: int = 0,
    options: Optional[EstimatorOptions] = None,
) -> Tuple[SimulationResult, SampleReport]:
    """Simulate representative intervals exactly, extrapolate the rest.

    Returns the extrapolated :class:`SimulationResult` (user times and
    wall cycles scaled back to full-trace magnitudes; the miss rate is
    the sampled run's measured rate) plus the :class:`SampleReport`
    recording per-task coverage and error bounds.
    """
    from repro.estimate.dispatch import make_exact_simulator

    if not tasks:
        raise ConfigurationError("need at least one task")
    options = options or EstimatorOptions()
    shortened: List[SimTask] = []
    samples: List[TaskSample] = []
    for task in tasks:
        mini, sample = _sample_task(task, options)
        shortened.append(mini)
        samples.append(sample)
    report = SampleReport(samples=tuple(samples))

    simulator = make_exact_simulator(
        machine,
        shortened,
        mapping=mapping,
        scheduler_config=scheduler_config,
        batch_accesses=batch_accesses,
        seed=seed,
    )
    result = simulator.run()

    scale_by_name = {s.name: s.scale for s in samples}
    scaled_tasks = []
    for t in result.tasks:
        scale = scale_by_name[t.name]
        scaled_tasks.append(
            TaskResult(
                name=t.name,
                tid=t.tid,
                process_id=t.process_id,
                first_completion_cycles=(
                    None
                    if t.first_completion_cycles is None
                    else t.first_completion_cycles * scale
                ),
                user_cycles=t.user_cycles * scale,
                completions=t.completions,
                context_switches=t.context_switches,
            )
        )
    mean_scale = float(np.mean([s.scale for s in samples]))
    extrapolated = SimulationResult(
        machine=result.machine,
        wall_cycles=result.wall_cycles * mean_scale,
        tasks=scaled_tasks,
        l2_miss_rate=result.l2_miss_rate,
    )
    return extrapolated, report
