"""Declarative knobs of the fast-path estimator backends.

An :class:`EstimatorOptions` is pure JSON-native data, carried inside a
:class:`~repro.jobs.spec.RunSpec` (its ``estimator`` field) so that the
backend configuration is part of the spec's content address: two runs
that estimate with different window sizes or sampling denominators must
never share a cache entry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.utils.validation import require_positive

__all__ = ["EstimatorOptions"]


@dataclass(frozen=True)
class EstimatorOptions:
    """Configuration shared by the analytical and sampled backends.

    Parameters
    ----------
    profile_refs:
        Optional cap on the number of references profiled per task
        (``None`` profiles the full trace). A truncated profile is
        recorded as such in the outcome's estimate metadata.
    window_refs:
        Phase-detection window size in references (sampled backend).
    denominator:
        Sampling denominator: the sampled backend simulates roughly
        ``1/denominator`` of each phase's windows (1 keeps everything,
        which degenerates to exact simulation of the stitched trace).
        Every detected phase always keeps at least one window, so on
        phase-rich traces the effective coverage floors out well above
        ``1/denominator`` — cross-validation shows no accuracy loss
        between 16 and 32 (see ``benchmarks/bench_estimate_accuracy.py``).
    phase_threshold:
        Jaccard-distance threshold between consecutive windowed
        signatures above which a phase boundary is declared.
    signature_bits:
        Width of the windowed presence signature used for phase
        detection (a per-window mini-CBF).
    fixed_point_iterations:
        Iterations of the rate/miss-rate fixed point in the analytical
        co-run composition.
    reuse_bins:
        Maximum number of log-spaced reuse-time bins the analytical
        model evaluates per task. Profiles with more distinct reuse
        times than this are compressed to count-weighted bin
        representatives before the footprint composition — the
        footprint curve is smooth, so the relative volume error per bin
        is bounded by the bin's log width (``max_rt**(1/reuse_bins) -
        1``, well under 1% at the default). This is what makes a
        mapping prediction O(bins) instead of O(reuses) and lets one
        profiling pass amortise over hundreds of predicted mappings.
    """

    profile_refs: Optional[int] = None
    window_refs: int = 2048
    denominator: int = 32
    phase_threshold: float = 0.5
    signature_bits: int = 512
    fixed_point_iterations: int = 5
    reuse_bins: int = 512

    def __post_init__(self) -> None:
        if self.profile_refs is not None:
            require_positive(self.profile_refs, "profile_refs")
        require_positive(self.window_refs, "window_refs")
        require_positive(self.denominator, "denominator")
        require_positive(self.signature_bits, "signature_bits")
        require_positive(self.fixed_point_iterations, "fixed_point_iterations")
        require_positive(self.reuse_bins, "reuse_bins")
        if not 0.0 < self.phase_threshold <= 1.0:
            raise ConfigurationError(
                f"phase_threshold must be in (0, 1], got {self.phase_threshold}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (what the run spec embeds and hashes)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Optional[Mapping[str, Any]]) -> "EstimatorOptions":
        """Rebuild from :meth:`to_dict` output (``None`` means defaults).

        Unknown keys are rejected loudly — a typo'd knob silently falling
        back to its default would poison the content-address guarantee.
        """
        if d is None:
            return cls()
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(d) - known
        if unknown:
            raise ConfigurationError(
                f"unknown estimator options: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**dict(d))
