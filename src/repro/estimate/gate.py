"""Confidence gating for the estimate fast paths.

The analytical and sampled backends trade exactness for speed under an
*envelope* of assumptions: footprints that fit the modelled cache
geometry, address streams whose hash images spread across the signature
filter, and phase behaviour stable enough for representative intervals.
An adversarial mix (see :mod:`repro.adversary`) violates exactly those
assumptions — a signature-aliasing stream keeps its whole footprint on a
handful of filter indices, and a footprint bomb saturates the filter so
occupancy stops discriminating.

:class:`EstimateGate` is the degradation valve: attached to
:func:`repro.estimate.dispatch.estimate_mix`, it inspects the mix
*before* a fast backend runs and reroutes low-confidence or
out-of-envelope mixes to the exact engine. Every reroute increments the
``estimate_fallback_total`` metric and appends a structured degradation
event to :attr:`EstimateGate.events` — slow-but-right, never
fast-but-wrong. Without a gate (the default) dispatch behaviour is
byte-identical to the ungated seam.

Inspection is cheap and non-destructive: generators that expose their
footprint (``region_blocks``) are read directly; the rest are probed
with one seeded batch and then :meth:`~repro.workloads.base.TraceGenerator.reset`,
which restores their initial state exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.hashes import XorFoldHash
from repro.core.signature import signature_confidence
from repro.errors import ConfigurationError
from repro.perf.machine import MachineConfig
from repro.sched.process import SimTask

__all__ = ["EstimateGate"]


def _next_power_of_two(n: int) -> int:
    return 1 << (n - 1).bit_length()


@dataclass
class EstimateGate:
    """Pre-flight envelope check for the fast estimate backends.

    Parameters
    ----------
    min_confidence:
        Minimum signature-confidence score (see
        :func:`repro.core.signature.signature_confidence`) the mix's
        aggregate footprint must retain at the machine's filter capacity.
        Below it the filter would be too alias-ridden for signature-based
        estimation and the mix reroutes to the exact engine.
    max_pressure:
        Maximum aggregate footprint as a fraction of the shared-cache
        line count; above it the mix is a footprint bomb outside the
        analytical model's envelope.
    min_alias_ratio:
        Minimum fraction of *distinct filter indices per distinct block*
        a task's probed address stream must achieve. A uniformly-hashed
        stream sits near 1.0; a constructed signature-aliasing stream
        collapses towards ``1/blocks``. Below the floor the task is
        treated as adversarially aliased.
    capacity:
        Filter capacity (entries) the envelope is judged against.
        ``None`` (the default) uses the machine's shared-cache line
        count — the default signature sizing. Pass the actual
        ``SignatureConfig.num_entries`` when the deployment subsamples.
    num_hashes:
        Hash functions assumed for the confidence estimate.
    probe_accesses:
        Probe batch size for generators that do not expose
        ``region_blocks``.

    Attributes
    ----------
    fallbacks:
        Mixes rerouted to the exact engine so far.
    events:
        One JSON-native degradation event per reroute.
    """

    min_confidence: float = 0.05
    max_pressure: float = 4.0
    min_alias_ratio: float = 0.05
    capacity: Optional[int] = None
    num_hashes: int = 1
    probe_accesses: int = 2048
    fallbacks: int = 0
    events: List[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ConfigurationError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )
        if self.max_pressure <= 0:
            raise ConfigurationError(
                f"max_pressure must be > 0, got {self.max_pressure}"
            )
        if not 0.0 <= self.min_alias_ratio <= 1.0:
            raise ConfigurationError(
                f"min_alias_ratio must be in [0, 1], got {self.min_alias_ratio}"
            )
        if self.num_hashes < 1:
            raise ConfigurationError(
                f"num_hashes must be >= 1, got {self.num_hashes}"
            )
        if self.probe_accesses < 1:
            raise ConfigurationError(
                f"probe_accesses must be >= 1, got {self.probe_accesses}"
            )
        if self.capacity is not None and self.capacity < 2:
            raise ConfigurationError(
                f"capacity must be >= 2, got {self.capacity}"
            )

    # -- inspection ----------------------------------------------------

    def _probe_blocks(self, task: SimTask):
        """Probe one task: ``(distinct blocks array, footprint estimate)``."""
        generator = task.generator
        region = getattr(generator, "region_blocks", None)
        batch = generator.next_batch(self.probe_accesses)
        generator.reset()
        blocks = np.unique(np.asarray(batch, dtype=np.int64))
        if region is not None and int(region) > len(blocks):
            # The declared footprint is authoritative when larger than
            # what one probe batch happened to touch.
            return blocks, int(region)
        return blocks, len(blocks)

    def evaluate(
        self, machine: MachineConfig, tasks: Sequence[SimTask]
    ) -> Optional[dict]:
        """Check one mix; return a degradation event dict or ``None``.

        ``None`` means the mix is inside the fast-path envelope. A dict
        names every violated check per task, JSON-native so callers can
        log or archive it as-is.
        """
        capacity = (
            self.capacity
            if self.capacity is not None
            else machine.l2.geometry.num_lines
        )
        filter_entries = _next_power_of_two(capacity)
        hasher = XorFoldHash(filter_entries)
        total_footprint = 0
        violations: Dict[str, dict] = {}
        for task in tasks:
            blocks, footprint = self._probe_blocks(task)
            total_footprint += footprint
            if len(blocks) < 2:
                continue
            indices = np.unique(hasher.hash_many(blocks))
            alias_ratio = len(indices) / len(blocks)
            if alias_ratio < self.min_alias_ratio:
                violations[task.name] = {
                    "check": "alias_ratio",
                    "alias_ratio": alias_ratio,
                    "floor": self.min_alias_ratio,
                    "distinct_blocks": int(len(blocks)),
                    "distinct_indices": int(len(indices)),
                }
        pressure = total_footprint / capacity
        confidence = signature_confidence(
            min(total_footprint, filter_entries), filter_entries, self.num_hashes
        )
        reasons = []
        if violations:
            reasons.append("signature-aliasing stream detected")
        if pressure > self.max_pressure:
            reasons.append(
                f"footprint pressure {pressure:.2f} exceeds envelope "
                f"{self.max_pressure:g}"
            )
        if confidence.score < self.min_confidence:
            reasons.append(
                f"signature confidence {confidence.score:.3f} below floor "
                f"{self.min_confidence:g}"
            )
        if not reasons:
            return None
        return {
            "action": "fallback-exact-backend",
            "reasons": reasons,
            "pressure": pressure,
            "confidence": confidence.score,
            "tasks": dict(sorted(violations.items())),
        }

    def record(self, event: dict) -> None:
        """Book one reroute (dispatch calls this when the gate trips)."""
        self.fallbacks += 1
        self.events.append(event)
