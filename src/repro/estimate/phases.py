"""Phase detection from windowed presence signatures.

The sampled backend's interval selection needs to know where a trace's
behaviour *changes*: simulating three windows of a ten-million-reference
streaming phase tells you everything about the other 4880, but only if
the windows really are from the same phase. Detection mirrors the
paper's signature hardware in miniature — each window of the reference
stream is folded into a small presence bitmap (a per-window, 1-hash CBF
over ``signature_bits`` buckets), and a phase boundary is declared
whenever consecutive windows' bitmaps drift apart by more than a
Jaccard-distance threshold (the Bueno-style windowed-signature delta).

Everything here is pure array arithmetic over a block-address array: no
simulation, no wall clock, deterministic for a given trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.estimate.options import EstimatorOptions

__all__ = [
    "Phase",
    "window_signatures",
    "detect_phases",
    "representative_windows",
    "coverage",
]


@dataclass(frozen=True)
class Phase:
    """A maximal run of behaviourally-similar windows.

    ``start``/``stop`` are window indices (``stop`` exclusive); the
    phase covers references ``start·window_refs`` up to
    ``stop·window_refs`` (the last window may be short).
    """

    start: int
    stop: int

    @property
    def windows(self) -> int:
        """Number of windows the phase spans."""
        return self.stop - self.start


def window_signatures(
    blocks: np.ndarray, options: EstimatorOptions
) -> np.ndarray:
    """Per-window presence bitmaps of a block-address stream.

    Returns a ``(num_windows, signature_bits)`` boolean array; bit ``b``
    of row ``w`` is set iff some block of window ``w`` hashes (modulo)
    into bucket ``b``. The trailing partial window is included.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    if len(blocks) == 0:
        raise ConfigurationError("cannot signature an empty trace")
    bits = options.signature_bits
    window = options.window_refs
    num_windows = -(-len(blocks) // window)
    out = np.zeros((num_windows, bits), dtype=bool)
    buckets = blocks % bits
    for w in range(num_windows):
        out[w, buckets[w * window : (w + 1) * window]] = True
    return out


def detect_phases(
    signatures: np.ndarray, options: EstimatorOptions
) -> List[Phase]:
    """Split a window sequence into phases at signature-delta boundaries.

    The Jaccard distance ``1 − |A∩B|/|A∪B|`` between *consecutive*
    window signatures is compared against ``options.phase_threshold``;
    a crossing starts a new phase. Distances are computed vectorised
    over the whole sequence.
    """
    n = len(signatures)
    if n == 0:
        raise ConfigurationError("no windows to phase-detect")
    if n == 1:
        return [Phase(0, 1)]
    a, b = signatures[:-1], signatures[1:]
    inter = (a & b).sum(axis=1).astype(np.float64)
    union = (a | b).sum(axis=1).astype(np.float64)
    distance = 1.0 - inter / np.maximum(union, 1.0)
    boundaries = np.flatnonzero(distance > options.phase_threshold) + 1
    edges = [0, *boundaries.tolist(), n]
    return [Phase(s, e) for s, e in zip(edges[:-1], edges[1:]) if e > s]


def representative_windows(
    signatures: np.ndarray,
    phases: List[Phase],
    options: EstimatorOptions,
) -> np.ndarray:
    """Pick the representative window indices to actually simulate.

    Per phase, ``max(1, windows // denominator)`` windows are kept — the
    ones whose signatures are closest to the phase's mean signature
    (its centroid), so the simulated sample is the phase's most typical
    behaviour rather than a uniform stride that may straddle its edges.
    Returns the kept indices sorted ascending (trace order preserved).
    """
    keep: List[int] = []
    for phase in phases:
        rows = signatures[phase.start : phase.stop].astype(np.float64)
        count = max(1, phase.windows // options.denominator)
        centroid = rows.mean(axis=0)
        distance = np.abs(rows - centroid).sum(axis=1)
        # Stable tie-break: argsort is stable, earlier windows win ties.
        order = np.argsort(distance, kind="stable")[:count]
        keep.extend(int(phase.start + i) for i in order)
    return np.asarray(sorted(keep), dtype=np.int64)


def coverage(
    kept: np.ndarray, total_windows: int
) -> Tuple[float, Optional[float]]:
    """(fraction of windows simulated, crude relative error bound).

    The bound is the standard ``1/√k`` sampling heuristic over the
    ``k`` kept windows — an *indicative* scale for the extrapolation
    error, not a guarantee (see ``docs/estimation.md`` for the
    contract). ``None`` when everything was kept (exact coverage).
    """
    k = len(kept)
    frac = k / total_windows if total_windows else 0.0
    if frac >= 1.0:
        return 1.0, None
    return frac, 1.0 / np.sqrt(max(k, 1))
