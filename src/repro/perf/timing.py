"""Cycle-accounting timing model.

Converts a batch's instruction count and cache outcome into cycles:

``cycles = instructions·CPI_base + l2_hits·t_hit + l2_misses·t_miss_eff``

with an effective miss penalty

``t_miss_eff = mem_cycles / mlp + queue_coeff · other_intensity · mem_cycles``

* ``mlp`` is the workload's memory-level parallelism: dependent pointer
  chases pay the full latency per miss, streaming/prefetchable code
  overlaps several misses (this is what lets a streaming polluter flood the
  shared cache quickly — the asymmetry behind the paper's worst pairs).
* the queue term models shared memory-bus contention: ``other_intensity``
  is the co-running cores' combined miss rate in misses/cycle, so each
  miss additionally waits behind the average outstanding traffic of the
  other cores. This is why two bandwidth-bound benchmarks degrade each
  other even when neither reuses the cache (e.g. libquantum vs hmmer).

This substitutes for the paper's real Core 2 Duo: only *relative* user
times matter to the evaluation, not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["TimingModel"]


@dataclass(frozen=True)
class TimingModel:
    """Cycle cost parameters (defaults roughly Core 2-class).

    Parameters
    ----------
    cpi_base:
        Cycles per instruction with a perfect memory system.
    l2_hit_cycles:
        L2 hit latency charged per L2 reference that hits.
    mem_cycles:
        DRAM round-trip charged per L2 miss (before MLP overlap).
    queue_coeff:
        Strength of the shared-bus queuing term (0 disables it).
    intensity_ema:
        Smoothing factor for the per-core miss-intensity estimate the
        simulator maintains.
    per_access_cycles:
        Flat cost added to every L2 reference (hit or miss). Zero on bare
        metal; the virtualization layer uses it to model shadow-paging /
        TLB-pressure overheads that scale with memory activity.
    l1_hit_cycles:
        Cost per L1 hit, charged only when the machine models private L1s
        (otherwise the generators emit L2-level streams and no L1 hits
        occur).
    """

    cpi_base: float = 0.75
    l2_hit_cycles: float = 12.0
    mem_cycles: float = 200.0
    queue_coeff: float = 4.0
    intensity_ema: float = 0.25
    per_access_cycles: float = 0.0
    l1_hit_cycles: float = 2.0

    def __post_init__(self) -> None:
        if self.cpi_base <= 0:
            raise ConfigurationError("cpi_base must be positive")
        if self.l2_hit_cycles < 0 or self.mem_cycles < 0:
            raise ConfigurationError("latencies must be >= 0")
        if self.queue_coeff < 0:
            raise ConfigurationError("queue_coeff must be >= 0")
        if not 0.0 < self.intensity_ema <= 1.0:
            raise ConfigurationError("intensity_ema must be in (0, 1]")
        if self.per_access_cycles < 0:
            raise ConfigurationError("per_access_cycles must be >= 0")
        if self.l1_hit_cycles < 0:
            raise ConfigurationError("l1_hit_cycles must be >= 0")

    def miss_cycles(self, mlp: float, other_intensity: float = 0.0) -> float:
        """Effective cycles charged per L2 miss."""
        if mlp < 1.0:
            raise ConfigurationError("mlp must be >= 1.0")
        base = self.mem_cycles / mlp
        queue = self.queue_coeff * max(other_intensity, 0.0) * self.mem_cycles
        return base + queue

    def batch_cycles(
        self,
        instructions: float,
        l2_hits: int,
        l2_misses: int,
        mlp: float = 1.0,
        other_intensity: float = 0.0,
        l1_hits: int = 0,
    ) -> float:
        """Total cycles for one executed batch."""
        if instructions < 0 or l2_hits < 0 or l2_misses < 0 or l1_hits < 0:
            raise ConfigurationError("negative batch quantities")
        return (
            instructions * self.cpi_base
            + l1_hits * self.l1_hit_cycles
            + l2_hits * self.l2_hit_cycles
            + l2_misses * self.miss_cycles(mlp, other_intensity)
            + (l1_hits + l2_hits + l2_misses) * self.per_access_cycles
        )
