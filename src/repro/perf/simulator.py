"""Closed-loop multi-core performance simulation.

This replaces the paper's two hardware platforms (and its Simics phase):
cores advance on private virtual clocks, the globally least-advanced core
executes the next batch of its current task's reference stream against the
(shared or private) L2, and the resulting hit/miss counts feed the timing
model — so cache pollution between concurrently running tasks feeds back
into their user times exactly like on the real machine.

Key mechanics:

* **Interleaving** — always stepping the least-advanced runnable core keeps
  cross-core access interleaving consistent with the virtual clocks at
  batch granularity.
* **Scheduling** — the :class:`~repro.sched.os_model.OSScheduler` rotates
  each core's run queue when the quantum expires (or the task finishes a
  run), snapshotting the signature hardware at every switch.
* **Restart semantics** — finished tasks restart until every task has
  completed at least once (paper Section 4.2); reported user time is the
  first completion's cycle count.
* **Monitoring** — an optional user-level monitor object is invoked every
  ``interval_cycles`` of virtual wall time (the paper's 100 ms allocator
  period, scaled), sees the syscall interface, and may re-pin tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Wall-clock is banned in the simulation core (lint rule RPR101): results
# must be a pure function of the seed. The perf_counter reads below are the
# one sanctioned exception — every call site is behind the telemetry guard
# (``tel``/``prof`` is None on the disabled fast path) and feeds only the
# PhaseProfile/metrics side channel, never simulated time or results; each
# site is waived individually with ``# repro: noqa[RPR101]`` so any *new*
# clock read still fails the linter.
from time import perf_counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cache.cache import SetAssociativeCache
from repro.core.signature import SignatureConfig, SignatureStats, SignatureUnit
from repro.errors import ConfigurationError, SimulationError
from repro.perf.machine import MachineConfig
from repro.sched.affinity import Mapping
from repro.sched.os_model import OSScheduler, SchedulerConfig
from repro.sched.process import SimTask
from repro.sched.syscall import SyscallInterface
from repro.telemetry.context import current as telemetry_current
from repro.telemetry.metrics import DURATION_BUCKETS
from repro.telemetry.profiler import PhaseProfile
from repro.utils.validation import require_positive

#: Bucket boundaries for the per-batch L2 miss-count histogram (a batch
#: is at most ``batch_accesses`` references, 256 by default).
L2_BATCH_MISS_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Bucket boundaries for the CBF occupancy histogram (resident lines
#: observed at each monitor invocation).
CBF_OCCUPANCY_BUCKETS = (
    0.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0
)

__all__ = ["TaskResult", "SimulationResult", "MulticoreSimulator"]


@dataclass(frozen=True)
class TaskResult:
    """Final per-task accounting of one simulation."""

    name: str
    tid: int
    process_id: int
    first_completion_cycles: Optional[float]
    user_cycles: float
    completions: int
    context_switches: int


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one :meth:`MulticoreSimulator.run`."""

    machine: str
    wall_cycles: float
    tasks: List[TaskResult]
    l2_miss_rate: float
    decisions: List[Mapping] = field(default_factory=list)
    majority_mapping: Optional[Mapping] = None
    signature_stats: Optional[SignatureStats] = None
    #: Structured degradation events recorded by the monitor (empty for
    #: healthy runs and for runs without a monitor).
    degradations: List[dict] = field(default_factory=list)

    def task(self, name: str) -> TaskResult:
        """Look up a task result by name (first match)."""
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(f"no task named {name!r}")

    def user_time(self, name: str) -> float:
        """First-completion user time (cycles) of the named task."""
        t = self.task(name)
        if t.first_completion_cycles is None:
            raise SimulationError(f"task {name!r} never completed")
        return t.first_completion_cycles

    def process_user_time(self, process_id: int) -> float:
        """Slowest-thread first-completion time of one process."""
        times = [
            t.first_completion_cycles
            for t in self.tasks
            if t.process_id == process_id
        ]
        if not times or any(x is None for x in times):
            raise SimulationError(f"process {process_id} never completed")
        return max(times)


class MulticoreSimulator:
    """Drives tasks over a machine model to completion.

    Parameters
    ----------
    machine:
        Platform description (cores, L2 sharing, timing).
    tasks:
        The mix to execute. Runtime state is reset on construction.
    mapping:
        Optional pinned task→core mapping (phase-2 runs); defaults to
        round-robin placement in task order (the "default schedule").
    signature_config:
        Attach Bloom-filter signature hardware (phase-1 runs). Requires a
        shared L2, as in the paper.
    monitor:
        Optional user-level monitor with an ``interval_cycles`` attribute
        and an ``invoke(syscall) -> Optional[Mapping]`` method.
    scheduler_config:
        Timeslice/switch-cost override.
    batch_accesses:
        References simulated per scheduling step (interleaving grain).
    signature_injector:
        Optional :class:`~repro.faults.injectors.SignatureFaultInjector`
        attached to the signature unit (fault-injection runs only;
        requires ``signature_config``).
    """

    def __init__(
        self,
        machine: MachineConfig,
        tasks: Sequence[SimTask],
        *,
        mapping: Optional[Mapping] = None,
        signature_config: Optional[SignatureConfig] = None,
        monitor=None,
        scheduler_config: Optional[SchedulerConfig] = None,
        batch_accesses: int = 256,
        seed: int = 0,
        signature_injector=None,
    ):
        if not tasks:
            raise ConfigurationError("need at least one task")
        self.machine = machine
        self.tasks = list(tasks)
        self.batch_accesses = require_positive(batch_accesses, "batch_accesses")
        n = machine.num_cores

        if machine.shared_l2:
            shared = SetAssociativeCache(machine.l2, num_cores=n, seed=seed)
            self.caches: List[SetAssociativeCache] = [shared] * n
            self._shared_cache = shared
        else:
            self.caches = [
                SetAssociativeCache(machine.l2, num_cores=1, seed=seed + c)
                for c in range(n)
            ]
            self._shared_cache = None
        # Optional private L1s: filter each core's stream before the L2
        # (the signature hardware then observes the true L2 miss stream).
        if machine.l1 is not None:
            self._l1s: Optional[List[SetAssociativeCache]] = [
                SetAssociativeCache(machine.l1, num_cores=1, seed=seed + 100 + c)
                for c in range(n)
            ]
        else:
            self._l1s = None

        self.signature_unit: Optional[SignatureUnit] = None
        if signature_config is not None:
            if not machine.shared_l2:
                raise ConfigurationError(
                    "signature hardware monitors a shared L2 (paper Sec 3.1)"
                )
            if signature_config.num_cores != n:
                raise ConfigurationError(
                    "signature_config.num_cores must match the machine"
                )
            self.signature_unit = SignatureUnit(signature_config)
        if signature_injector is not None:
            if self.signature_unit is None:
                raise ConfigurationError(
                    "signature_injector requires signature_config"
                )
            self.signature_unit.attach_injector(signature_injector)

        self.scheduler = OSScheduler(
            scheduler_config or SchedulerConfig(num_cores=n),
            signature_unit=self.signature_unit,
        )
        self.syscall = SyscallInterface(self.scheduler)
        self.monitor = monitor

        for task in self.tasks:
            task.reset_runtime()
        if mapping is not None:
            by_tid = {t.tid: t for t in self.tasks}
            placed = set()
            for core, group in enumerate(mapping.groups):
                for tid in group:
                    if tid not in by_tid:
                        raise ConfigurationError(f"mapping names unknown task {tid}")
                    self.scheduler.add_task(by_tid[tid], core)
                    placed.add(tid)
            for task in self.tasks:  # any unmapped tasks balance out
                if task.tid not in placed:
                    self.scheduler.add_task(task)
        else:
            for i, task in enumerate(self.tasks):
                self.scheduler.add_task(task, i % n)

        self.core_time = np.zeros(n, dtype=np.float64)
        self._intensity = np.zeros(n, dtype=np.float64)  # misses/cycle EMA

    # ------------------------------------------------------------------
    def run(
        self,
        max_wall_cycles: Optional[float] = None,
        min_wall_cycles: Optional[float] = None,
    ) -> SimulationResult:
        """Simulate until every task completed once (or the wall limit).

        *min_wall_cycles* keeps the run going (tasks keep restarting) even
        after every task has completed — phase-1 signature gathering uses
        this to collect enough allocator decisions for a stable majority
        vote.
        """
        timing = self.machine.timing
        sched = self.scheduler
        batch = self.batch_accesses
        decisions: List[Mapping] = []
        interval = getattr(self.monitor, "interval_cycles", None)
        next_invocation = interval if interval else None

        # Telemetry is opt-in: `tel` is None on the default path, and every
        # instrumented point below is a single `is not None` branch — the
        # simulated state is never touched, so results are bit-identical
        # with telemetry on or off.
        tel = telemetry_current()
        tracer = tel.tracer if tel is not None else None
        metrics = tel.metrics if tel is not None else None
        prof = PhaseProfile() if tel is not None else None
        miss_hist = (
            metrics.histogram(
                "sim_l2_batch_misses", L2_BATCH_MISS_BUCKETS,
                help="L2 misses per simulated batch",
            )
            if metrics is not None
            else None
        )
        occupancy_hist = (
            metrics.histogram(
                "sim_cbf_occupancy_lines", CBF_OCCUPANCY_BUCKETS,
                help="CBF-tracked resident lines at each monitor invocation",
            )
            if metrics is not None and self.signature_unit is not None
            else None
        )
        run_span = (
            tracer.begin(
                "simulator.run",
                machine=self.machine.name,
                tasks=len(self.tasks),
                monitored=self.monitor is not None,
            )
            if tracer is not None
            else None
        )
        run_started = perf_counter()  # repro: noqa[RPR101]
        l2_accesses = 0
        try:
            while True:
                if prof is not None:
                    t0 = perf_counter()  # repro: noqa[RPR101]
                runnable = sched.runnable_cores()
                if not runnable:
                    break
                # wall = least-advanced runnable core; it executes next.
                core = min(runnable, key=lambda c: self.core_time[c])
                wall = self.core_time[core]
                if max_wall_cycles is not None and wall >= max_wall_cycles:
                    break
                if next_invocation is not None and wall >= next_invocation:
                    if prof is not None:
                        t1 = perf_counter()  # repro: noqa[RPR101]
                        prof.add("interleave", t1 - t0, 0)
                    decision = self.monitor.invoke(self.syscall)
                    if decision is not None:
                        decisions.append(decision.canonical())
                    if prof is not None:
                        elapsed = perf_counter() - t1  # repro: noqa[RPR101]
                        prof.add("monitor", elapsed)
                        if metrics is not None:
                            metrics.histogram(
                                "sim_monitor_invoke_seconds", DURATION_BUCKETS,
                                help="wall time of one monitor invocation "
                                "(mapping-decision latency)",
                            ).observe(elapsed)
                        if occupancy_hist is not None:
                            occupancy_hist.observe(
                                float(self.signature_unit.total_occupancy())
                            )
                    next_invocation += interval
                    continue

                task = sched.current_task(core)
                n = min(batch, task.remaining_accesses)
                blocks = task.generator.next_batch(n)
                if prof is not None:
                    t1 = perf_counter()  # repro: noqa[RPR101]
                    prof.add("interleave", t1 - t0)
                l1_hits = 0
                if self._l1s is not None:
                    l1_result = self._l1s[core].access_batch(0, blocks)
                    l1_hits = l1_result.hits
                    blocks = l1_result.fills  # only L1 misses reach the L2
                if len(blocks):
                    result = self.caches[core].access_batch(
                        core if self._shared_cache is not None else 0, blocks
                    )
                    l2_hits, l2_misses = result.hits, result.misses
                else:
                    result = None
                    l2_hits = l2_misses = 0
                if prof is not None:
                    t2 = perf_counter()  # repro: noqa[RPR101]
                    prof.add("l2_access", t2 - t1, len(blocks))
                    l2_accesses += len(blocks)
                    if miss_hist is not None:
                        miss_hist.observe(float(l2_misses))
                if self.signature_unit is not None and result is not None:
                    self.signature_unit.record_events(
                        core,
                        result.fills,
                        result.fill_slots,
                        result.evictions,
                        result.evict_slots,
                        result.evict_fill_pos,
                    )
                if prof is not None:
                    t3 = perf_counter()  # repro: noqa[RPR101]
                    if self.signature_unit is not None:
                        prof.add("signature", t3 - t2)
                other = float(
                    sum(
                        self._intensity[c]
                        for c in runnable
                        if c != core
                    )
                )
                cycles = timing.batch_cycles(
                    instructions=task.instructions_for(n),
                    l2_hits=l2_hits,
                    l2_misses=l2_misses,
                    mlp=task.mlp,
                    other_intensity=other,
                    l1_hits=l1_hits,
                )
                if cycles <= 0:
                    raise SimulationError("non-positive batch cycle count")
                ema = timing.intensity_ema
                self._intensity[core] = (
                    (1 - ema) * self._intensity[core] + ema * (l2_misses / cycles)
                )
                self.core_time[core] += cycles
                completed = task.advance(n, cycles)
                expired = sched.charge(core, cycles)
                if expired or completed:
                    sched.context_switch(core)
                    self.core_time[core] += sched.config.context_switch_cycles
                if prof is not None:
                    prof.add("timing", perf_counter() - t3)  # repro: noqa[RPR101]
                if all(t.completed_once for t in self.tasks):
                    if (
                        min_wall_cycles is None
                        or self.core_time.max() >= min_wall_cycles
                    ):
                        break
        finally:
            if tel is not None:
                self._emit_telemetry(
                    tel, prof, run_span, run_started, l2_accesses
                )

        majority = None
        if decisions:
            counts: Dict[Mapping, int] = {}
            for d in decisions:
                counts[d] = counts.get(d, 0) + 1
            majority = max(counts.items(), key=lambda kv: kv[1])[0]

        if self._shared_cache is not None:
            miss_rate = self._shared_cache.stats.miss_rate()
        else:
            hits = sum(c.stats.total_hits for c in self.caches)
            misses = sum(c.stats.total_misses for c in self.caches)
            miss_rate = misses / (hits + misses) if hits + misses else 0.0

        return SimulationResult(
            machine=self.machine.name,
            wall_cycles=float(self.core_time.max()) if len(self.core_time) else 0.0,
            tasks=[
                TaskResult(
                    name=t.name,
                    tid=t.tid,
                    process_id=t.process_id,
                    first_completion_cycles=t.first_completion_cycles,
                    user_cycles=t.user_cycles,
                    completions=t.completions,
                    context_switches=t.context_switches,
                )
                for t in self.tasks
            ],
            l2_miss_rate=miss_rate,
            decisions=decisions,
            majority_mapping=majority,
            signature_stats=(
                self.signature_unit.stats if self.signature_unit else None
            ),
            degradations=list(getattr(self.monitor, "degradations", ()) or ()),
        )

    def _emit_telemetry(
        self, tel, prof, run_span, run_started: float, l2_accesses: int
    ) -> None:
        """Flush one run's aggregate telemetry (enabled runs only).

        Emits the phase breakdown (spans + counters), the simulator-level
        metrics — L2 accesses/sec, CBF occupancy, run/batch tallies — and
        closes the ``simulator.run`` span. Never called on the disabled
        path.
        """
        elapsed = perf_counter() - run_started  # repro: noqa[RPR101]
        metrics = tel.metrics
        if metrics is not None:
            metrics.counter(
                "sim_runs_total", help="simulator runs completed"
            ).inc()
            metrics.counter(
                "sim_batches_total", help="scheduling batches executed"
            ).inc(prof.ops("interleave"))
            metrics.counter(
                "sim_l2_accesses_total", help="references reaching the L2"
            ).inc(l2_accesses)
            metrics.gauge(
                "sim_l2_accesses_per_second",
                help="L2 references simulated per wall second (last run)",
            ).set(l2_accesses / elapsed if elapsed > 0 else 0.0)
            metrics.gauge(
                "sim_wall_cycles",
                help="virtual wall cycles of the last run",
            ).set(float(self.core_time.max()) if len(self.core_time) else 0.0)
            if self.signature_unit is not None:
                metrics.gauge(
                    "sim_cbf_occupancy_final_lines",
                    help="CBF-tracked resident lines at run end",
                ).set(float(self.signature_unit.total_occupancy()))
            prof.emit_metrics(metrics)
        if tel.tracer is not None and run_span is not None:
            prof.emit_spans(tel.tracer, run_span.start)
            tel.tracer.end(run_span)
