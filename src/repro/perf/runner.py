"""Run builders: benchmarks mixes, solo runs, signature defaults.

These helpers assemble tasks from profile names, give each task a disjoint
slice of the block-address space, and wrap the simulator for the common
run shapes (solo, mix-under-mapping, phase-1 with monitor).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.signature import SignatureConfig
from repro.errors import ConfigurationError
from repro.perf.machine import MachineConfig
from repro.perf.simulator import MulticoreSimulator, SimulationResult
from repro.sched.affinity import Mapping
from repro.sched.os_model import SchedulerConfig
from repro.sched.process import SimProcess, SimTask, process_from_parsec, task_from_profile
from repro.utils.rng import stable_seed
from repro.utils.validation import require_positive
from repro.workloads.parsec import parsec_profile
from repro.workloads.spec import spec_profile

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "build_tasks",
    "build_parsec_processes",
    "default_signature_config",
    "run_mix",
    "run_solo",
]

#: Per-run instruction budget (scaled-down stand-in for a full SPEC run).
DEFAULT_INSTRUCTIONS = 6_000_000

#: Block-address spacing between tasks (512 MB — beyond any working set).
_ADDRESS_STRIDE_BLOCKS = 1 << 23


def build_tasks(
    names: Sequence[str],
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
) -> List[SimTask]:
    """Build one task per profile name, with disjoint address slices."""
    require_positive(instructions, "instructions")
    tasks = []
    for i, name in enumerate(names):
        profile = spec_profile(name)
        tasks.append(
            task_from_profile(
                profile,
                instructions=instructions,
                base_block=(i + 1) * _ADDRESS_STRIDE_BLOCKS,
                seed=stable_seed(seed, name, i),
            )
        )
    return tasks


def build_parsec_processes(
    names: Sequence[str],
    instructions_per_thread: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
) -> List[SimProcess]:
    """Build one multithreaded process per PARSEC-like profile name."""
    require_positive(instructions_per_thread, "instructions_per_thread")
    processes = []
    for i, name in enumerate(names):
        profile = parsec_profile(name)
        processes.append(
            process_from_parsec(
                profile,
                instructions_per_thread=instructions_per_thread,
                base_block=(i + 1) * _ADDRESS_STRIDE_BLOCKS,
                seed=stable_seed(seed, name, i),
            )
        )
    return processes


def default_signature_config(machine: MachineConfig, **overrides) -> SignatureConfig:
    """Signature hardware sized to the machine's shared L2 (paper default).

    Entries = number of cache lines; one XOR hash; 3-bit counters.
    Keyword overrides pass through (e.g. ``sampling_denominator=4``).
    """
    if not machine.shared_l2:
        raise ConfigurationError("signature hardware requires a shared L2")
    geometry = machine.l2.geometry
    params = dict(
        num_cores=machine.num_cores,
        num_sets=geometry.num_sets,
        ways=geometry.ways,
        counter_bits=3,
        num_hashes=1,
        hash_kind="xor",
    )
    params.update(overrides)
    return SignatureConfig(**params)


def run_mix(
    machine: MachineConfig,
    tasks: Sequence[SimTask],
    *,
    mapping: Optional[Mapping] = None,
    monitor=None,
    signature_config: Optional[SignatureConfig] = None,
    scheduler_config: Optional[SchedulerConfig] = None,
    batch_accesses: int = 256,
    seed: int = 0,
    max_wall_cycles: Optional[float] = None,
    min_wall_cycles: Optional[float] = None,
    signature_injector=None,
) -> SimulationResult:
    """Execute a task mix to completion under the given constraints."""
    sim = MulticoreSimulator(
        machine,
        tasks,
        mapping=mapping,
        signature_config=signature_config,
        monitor=monitor,
        scheduler_config=scheduler_config,
        batch_accesses=batch_accesses,
        seed=seed,
        signature_injector=signature_injector,
    )
    return sim.run(
        max_wall_cycles=max_wall_cycles, min_wall_cycles=min_wall_cycles
    )


def run_solo(
    machine: MachineConfig,
    name: str,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
) -> SimulationResult:
    """Run one benchmark alone on the machine (baseline for degradations)."""
    tasks = build_tasks([name], instructions=instructions, seed=seed)
    return run_mix(machine, tasks, batch_accesses=batch_accesses, seed=seed)
