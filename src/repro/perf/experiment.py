"""Experiment drivers reproducing the paper's evaluation methodology.

* :func:`pairwise_shared` / :func:`pairwise_private_timeshare` — the
  Section 2.3 motivation experiments (Figures 3(b) and 3(a)).
* :func:`run_all_mappings` — user times under every balanced mapping
  (Table 1's three columns for a 4-on-2 mix).
* :func:`two_phase` — the full Section 4 methodology: phase 1 gathers
  signatures under the monitor and majority-votes a schedule; phase 2
  measures every mapping and scores the chosen one.
* :func:`mix_sweep` / :func:`stratified_mixes` — the Figure 10/11 sweeps
  (per-benchmark max/avg improvement across 4-benchmark mixes).
* :func:`parsec_two_phase` — the Figure 12 multithreaded variant.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.alloc.monitor import UserLevelMonitor
from repro.alloc.multithreaded import TwoPhasePolicy
from repro.errors import ConfigurationError, SimulationError
from repro.perf.machine import MachineConfig
from repro.perf.runner import (
    DEFAULT_INSTRUCTIONS,
    build_parsec_processes,
    build_tasks,
    default_signature_config,
    run_mix,
    run_solo,
)
from repro.sched.affinity import Mapping, balanced_mappings, canonical_mapping
from repro.sched.os_model import SchedulerConfig
from repro.sched.process import SimProcess, SimTask
from repro.utils.rng import make_rng

__all__ = [
    "PairwiseResult",
    "pairwise_shared",
    "pairwise_private_timeshare",
    "run_all_mappings",
    "MixResult",
    "two_phase",
    "SweepResult",
    "mix_sweep",
    "stratified_mixes",
    "parsec_two_phase",
    "default_mapping_for",
]


# ---------------------------------------------------------------------------
# Figure 3: pairwise degradation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PairwiseResult:
    """Solo and paired user times for a benchmark pool."""

    names: Tuple[str, ...]
    solo_times: Dict[str, float]
    pair_times: Dict[Tuple[str, str], Dict[str, float]]

    def degradation(self, name: str, partner: str) -> float:
        """Relative slowdown of *name* when run with *partner*."""
        key = tuple(sorted((name, partner)))
        paired = self.pair_times[key][name]
        return paired / self.solo_times[name] - 1.0

    def worst_degradation(self, name: str) -> Tuple[str, float]:
        """(partner, slowdown) of the worst pairing for *name*."""
        worst = max(
            (p for p in self.names if p != name),
            key=lambda p: self.degradation(name, p),
        )
        return worst, self.degradation(name, worst)

    def worst_case_table(self) -> Dict[str, float]:
        """name -> worst-case degradation (the bars of Figure 3)."""
        return {name: self.worst_degradation(name)[1] for name in self.names}


def _pairwise(
    machine: MachineConfig,
    names: Sequence[str],
    instructions: int,
    seed: int,
    mapping_builder,
    batch_accesses: int,
) -> PairwiseResult:
    solo = {
        name: run_solo(
            machine, name, instructions=instructions, seed=seed,
            batch_accesses=batch_accesses,
        ).user_time(name)
        for name in names
    }
    pair_times: Dict[Tuple[str, str], Dict[str, float]] = {}
    for a, b in itertools.combinations(sorted(names), 2):
        tasks = build_tasks([a, b], instructions=instructions, seed=seed)
        mapping = mapping_builder(tasks)
        result = run_mix(
            machine, tasks, mapping=mapping, seed=seed,
            batch_accesses=batch_accesses,
        )
        pair_times[(a, b)] = {a: result.user_time(a), b: result.user_time(b)}
    return PairwiseResult(
        names=tuple(sorted(names)), solo_times=solo, pair_times=pair_times
    )


def pairwise_shared(
    machine: MachineConfig,
    names: Sequence[str],
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
) -> PairwiseResult:
    """Figure 3(b): pairs on different cores sharing the L2."""
    if not machine.shared_l2 or machine.num_cores < 2:
        raise ConfigurationError("pairwise_shared needs a shared-L2 multicore")
    return _pairwise(
        machine,
        names,
        instructions,
        seed,
        lambda tasks: canonical_mapping([[tasks[0].tid], [tasks[1].tid]]),
        batch_accesses,
    )


def pairwise_private_timeshare(
    machine: MachineConfig,
    names: Sequence[str],
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
) -> PairwiseResult:
    """Figure 3(a): pairs confined to a single core with a private L2.

    The only interaction left is context-switch cache warm-up, which the
    paper measures at under ~10%.
    """
    return _pairwise(
        machine,
        names,
        instructions,
        seed,
        lambda tasks: canonical_mapping(
            [[tasks[0].tid, tasks[1].tid]]
            + [[] for _ in range(machine.num_cores - 1)]
        ),
        batch_accesses,
    )


# ---------------------------------------------------------------------------
# Table 1 / Figures 10-14: mapping evaluation and the two-phase methodology
# ---------------------------------------------------------------------------
def default_mapping_for(tasks: Sequence[SimTask], num_cores: int) -> Mapping:
    """The simulator's default placement (round-robin in task order)."""
    groups: List[List[int]] = [[] for _ in range(num_cores)]
    for i, task in enumerate(tasks):
        groups[i % num_cores].append(task.tid)
    return canonical_mapping(groups)


def run_all_mappings(
    machine: MachineConfig,
    tasks: Sequence[SimTask],
    seed: int = 0,
    batch_accesses: int = 256,
    scheduler_config: Optional[SchedulerConfig] = None,
    max_mappings: Optional[int] = None,
) -> Dict[Mapping, Dict[str, float]]:
    """User time of every task under every balanced mapping (Table 1).

    For larger machines the balanced-mapping count explodes (105 for 8
    tasks on 4 cores); *max_mappings* caps the measured set to a
    deterministic random sample — best/worst are then over the sampled
    reference set, which EXPERIMENTS.md notes explicitly.
    """
    mappings = balanced_mappings([t.tid for t in tasks], machine.num_cores)
    if max_mappings is not None and len(mappings) > max_mappings:
        rng = make_rng(seed)
        idx = rng.choice(len(mappings), size=max_mappings, replace=False)
        mappings = [mappings[i] for i in sorted(idx)]
    times: Dict[Mapping, Dict[str, float]] = {}
    for mapping in mappings:
        result = run_mix(
            machine,
            tasks,
            mapping=mapping,
            seed=seed,
            batch_accesses=batch_accesses,
            scheduler_config=scheduler_config,
        )
        times[mapping] = {t.name: result.user_time(t.name) for t in tasks}
    return times


@dataclass(frozen=True)
class MixResult:
    """Outcome of the two-phase methodology for one mix."""

    names: Tuple[str, ...]
    mapping_times: Dict[Mapping, Dict[str, float]]
    chosen_mapping: Mapping
    default_mapping: Mapping
    decisions: Tuple[Mapping, ...] = ()

    def time(self, mapping: Mapping, name: str) -> float:
        """User time of *name* under a specific mapping."""
        return self.mapping_times[mapping.canonical()][name]

    def worst_time(self, name: str) -> float:
        """The benchmark's worst user time over all mappings."""
        return max(times[name] for times in self.mapping_times.values())

    def best_time(self, name: str) -> float:
        """The benchmark's best user time over all mappings."""
        return min(times[name] for times in self.mapping_times.values())

    def chosen_time(self, name: str) -> float:
        """User time under the schedule the policy chose."""
        return self.time(self.chosen_mapping, name)

    def improvement(self, name: str) -> float:
        """Chosen-schedule gain over the worst case (the paper's metric)."""
        worst = self.worst_time(name)
        return (worst - self.chosen_time(name)) / worst

    def oracle_improvement(self, name: str) -> float:
        """Best achievable gain (upper bound on any policy)."""
        worst = self.worst_time(name)
        return (worst - self.best_time(name)) / worst

    def regret(self, name: str) -> float:
        """How far the chosen schedule is from the oracle."""
        return self.oracle_improvement(name) - self.improvement(name)


def two_phase(
    machine: MachineConfig,
    names: Sequence[str],
    policy,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
    monitor_interval: float = 8_000_000.0,
    signature_overrides: Optional[dict] = None,
    scheduler_config: Optional[SchedulerConfig] = None,
    phase1_scheduler: Optional[SchedulerConfig] = None,
    phase1_min_wall: float = 160_000_000.0,
    apply_during_phase1: bool = True,
    max_mappings: Optional[int] = None,
) -> MixResult:
    """The full Section 4 methodology for one mix.

    Phase 1 (the paper's Simics emulation): run under default placement
    with the signature unit attached; the monitor invokes *policy* every
    ``monitor_interval`` cycles; the majority decision is the chosen
    schedule. Phase 2 (the paper's real-machine runs): measure every
    balanced mapping and report the chosen one's improvement over each
    benchmark's worst case.
    """
    tasks = build_tasks(list(names), instructions=instructions, seed=seed)
    sig = default_signature_config(machine, **(signature_overrides or {}))
    monitor = UserLevelMonitor(
        policy, interval_cycles=monitor_interval, apply=apply_during_phase1
    )
    if phase1_scheduler is None:
        # Phase-1 quanta must be long enough for each task to re-fault its
        # working set (so the RBV occupancy reflects the footprint, the
        # Figure 5 premise) yet short enough for many samples; smoothing
        # stabilises the allocator against quantum-to-quantum noise.
        phase1_scheduler = SchedulerConfig(
            num_cores=machine.num_cores,
            timeslice_cycles=8_000_000.0,
            context_smoothing=0.6,
        )
    phase1 = run_mix(
        machine,
        tasks,
        monitor=monitor,
        signature_config=sig,
        seed=seed,
        batch_accesses=batch_accesses,
        scheduler_config=phase1_scheduler,
        min_wall_cycles=phase1_min_wall,
    )
    default = default_mapping_for(tasks, machine.num_cores)
    chosen = phase1.majority_mapping or default
    mapping_times = run_all_mappings(
        machine,
        tasks,
        seed=seed,
        batch_accesses=batch_accesses,
        scheduler_config=scheduler_config,
        max_mappings=max_mappings,
    )
    if chosen.canonical() not in mapping_times:
        # A lopsided phase-1 decision (possible with < cores·size tasks)
        # is measured explicitly.
        result = run_mix(
            machine, tasks, mapping=chosen, seed=seed,
            batch_accesses=batch_accesses, scheduler_config=scheduler_config,
        )
        mapping_times[chosen.canonical()] = {
            t.name: result.user_time(t.name) for t in tasks
        }
    return MixResult(
        names=tuple(names),
        mapping_times=mapping_times,
        chosen_mapping=chosen.canonical(),
        default_mapping=default,
        decisions=tuple(phase1.decisions),
    )


# ---------------------------------------------------------------------------
# Figures 10/11: sweep over mixes
# ---------------------------------------------------------------------------
@dataclass
class SweepResult:
    """Per-benchmark improvements across a set of mixes."""

    improvements: Dict[str, List[float]] = field(default_factory=dict)
    mix_results: List[MixResult] = field(default_factory=list)

    def add(self, result: MixResult) -> None:
        """Fold one mix's result into the per-benchmark aggregates."""
        self.mix_results.append(result)
        for name in result.names:
            self.improvements.setdefault(name, []).append(
                result.improvement(name)
            )

    def max_improvement(self, name: str) -> float:
        """The paper's left bars (Figures 10-12)."""
        return max(self.improvements[name])

    def avg_improvement(self, name: str) -> float:
        """The paper's right bars."""
        return float(np.mean(self.improvements[name]))

    def benchmarks(self) -> List[str]:
        """Benchmarks seen across the sweep, sorted."""
        return sorted(self.improvements)

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """name -> (max, avg) improvement."""
        return {
            name: (self.max_improvement(name), self.avg_improvement(name))
            for name in self.benchmarks()
        }


def stratified_mixes(
    pool: Sequence[str],
    mixes_per_benchmark: int = 8,
    mix_size: int = 4,
    seed: int = 0,
) -> List[Tuple[str, ...]]:
    """A deterministic subset of mixes covering every benchmark evenly.

    The paper runs all C(12,4)=495 mixes on hardware; the default harness
    samples so each pool member appears in at least *mixes_per_benchmark*
    mixes (set the env knob REPRO_FULL=1 in the benches for the full sweep).
    """
    if mix_size > len(pool):
        raise ConfigurationError("mix_size exceeds pool size")
    rng = make_rng(seed)
    pool = sorted(pool)
    counts = {name: 0 for name in pool}
    mixes: List[Tuple[str, ...]] = []
    seen = set()
    # Round-robin: repeatedly give the least-covered benchmark a new mix.
    while min(counts.values()) < mixes_per_benchmark:
        anchor = min(pool, key=lambda n: counts[n])
        others = [n for n in pool if n != anchor]
        for _ in range(200):
            partners = tuple(
                sorted(rng.choice(others, size=mix_size - 1, replace=False))
            )
            mix = tuple(sorted((anchor, *partners)))
            if mix not in seen:
                break
        else:  # pool exhausted of fresh mixes for this anchor
            break
        seen.add(mix)
        mixes.append(mix)
        for name in mix:
            counts[name] += 1
    return mixes


def mix_sweep(
    machine: MachineConfig,
    mixes: Sequence[Sequence[str]],
    policy,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
    **two_phase_kwargs,
) -> SweepResult:
    """Run the two-phase methodology over many mixes (Figure 10/11 data)."""
    sweep = SweepResult()
    for i, mix in enumerate(mixes):
        sweep.add(
            two_phase(
                machine,
                list(mix),
                policy,
                instructions=instructions,
                seed=seed + i,
                batch_accesses=batch_accesses,
                **two_phase_kwargs,
            )
        )
    return sweep


# ---------------------------------------------------------------------------
# Figure 12: multithreaded two-phase
# ---------------------------------------------------------------------------
def parsec_two_phase(
    machine: MachineConfig,
    app_names: Sequence[str],
    instructions_per_thread: int = DEFAULT_INSTRUCTIONS // 2,
    seed: int = 0,
    batch_accesses: int = 256,
    monitor_interval: float = 8_000_000.0,
    method: str = "auto",
    scheduler_config: Optional[SchedulerConfig] = None,
    phase1_scheduler: Optional[SchedulerConfig] = None,
    phase1_min_wall: float = 160_000_000.0,
) -> MixResult:
    """Two-phase methodology for a mix of multithreaded applications.

    Phase 2's reference set is the whole-process balanced mappings (each
    application's threads kept together, applications paired per core) plus
    the default placement — exhaustive thread-level enumeration is
    intractable (C(16,8)/2 mappings), and the paper's reported baseline is
    likewise schedule-level. Improvements are per *application* user time
    (slowest thread's first completion).
    """
    processes = build_parsec_processes(
        list(app_names), instructions_per_thread=instructions_per_thread, seed=seed
    )
    tasks: List[SimTask] = [t for p in processes for t in p.tasks]
    sig = default_signature_config(machine)
    policy = TwoPhasePolicy(method=method, seed=seed)
    monitor = UserLevelMonitor(policy, interval_cycles=monitor_interval, apply=True)
    if phase1_scheduler is None:
        phase1_scheduler = SchedulerConfig(
            num_cores=machine.num_cores,
            timeslice_cycles=8_000_000.0,
            context_smoothing=0.6,
        )
    phase1 = run_mix(
        machine,
        tasks,
        monitor=monitor,
        signature_config=sig,
        seed=seed,
        batch_accesses=batch_accesses,
        scheduler_config=phase1_scheduler,
        min_wall_cycles=phase1_min_wall,
    )
    default = default_mapping_for(tasks, machine.num_cores)
    chosen = (phase1.majority_mapping or default).canonical()

    def app_times(result) -> Dict[str, float]:
        return {
            p.name: max(
                result.user_time(t.name) for t in p.tasks
            )
            for p in processes
        }

    mapping_times: Dict[Mapping, Dict[str, float]] = {}
    # Reference: whole-process groupings (process pairs per core).
    for proc_mapping in balanced_mappings(
        [p.process_id for p in processes], machine.num_cores
    ):
        groups = []
        for group in proc_mapping.groups:
            tids = []
            for p in processes:
                if p.process_id in group:
                    tids.extend(t.tid for t in p.tasks)
            groups.append(tids)
        mapping = canonical_mapping(groups)
        result = run_mix(
            machine, tasks, mapping=mapping, seed=seed,
            batch_accesses=batch_accesses, scheduler_config=scheduler_config,
        )
        mapping_times[mapping] = app_times(result)
    # Reference: default placement.
    if default not in mapping_times:
        result = run_mix(
            machine, tasks, mapping=default, seed=seed,
            batch_accesses=batch_accesses, scheduler_config=scheduler_config,
        )
        mapping_times[default] = app_times(result)
    # Measured: the chosen (two-phase) schedule.
    if chosen not in mapping_times:
        result = run_mix(
            machine, tasks, mapping=chosen, seed=seed,
            batch_accesses=batch_accesses, scheduler_config=scheduler_config,
        )
        mapping_times[chosen] = app_times(result)
    return MixResult(
        names=tuple(app_names),
        mapping_times=mapping_times,
        chosen_mapping=chosen,
        default_mapping=default,
        decisions=tuple(phase1.decisions),
    )
