"""Experiment drivers reproducing the paper's evaluation methodology.

* :func:`pairwise_shared` / :func:`pairwise_private_timeshare` — the
  Section 2.3 motivation experiments (Figures 3(b) and 3(a)).
* :func:`run_all_mappings` — user times under every balanced mapping
  (Table 1's three columns for a 4-on-2 mix).
* :func:`two_phase` — the full Section 4 methodology: phase 1 gathers
  signatures under the monitor and majority-votes a schedule; phase 2
  measures every mapping and scores the chosen one.
* :func:`mix_sweep` / :func:`stratified_mixes` — the Figure 10/11 sweeps
  (per-benchmark max/avg improvement across 4-benchmark mixes).
* :func:`parsec_two_phase` — the Figure 12 multithreaded variant.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

import numpy as np

from repro.alloc.monitor import UserLevelMonitor
from repro.alloc.multithreaded import TwoPhasePolicy
from repro.errors import ConfigurationError, SimulationError
from repro.estimate.dispatch import estimate_mix
from repro.estimate.options import EstimatorOptions
from repro.jobs.failures import (
    FailureReport,
    JobFailure,
    MixDegradation,
    MixFailure,
)
from repro.jobs.spec import (
    MonitorSpec,
    WorkloadSpec,
    make_run_spec,
    policy_to_spec,
)
from repro.perf.machine import MachineConfig
from repro.perf.runner import (
    DEFAULT_INSTRUCTIONS,
    build_parsec_processes,
    build_tasks,
    default_signature_config,
    run_mix,
    run_solo,
)
from repro.sched.affinity import Mapping, balanced_mappings, canonical_mapping
from repro.sched.os_model import SchedulerConfig
from repro.sched.process import SimTask
from repro.utils.rng import make_rng
from repro.workloads.parsec import parsec_profile

__all__ = [
    "PairwiseResult",
    "pairwise_shared",
    "pairwise_private_timeshare",
    "run_all_mappings",
    "MixResult",
    "two_phase",
    "SweepResult",
    "mix_sweep",
    "stratified_mixes",
    "parsec_two_phase",
    "default_mapping_for",
]


# ---------------------------------------------------------------------------
# Figure 3: pairwise degradation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PairwiseResult:
    """Solo and paired user times for a benchmark pool."""

    names: Tuple[str, ...]
    solo_times: Dict[str, float]
    pair_times: Dict[Tuple[str, str], Dict[str, float]]

    def degradation(self, name: str, partner: str) -> float:
        """Relative slowdown of *name* when run with *partner*."""
        key = tuple(sorted((name, partner)))
        paired = self.pair_times[key][name]
        return paired / self.solo_times[name] - 1.0

    def worst_degradation(self, name: str) -> Tuple[str, float]:
        """(partner, slowdown) of the worst pairing for *name*."""
        worst = max(
            (p for p in self.names if p != name),
            key=lambda p: self.degradation(name, p),
        )
        return worst, self.degradation(name, worst)

    def worst_case_table(self) -> Dict[str, float]:
        """name -> worst-case degradation (the bars of Figure 3)."""
        return {name: self.worst_degradation(name)[1] for name in self.names}


def _pairwise(
    machine: MachineConfig,
    names: Sequence[str],
    instructions: int,
    seed: int,
    mapping_builder,
    batch_accesses: int,
    pair_groups: Optional[Sequence[Sequence[int]]] = None,
    orchestrator=None,
) -> PairwiseResult:
    if orchestrator is None:
        solo = {
            name: run_solo(
                machine, name, instructions=instructions, seed=seed,
                batch_accesses=batch_accesses,
            ).user_time(name)
            for name in names
        }
        pair_times: Dict[Tuple[str, str], Dict[str, float]] = {}
        for a, b in itertools.combinations(sorted(names), 2):
            tasks = build_tasks([a, b], instructions=instructions, seed=seed)
            mapping = mapping_builder(tasks)
            result = run_mix(
                machine, tasks, mapping=mapping, seed=seed,
                batch_accesses=batch_accesses,
            )
            pair_times[(a, b)] = {
                a: result.user_time(a), b: result.user_time(b)
            }
        return PairwiseResult(
            names=tuple(sorted(names)), solo_times=solo, pair_times=pair_times
        )

    # Orchestrated: one batch of solo runs + one spec per pair, with the
    # pair's placement expressed over task indices 0 (=a) and 1 (=b).
    ordered = sorted(names)
    pairs = list(itertools.combinations(ordered, 2))
    specs = [
        make_run_spec(
            machine,
            WorkloadSpec(kind="spec", names=(name,),
                         instructions=instructions, seed=seed),
            seed=seed, batch_accesses=batch_accesses,
        )
        for name in ordered
    ] + [
        make_run_spec(
            machine,
            WorkloadSpec(kind="spec", names=(a, b),
                         instructions=instructions, seed=seed),
            mapping=pair_groups,
            seed=seed, batch_accesses=batch_accesses,
        )
        for a, b in pairs
    ]
    outcomes = orchestrator.run_specs(specs)
    solo = {
        name: outcomes[i].user_time(name) for i, name in enumerate(ordered)
    }
    pair_times = {
        (a, b): {a: out.user_time(a), b: out.user_time(b)}
        for (a, b), out in zip(pairs, outcomes[len(ordered):])
    }
    return PairwiseResult(
        names=tuple(ordered), solo_times=solo, pair_times=pair_times
    )


def pairwise_shared(
    machine: MachineConfig,
    names: Sequence[str],
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
    orchestrator=None,
) -> PairwiseResult:
    """Figure 3(b): pairs on different cores sharing the L2."""
    if not machine.shared_l2 or machine.num_cores < 2:
        raise ConfigurationError("pairwise_shared needs a shared-L2 multicore")
    return _pairwise(
        machine,
        names,
        instructions,
        seed,
        lambda tasks: canonical_mapping([[tasks[0].tid], [tasks[1].tid]]),
        batch_accesses,
        pair_groups=[[0], [1]],
        orchestrator=orchestrator,
    )


def pairwise_private_timeshare(
    machine: MachineConfig,
    names: Sequence[str],
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
    orchestrator=None,
) -> PairwiseResult:
    """Figure 3(a): pairs confined to a single core with a private L2.

    The only interaction left is context-switch cache warm-up, which the
    paper measures at under ~10%.
    """
    return _pairwise(
        machine,
        names,
        instructions,
        seed,
        lambda tasks: canonical_mapping(
            [[tasks[0].tid, tasks[1].tid]]
            + [[] for _ in range(machine.num_cores - 1)]
        ),
        batch_accesses,
        pair_groups=[[0, 1]] + [[] for _ in range(machine.num_cores - 1)],
        orchestrator=orchestrator,
    )


# ---------------------------------------------------------------------------
# Table 1 / Figures 10-14: mapping evaluation and the two-phase methodology
# ---------------------------------------------------------------------------
def default_mapping_for(tasks: Sequence[SimTask], num_cores: int) -> Mapping:
    """The simulator's default placement (round-robin in task order)."""
    groups: List[List[int]] = [[] for _ in range(num_cores)]
    for i, task in enumerate(tasks):
        groups[i % num_cores].append(task.tid)
    return canonical_mapping(groups)


def _sample_mappings(
    mappings: List[Mapping], seed: int, max_mappings: Optional[int]
) -> List[Mapping]:
    """Deterministically cap a mapping list to *max_mappings* samples."""
    if max_mappings is not None and len(mappings) > max_mappings:
        rng = make_rng(seed)
        idx = rng.choice(len(mappings), size=max_mappings, replace=False)
        mappings = [mappings[i] for i in sorted(idx)]
    return mappings


def _default_index_mapping(num_tasks: int, num_cores: int) -> Mapping:
    """Round-robin default placement over task indices 0..num_tasks-1."""
    groups: List[List[int]] = [[] for _ in range(num_cores)]
    for i in range(num_tasks):
        groups[i % num_cores].append(i)
    return canonical_mapping(groups)


def _measure_mix(
    machine: MachineConfig,
    tasks: Sequence[SimTask],
    *,
    mapping: Optional[Mapping],
    seed: int,
    batch_accesses: int,
    scheduler_config: Optional[SchedulerConfig],
    backend: str,
    estimator: Optional[TMapping[str, Any]],
):
    """One serial measurement run through the selected backend.

    The exact backend goes through :func:`~repro.perf.runner.run_mix`
    unchanged; estimate backends dispatch through
    :func:`~repro.estimate.dispatch.estimate_mix` and return the same
    result type.
    """
    if backend == "exact":
        return run_mix(
            machine,
            tasks,
            mapping=mapping,
            seed=seed,
            batch_accesses=batch_accesses,
            scheduler_config=scheduler_config,
        )
    result, _ = estimate_mix(
        machine,
        tasks,
        backend=backend,
        mapping=mapping,
        scheduler_config=scheduler_config,
        batch_accesses=batch_accesses,
        seed=seed,
        options=EstimatorOptions.from_dict(estimator),
    )
    return result


def run_all_mappings(
    machine: MachineConfig,
    tasks: Sequence[SimTask],
    seed: int = 0,
    batch_accesses: int = 256,
    scheduler_config: Optional[SchedulerConfig] = None,
    max_mappings: Optional[int] = None,
    orchestrator=None,
    workload: Optional[WorkloadSpec] = None,
    backend: str = "exact",
    estimator: Optional[TMapping[str, Any]] = None,
) -> Dict[Mapping, Dict[str, float]]:
    """User time of every task under every balanced mapping (Table 1).

    For larger machines the balanced-mapping count explodes (105 for 8
    tasks on 4 cores); *max_mappings* caps the measured set to a
    deterministic random sample — best/worst are then over the sampled
    reference set, which EXPERIMENTS.md notes explicitly.

    With an *orchestrator*, the per-mapping simulations run as one
    (possibly parallel, cached) batch; *workload* must then describe how
    to rebuild *tasks* declaratively, and the mappings' task ids are
    translated to the workload's index namespace for execution. The
    returned dict is keyed by the original tid-space mappings either way.

    *backend* selects the simulation backend for every measurement
    (``"exact"``, ``"analytical"`` or ``"sampled"``); *estimator*
    optionally carries :class:`~repro.estimate.options.EstimatorOptions`
    kwargs for the estimate backends.
    """
    mappings = _sample_mappings(
        balanced_mappings([t.tid for t in tasks], machine.num_cores),
        seed,
        max_mappings,
    )
    times: Dict[Mapping, Dict[str, float]] = {}
    if orchestrator is None:
        for mapping in mappings:
            result = _measure_mix(
                machine,
                tasks,
                mapping=mapping,
                seed=seed,
                batch_accesses=batch_accesses,
                scheduler_config=scheduler_config,
                backend=backend,
                estimator=estimator,
            )
            times[mapping] = {t.name: result.user_time(t.name) for t in tasks}
        return times
    if workload is None:
        raise ConfigurationError(
            "run_all_mappings with an orchestrator needs a workload spec"
        )
    tid_to_ix = {t.tid: i for i, t in enumerate(tasks)}
    specs = [
        make_run_spec(
            machine,
            workload,
            mapping=[[tid_to_ix[tid] for tid in g] for g in m.groups],
            scheduler=scheduler_config,
            seed=seed,
            batch_accesses=batch_accesses,
            backend=backend,
            estimator=estimator,
        )
        for m in mappings
    ]
    outcomes = orchestrator.run_specs(specs)
    for mapping, outcome in zip(mappings, outcomes):
        times[mapping] = {t.name: outcome.user_time(t.name) for t in tasks}
    return times


@dataclass(frozen=True)
class MixResult:
    """Outcome of the two-phase methodology for one mix.

    ``degradations`` carries phase 1's structured degradation events —
    non-empty exactly when the signature failed its health checks (or
    phase 1 itself crashed in keep-going mode) and the mix fell back to
    the default schedule.
    """

    names: Tuple[str, ...]
    mapping_times: Dict[Mapping, Dict[str, float]]
    chosen_mapping: Mapping
    default_mapping: Mapping
    decisions: Tuple[Mapping, ...] = ()
    degradations: Tuple[Dict[str, Any], ...] = ()

    def time(self, mapping: Mapping, name: str) -> float:
        """User time of *name* under a specific mapping."""
        return self.mapping_times[mapping.canonical()][name]

    def worst_time(self, name: str) -> float:
        """The benchmark's worst user time over all mappings."""
        return max(times[name] for times in self.mapping_times.values())

    def best_time(self, name: str) -> float:
        """The benchmark's best user time over all mappings."""
        return min(times[name] for times in self.mapping_times.values())

    def chosen_time(self, name: str) -> float:
        """User time under the schedule the policy chose."""
        return self.time(self.chosen_mapping, name)

    def improvement(self, name: str) -> float:
        """Chosen-schedule gain over the worst case (the paper's metric)."""
        worst = self.worst_time(name)
        return (worst - self.chosen_time(name)) / worst

    def oracle_improvement(self, name: str) -> float:
        """Best achievable gain (upper bound on any policy)."""
        worst = self.worst_time(name)
        return (worst - self.best_time(name)) / worst

    def regret(self, name: str) -> float:
        """How far the chosen schedule is from the oracle."""
        return self.oracle_improvement(name) - self.improvement(name)


def _phase1_scheduler_default(machine: MachineConfig) -> SchedulerConfig:
    """The standard phase-1 scheduler (long quanta, smoothed contexts).

    Phase-1 quanta must be long enough for each task to re-fault its
    working set (so the RBV occupancy reflects the footprint, the Figure 5
    premise) yet short enough for many samples; smoothing stabilises the
    allocator against quantum-to-quantum noise.
    """
    return SchedulerConfig(
        num_cores=machine.num_cores,
        timeslice_cycles=8_000_000.0,
        context_smoothing=0.6,
    )


class _TwoPhasePlan:
    """One mix's two-phase methodology as a batch of run specs.

    The plan submits the phase-1 (signature-gathering) spec and every
    phase-2 reference-mapping spec *together* — phase 2 measures the full
    reference set regardless of phase 1's outcome, so there is no
    sequential dependency and a whole sweep's plans can share one batch.
    Only the rare "chosen mapping outside the reference set" measurement
    needs a second round, surfaced by :meth:`resolve`.

    Note one deliberate divergence from the serial path: the policy is
    rebuilt from its declarative form for each plan, so a stateful policy
    (the interference policies advance an invocation counter that feeds
    their tie-break seeds) starts fresh per mix instead of carrying state
    across a sweep. Results are self-consistent across worker counts
    either way, which is the property the cache keys rely on.
    """

    def __init__(
        self,
        machine: MachineConfig,
        names: Sequence[str],
        policy,
        *,
        instructions: int = DEFAULT_INSTRUCTIONS,
        seed: int = 0,
        batch_accesses: int = 256,
        monitor_interval: float = 8_000_000.0,
        signature_overrides: Optional[dict] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        phase1_scheduler: Optional[SchedulerConfig] = None,
        phase1_min_wall: float = 160_000_000.0,
        apply_during_phase1: bool = True,
        max_mappings: Optional[int] = None,
        faults: Optional[TMapping[str, Any]] = None,
        backend: str = "exact",
        estimator: Optional[TMapping[str, Any]] = None,
    ):
        self.names = tuple(names)
        self.machine = machine
        self.seed = seed
        self.batch_accesses = batch_accesses
        self.scheduler_config = scheduler_config
        # Phase 1 needs the exact engine (signature hardware + monitor);
        # the backend applies to phase-2 measurements only.
        self.backend = backend
        self.estimator = estimator
        self.workload = WorkloadSpec(
            kind="spec", names=self.names, instructions=instructions, seed=seed
        )
        policy_name, policy_kwargs = policy_to_spec(policy)
        monitor = MonitorSpec.make(
            policy_name,
            policy_kwargs,
            interval_cycles=monitor_interval,
            apply=apply_during_phase1,
        )
        phase1_spec = make_run_spec(
            machine,
            self.workload,
            monitor=monitor,
            signature=default_signature_config(
                machine, **(signature_overrides or {})
            ),
            scheduler=phase1_scheduler or _phase1_scheduler_default(machine),
            seed=seed,
            batch_accesses=batch_accesses,
            min_wall_cycles=phase1_min_wall,
            faults=faults,
        )
        self.mappings = _sample_mappings(
            balanced_mappings(list(range(len(self.names))), machine.num_cores),
            seed,
            max_mappings,
        )
        self.specs = [phase1_spec] + [
            self._measure_spec(m) for m in self.mappings
        ]
        self.default = _default_index_mapping(
            len(self.names), machine.num_cores
        )
        self.chosen: Optional[Mapping] = None
        self.decisions: Tuple[Mapping, ...] = ()
        self.mapping_times: Dict[Mapping, Dict[str, float]] = {}
        #: Phase-1 degradation events (health-check fallbacks, or a
        #: synthesized event when phase 1 itself failed in keep-going mode).
        self.degradation_events: Tuple[Dict[str, Any], ...] = ()
        #: Set when the mix cannot produce a result (keep-going sweeps).
        self.failure: Optional[MixFailure] = None

    def _measure_spec(self, mapping: Mapping):
        """The phase-2 measurement spec of one index-space mapping."""
        return make_run_spec(
            self.machine,
            self.workload,
            mapping=[sorted(g) for g in mapping.groups],
            scheduler=self.scheduler_config,
            seed=self.seed,
            batch_accesses=self.batch_accesses,
            backend=self.backend,
            estimator=self.estimator,
        )

    def resolve(self, outcomes):
        """Consume this plan's slice of batch outcomes.

        Returns the extra measurement spec needed when the chosen mapping
        fell outside the reference set, else ``None``.

        Keep-going sweeps hand this method :class:`JobFailure` slots. A
        failed phase 1 degrades the mix to the default schedule (with a
        synthesized degradation event); failed phase-2 measurements drop
        out of the reference set; a mix whose *entire* reference set
        failed is marked via :attr:`failure` and produces no result.
        """
        phase1 = outcomes[0]
        if isinstance(phase1, JobFailure):
            self.decisions = ()
            self.chosen = self.default
            self.degradation_events = (
                {
                    "action": "fallback-default-mapping",
                    "reason": f"phase-1 run failed: {phase1.error}",
                },
            )
        else:
            self.decisions = tuple(phase1.decisions_mappings())
            self.chosen = (
                phase1.majority_mapping() or self.default
            ).canonical()
            self.degradation_events = tuple(phase1.degradations)
        self.mapping_times = {}
        measurement_errors: List[str] = []
        for m, out in zip(self.mappings, outcomes[1:]):
            if isinstance(out, JobFailure):
                measurement_errors.append(out.error)
                continue
            self.mapping_times[m] = {
                name: out.user_time(name) for name in self.names
            }
        if not self.mapping_times:
            self.failure = MixFailure(
                mix=self.names,
                error="all phase-2 measurements failed: "
                + "; ".join(sorted(set(measurement_errors))),
            )
            return None
        if self.chosen not in self.mapping_times:
            return self._measure_spec(self.chosen)
        return None

    def finish(self, extra=None) -> Optional[MixResult]:
        """Assemble the :class:`MixResult` (after any extra measurement).

        Returns ``None`` when the mix produced no usable result (the
        cause is then recorded in :attr:`failure`).
        """
        if self.failure is not None:
            return None
        if extra is not None:
            if isinstance(extra, JobFailure):
                self.failure = MixFailure(
                    mix=self.names,
                    error=f"chosen-mapping measurement failed: {extra.error}",
                    attempts=extra.attempts,
                    wall_time=extra.wall_time,
                )
                return None
            self.mapping_times[self.chosen] = {
                name: extra.user_time(name) for name in self.names
            }
        return MixResult(
            names=self.names,
            mapping_times=self.mapping_times,
            chosen_mapping=self.chosen,
            default_mapping=self.default,
            decisions=self.decisions,
            degradations=self.degradation_events,
        )


def two_phase(
    machine: MachineConfig,
    names: Sequence[str],
    policy,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
    monitor_interval: float = 8_000_000.0,
    signature_overrides: Optional[dict] = None,
    scheduler_config: Optional[SchedulerConfig] = None,
    phase1_scheduler: Optional[SchedulerConfig] = None,
    phase1_min_wall: float = 160_000_000.0,
    apply_during_phase1: bool = True,
    max_mappings: Optional[int] = None,
    orchestrator=None,
    faults: Optional[TMapping[str, Any]] = None,
    backend: str = "exact",
    estimator: Optional[TMapping[str, Any]] = None,
) -> MixResult:
    """The full Section 4 methodology for one mix.

    Phase 1 (the paper's Simics emulation): run under default placement
    with the signature unit attached; the monitor invokes *policy* every
    ``monitor_interval`` cycles; the majority decision is the chosen
    schedule. Phase 2 (the paper's real-machine runs): measure every
    balanced mapping and report the chosen one's improvement over each
    benchmark's worst case.

    With an *orchestrator*, both phases are expressed as declarative run
    specs and submitted as one batch (phase 2's reference set does not
    depend on phase 1's outcome), executing in parallel and hitting the
    result cache; mappings in the returned :class:`MixResult` are then in
    the spec index namespace (task index = position in *names*).

    *faults* is an optional signature fault-injection plan (the dict form
    of a :class:`~repro.faults.injectors.SignatureFaultInjector`) applied
    to phase 1 only — phase 2 measures clean hardware. An injected fault
    the monitor detects degrades the mix to the default schedule and the
    events land in ``MixResult.degradations``.

    *backend* selects the simulation backend for phase-2 measurements
    (phase 1 always runs exact — the signature hardware and monitor need
    the real event stream); *estimator* carries optional
    :class:`~repro.estimate.options.EstimatorOptions` kwargs.
    """
    if orchestrator is not None:
        plan = _TwoPhasePlan(
            machine,
            names,
            policy,
            instructions=instructions,
            seed=seed,
            batch_accesses=batch_accesses,
            monitor_interval=monitor_interval,
            signature_overrides=signature_overrides,
            scheduler_config=scheduler_config,
            phase1_scheduler=phase1_scheduler,
            phase1_min_wall=phase1_min_wall,
            apply_during_phase1=apply_during_phase1,
            max_mappings=max_mappings,
            faults=faults,
            backend=backend,
            estimator=estimator,
        )
        extra_spec = plan.resolve(orchestrator.run_specs(plan.specs))
        extra = (
            orchestrator.run_spec(extra_spec)
            if extra_spec is not None
            else None
        )
        result = plan.finish(extra)
        if result is None:
            raise SimulationError(
                f"mix {'+'.join(plan.names)} failed: {plan.failure.error}"
            )
        return result
    tasks = build_tasks(list(names), instructions=instructions, seed=seed)
    sig = default_signature_config(machine, **(signature_overrides or {}))
    monitor = UserLevelMonitor(
        policy,
        interval_cycles=monitor_interval,
        apply=apply_during_phase1,
        signature_capacity=sig.num_entries,
    )
    injector = None
    if faults is not None:
        from repro.faults.injectors import build_injector

        injector = build_injector(faults)
    if phase1_scheduler is None:
        phase1_scheduler = _phase1_scheduler_default(machine)
    phase1 = run_mix(
        machine,
        tasks,
        monitor=monitor,
        signature_config=sig,
        seed=seed,
        batch_accesses=batch_accesses,
        scheduler_config=phase1_scheduler,
        min_wall_cycles=phase1_min_wall,
        signature_injector=injector,
    )
    default = default_mapping_for(tasks, machine.num_cores)
    chosen = phase1.majority_mapping or default
    mapping_times = run_all_mappings(
        machine,
        tasks,
        seed=seed,
        batch_accesses=batch_accesses,
        scheduler_config=scheduler_config,
        max_mappings=max_mappings,
        backend=backend,
        estimator=estimator,
    )
    if chosen.canonical() not in mapping_times:
        # A lopsided phase-1 decision (possible with < cores·size tasks)
        # is measured explicitly.
        result = _measure_mix(
            machine, tasks, mapping=chosen, seed=seed,
            batch_accesses=batch_accesses, scheduler_config=scheduler_config,
            backend=backend, estimator=estimator,
        )
        mapping_times[chosen.canonical()] = {
            t.name: result.user_time(t.name) for t in tasks
        }
    return MixResult(
        names=tuple(names),
        mapping_times=mapping_times,
        chosen_mapping=chosen.canonical(),
        default_mapping=default,
        decisions=tuple(phase1.decisions),
        degradations=tuple(phase1.degradations),
    )


# ---------------------------------------------------------------------------
# Figures 10/11: sweep over mixes
# ---------------------------------------------------------------------------
@dataclass
class SweepResult:
    """Per-benchmark improvements across a set of mixes.

    ``failures`` aggregates what keep-going sweeps salvaged: failed mixes
    (no result at all) and degraded mixes (completed on the default-
    schedule fallback). Fail-fast sweeps leave it empty-but-for-
    degradations, since a failure aborts the sweep instead.
    """

    improvements: Dict[str, List[float]] = field(default_factory=dict)
    mix_results: List[MixResult] = field(default_factory=list)
    failures: FailureReport = field(default_factory=FailureReport)

    def add(self, result: MixResult) -> None:
        """Fold one mix's result into the per-benchmark aggregates.

        Degraded mixes still count toward the improvements (their chosen
        schedule is the default), and are additionally recorded in the
        failure report so they can be named.
        """
        self.mix_results.append(result)
        for name in result.names:
            self.improvements.setdefault(name, []).append(
                result.improvement(name)
            )
        if result.degradations:
            self.failures.add_degradation(
                MixDegradation(mix=result.names, events=result.degradations)
            )

    def max_improvement(self, name: str) -> float:
        """The paper's left bars (Figures 10-12)."""
        return max(self.improvements[name])

    def avg_improvement(self, name: str) -> float:
        """The paper's right bars."""
        return float(np.mean(self.improvements[name]))

    def benchmarks(self) -> List[str]:
        """Benchmarks seen across the sweep, sorted."""
        return sorted(self.improvements)

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """name -> (max, avg) improvement."""
        return {
            name: (self.max_improvement(name), self.avg_improvement(name))
            for name in self.benchmarks()
        }


def stratified_mixes(
    pool: Sequence[str],
    mixes_per_benchmark: int = 8,
    mix_size: int = 4,
    seed: int = 0,
) -> List[Tuple[str, ...]]:
    """A deterministic subset of mixes covering every benchmark evenly.

    The paper runs all C(12,4)=495 mixes on hardware; the default harness
    samples so each pool member appears in at least *mixes_per_benchmark*
    mixes (set the env knob REPRO_FULL=1 in the benches for the full sweep).
    """
    if mix_size > len(pool):
        raise ConfigurationError("mix_size exceeds pool size")
    rng = make_rng(seed)
    pool = sorted(pool)
    counts = {name: 0 for name in pool}
    mixes: List[Tuple[str, ...]] = []
    seen = set()
    # Round-robin: repeatedly give the least-covered benchmark a new mix.
    while min(counts.values()) < mixes_per_benchmark:
        anchor = min(pool, key=lambda n: counts[n])
        others = [n for n in pool if n != anchor]
        for _ in range(200):
            partners = tuple(
                sorted(rng.choice(others, size=mix_size - 1, replace=False))
            )
            mix = tuple(sorted((anchor, *partners)))
            if mix not in seen:
                break
        else:  # pool exhausted of fresh mixes for this anchor
            break
        seen.add(mix)
        mixes.append(mix)
        for name in mix:
            counts[name] += 1
    return mixes


def _faults_for(
    faults, mix: Sequence[str]
) -> Optional[TMapping[str, Any]]:
    """Resolve the fault plan applying to one mix.

    *faults* is either ``None``, a single injector dict (``"kind"`` key
    present — applied to every mix), or a mapping from mix tuples to
    injector dicts (per-mix plans; absent mixes run fault-free).
    """
    if faults is None:
        return None
    if "kind" in faults:
        return faults
    return faults.get(tuple(mix))


def mix_sweep(
    machine: MachineConfig,
    mixes: Sequence[Sequence[str]],
    policy,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
    orchestrator=None,
    keep_going: bool = False,
    faults=None,
    **two_phase_kwargs,
) -> SweepResult:
    """Run the two-phase methodology over many mixes (Figure 10/11 data).

    With an *orchestrator*, every mix's phase-1 and phase-2 specs are
    concatenated into a single batch — the whole sweep fans out at once —
    followed by at most one small batch for chosen-outside-reference
    measurements. Results are identical for any worker count.

    With ``keep_going=True`` (requires an orchestrator constructed with
    ``keep_going=True``), a failing mix does not abort the sweep: its
    error is salvaged into ``SweepResult.failures`` and every other mix
    still completes. *faults* injects signature faults into phase 1 —
    either one injector dict for every mix or a ``{mix tuple: dict}``
    mapping for per-mix plans; mixes whose signature degrades fall back
    to the default schedule and are named in the failure report.
    """
    sweep = SweepResult()
    if orchestrator is not None:
        plans = [
            _TwoPhasePlan(
                machine,
                list(mix),
                policy,
                instructions=instructions,
                seed=seed + i,
                batch_accesses=batch_accesses,
                faults=_faults_for(faults, tuple(mix)),
                **two_phase_kwargs,
            )
            for i, mix in enumerate(mixes)
        ]
        outcomes = orchestrator.run_specs(
            [spec for plan in plans for spec in plan.specs]
        )
        position = 0
        extra_specs = []
        for plan in plans:
            chunk = outcomes[position:position + len(plan.specs)]
            position += len(plan.specs)
            extra_specs.append(plan.resolve(chunk))
        pending = [s for s in extra_specs if s is not None]
        extras = iter(orchestrator.run_specs(pending)) if pending else iter(())
        for plan, extra_spec in zip(plans, extra_specs):
            result = plan.finish(
                next(extras) if extra_spec is not None else None
            )
            if result is None:
                if not keep_going:
                    raise SimulationError(
                        f"mix {'+'.join(plan.names)} failed: "
                        f"{plan.failure.error}"
                    )
                sweep.failures.add_failure(plan.failure)
                continue
            sweep.add(result)
        return sweep
    for i, mix in enumerate(mixes):
        try:
            result = two_phase(
                machine,
                list(mix),
                policy,
                instructions=instructions,
                seed=seed + i,
                batch_accesses=batch_accesses,
                faults=_faults_for(faults, tuple(mix)),
                **two_phase_kwargs,
            )
        except Exception as exc:
            if not keep_going:
                raise
            sweep.failures.add_failure(
                MixFailure(
                    mix=tuple(mix),
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        sweep.add(result)
    return sweep


# ---------------------------------------------------------------------------
# Figure 12: multithreaded two-phase
# ---------------------------------------------------------------------------
def parsec_two_phase(
    machine: MachineConfig,
    app_names: Sequence[str],
    instructions_per_thread: int = DEFAULT_INSTRUCTIONS // 2,
    seed: int = 0,
    batch_accesses: int = 256,
    monitor_interval: float = 8_000_000.0,
    method: str = "auto",
    scheduler_config: Optional[SchedulerConfig] = None,
    phase1_scheduler: Optional[SchedulerConfig] = None,
    phase1_min_wall: float = 160_000_000.0,
    orchestrator=None,
) -> MixResult:
    """Two-phase methodology for a mix of multithreaded applications.

    Phase 2's reference set is the whole-process balanced mappings (each
    application's threads kept together, applications paired per core) plus
    the default placement — exhaustive thread-level enumeration is
    intractable (C(16,8)/2 mappings), and the paper's reported baseline is
    likewise schedule-level. Improvements are per *application* user time
    (slowest thread's first completion).

    With an *orchestrator*, phase 1 and the whole reference set run as one
    batch; mappings are then in flat thread-index space (threads numbered
    in application order).
    """
    if orchestrator is not None:
        return _parsec_two_phase_orchestrated(
            machine,
            app_names,
            instructions_per_thread=instructions_per_thread,
            seed=seed,
            batch_accesses=batch_accesses,
            monitor_interval=monitor_interval,
            method=method,
            scheduler_config=scheduler_config,
            phase1_scheduler=phase1_scheduler,
            phase1_min_wall=phase1_min_wall,
            orchestrator=orchestrator,
        )
    processes = build_parsec_processes(
        list(app_names), instructions_per_thread=instructions_per_thread, seed=seed
    )
    tasks: List[SimTask] = [t for p in processes for t in p.tasks]
    sig = default_signature_config(machine)
    policy = TwoPhasePolicy(method=method, seed=seed)
    monitor = UserLevelMonitor(policy, interval_cycles=monitor_interval, apply=True)
    if phase1_scheduler is None:
        phase1_scheduler = _phase1_scheduler_default(machine)
    phase1 = run_mix(
        machine,
        tasks,
        monitor=monitor,
        signature_config=sig,
        seed=seed,
        batch_accesses=batch_accesses,
        scheduler_config=phase1_scheduler,
        min_wall_cycles=phase1_min_wall,
    )
    default = default_mapping_for(tasks, machine.num_cores)
    chosen = (phase1.majority_mapping or default).canonical()

    def app_times(result) -> Dict[str, float]:
        return {
            p.name: max(
                result.user_time(t.name) for t in p.tasks
            )
            for p in processes
        }

    mapping_times: Dict[Mapping, Dict[str, float]] = {}
    # Reference: whole-process groupings (process pairs per core).
    for proc_mapping in balanced_mappings(
        [p.process_id for p in processes], machine.num_cores
    ):
        groups = []
        for group in proc_mapping.groups:
            tids = []
            for p in processes:
                if p.process_id in group:
                    tids.extend(t.tid for t in p.tasks)
            groups.append(tids)
        mapping = canonical_mapping(groups)
        result = run_mix(
            machine, tasks, mapping=mapping, seed=seed,
            batch_accesses=batch_accesses, scheduler_config=scheduler_config,
        )
        mapping_times[mapping] = app_times(result)
    # Reference: default placement.
    if default not in mapping_times:
        result = run_mix(
            machine, tasks, mapping=default, seed=seed,
            batch_accesses=batch_accesses, scheduler_config=scheduler_config,
        )
        mapping_times[default] = app_times(result)
    # Measured: the chosen (two-phase) schedule.
    if chosen not in mapping_times:
        result = run_mix(
            machine, tasks, mapping=chosen, seed=seed,
            batch_accesses=batch_accesses, scheduler_config=scheduler_config,
        )
        mapping_times[chosen] = app_times(result)
    return MixResult(
        names=tuple(app_names),
        mapping_times=mapping_times,
        chosen_mapping=chosen,
        default_mapping=default,
        decisions=tuple(phase1.decisions),
        degradations=tuple(phase1.degradations),
    )


def _parsec_two_phase_orchestrated(
    machine: MachineConfig,
    app_names: Sequence[str],
    *,
    instructions_per_thread: int,
    seed: int,
    batch_accesses: int,
    monitor_interval: float,
    method: str,
    scheduler_config: Optional[SchedulerConfig],
    phase1_scheduler: Optional[SchedulerConfig],
    phase1_min_wall: float,
    orchestrator,
) -> MixResult:
    """:func:`parsec_two_phase` through the job orchestrator.

    Thread indices are flat: application ``i`` owns the contiguous range
    after its predecessors' threads, mirroring the build order of
    :func:`~repro.perf.runner.build_parsec_processes`.
    """
    names = tuple(app_names)
    workload = WorkloadSpec(
        kind="parsec",
        names=names,
        instructions=instructions_per_thread,
        seed=seed,
    )
    spans: List[range] = []
    start = 0
    for name in names:
        count = parsec_profile(name).threads
        spans.append(range(start, start + count))
        start += count

    def measure(mapping: Mapping):
        return make_run_spec(
            machine,
            workload,
            mapping=[sorted(g) for g in mapping.groups],
            scheduler=scheduler_config,
            seed=seed,
            batch_accesses=batch_accesses,
        )

    phase1_spec = make_run_spec(
        machine,
        workload,
        monitor=MonitorSpec.make(
            "two_phase",
            {"method": method, "seed": seed},
            interval_cycles=monitor_interval,
            apply=True,
        ),
        signature=default_signature_config(machine),
        scheduler=phase1_scheduler or _phase1_scheduler_default(machine),
        seed=seed,
        batch_accesses=batch_accesses,
        min_wall_cycles=phase1_min_wall,
    )
    default = _default_index_mapping(start, machine.num_cores)
    candidates = []
    for proc_mapping in balanced_mappings(
        list(range(len(names))), machine.num_cores
    ):
        groups = [
            [i for app in sorted(g) for i in spans[app]]
            for g in proc_mapping.groups
        ]
        candidates.append(canonical_mapping(groups))
    if default not in candidates:
        candidates.append(default)

    outcomes = orchestrator.run_specs(
        [phase1_spec] + [measure(m) for m in candidates]
    )
    phase1 = outcomes[0]
    chosen = (phase1.majority_mapping() or default).canonical()

    def app_times(outcome) -> Dict[str, float]:
        return {
            name: outcome.process_time(i) for i, name in enumerate(names)
        }

    mapping_times: Dict[Mapping, Dict[str, float]] = {
        m: app_times(out) for m, out in zip(candidates, outcomes[1:])
    }
    if chosen not in mapping_times:
        mapping_times[chosen] = app_times(
            orchestrator.run_spec(measure(chosen))
        )
    return MixResult(
        names=names,
        mapping_times=mapping_times,
        chosen_mapping=chosen,
        default_mapping=default,
        decisions=tuple(phase1.decisions_mappings()),
        degradations=tuple(phase1.degradations),
    )
