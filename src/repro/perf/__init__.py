"""Closed-loop performance simulation and the paper's experiment drivers."""

from repro.perf.experiment import (
    MixResult,
    PairwiseResult,
    SweepResult,
    default_mapping_for,
    mix_sweep,
    pairwise_private_timeshare,
    pairwise_shared,
    parsec_two_phase,
    run_all_mappings,
    stratified_mixes,
    two_phase,
)
from repro.perf.machine import MachineConfig, core2duo, p4xeon, quadcore_shared
from repro.perf.runner import (
    DEFAULT_INSTRUCTIONS,
    build_parsec_processes,
    build_tasks,
    default_signature_config,
    run_mix,
    run_solo,
)
from repro.perf.simulator import MulticoreSimulator, SimulationResult, TaskResult
from repro.perf.timing import TimingModel

__all__ = [
    "MixResult",
    "PairwiseResult",
    "SweepResult",
    "default_mapping_for",
    "mix_sweep",
    "pairwise_private_timeshare",
    "pairwise_shared",
    "parsec_two_phase",
    "run_all_mappings",
    "stratified_mixes",
    "two_phase",
    "MachineConfig",
    "core2duo",
    "p4xeon",
    "quadcore_shared",
    "DEFAULT_INSTRUCTIONS",
    "build_parsec_processes",
    "build_tasks",
    "default_signature_config",
    "run_mix",
    "run_solo",
    "MulticoreSimulator",
    "SimulationResult",
    "TaskResult",
    "TimingModel",
]
