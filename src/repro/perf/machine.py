"""Machine configurations: the paper's two platforms plus extensions.

* :func:`core2duo` — Intel Core 2 Duo 2.6 GHz, two cores sharing a 4 MB
  16-way L2 (the paper's target machine, Sections 2.3.2 / 4.2).
* :func:`p4xeon` — P4 Xeon SMP with *private* 2 MB 8-way L2s (the control
  platform of Section 2.3.1).
* :func:`quadcore_shared` — a 4-core shared-L2 machine for the
  hierarchical-min-cut extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.config import CacheConfig, core2duo_l2, p4xeon_l2
from repro.errors import ConfigurationError
from repro.perf.timing import TimingModel
from repro.utils.validation import require_positive

__all__ = ["MachineConfig", "core2duo", "p4xeon", "quadcore_shared"]


@dataclass(frozen=True)
class MachineConfig:
    """A simulated multi-core machine.

    Parameters
    ----------
    name:
        Identifier used in results.
    num_cores:
        Physical cores.
    l2:
        L2 configuration — one shared instance when ``shared_l2`` is True,
        else one private instance per core.
    shared_l2:
        Whether cores contend in a single L2 (the paper's phenomenon).
    l1:
        Optional private L1 configuration per core. ``None`` (default)
        means workload generators emit L2-level reference streams directly
        (the standard, faster mode — see DESIGN.md); with an L1, the raw
        streams are filtered through per-core L1s first and only misses
        reach the L2 and its signature hardware, as on the real machines.
    timing:
        Cycle-accounting model.
    clock_hz:
        Core clock, used only to convert cycles to seconds for display.
    """

    name: str
    num_cores: int
    l2: CacheConfig
    shared_l2: bool = True
    l1: Optional[CacheConfig] = None
    timing: TimingModel = field(default_factory=TimingModel)
    clock_hz: float = 2.6e9

    def __post_init__(self) -> None:
        require_positive(self.num_cores, "num_cores")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")
        if (
            self.l1 is not None
            and self.l1.geometry.line_bytes != self.l2.geometry.line_bytes
        ):
            raise ConfigurationError("L1 and L2 must share a line size")

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds on this machine."""
        return cycles / self.clock_hz


def core2duo(timing: Optional[TimingModel] = None) -> MachineConfig:
    """The paper's target: 2 cores, shared 4 MB 16-way L2, 2.6 GHz."""
    return MachineConfig(
        name="core2duo",
        num_cores=2,
        l2=core2duo_l2(),
        shared_l2=True,
        timing=timing or TimingModel(),
        clock_hz=2.6e9,
    )


def p4xeon(timing: Optional[TimingModel] = None) -> MachineConfig:
    """The paper's control platform: private 2 MB L2 per processor.

    The Section 2.3.1 experiment confines each benchmark pair to a single
    processor, so cross-core cache contention is absent by construction;
    only context-switch warm-up remains.
    """
    return MachineConfig(
        name="p4xeon",
        num_cores=2,
        l2=p4xeon_l2(),
        shared_l2=False,
        timing=timing or TimingModel(cpi_base=1.0, l2_hit_cycles=18.0, mem_cycles=240.0),
        clock_hz=3.0e9,
    )


def quadcore_shared(timing: Optional[TimingModel] = None) -> MachineConfig:
    """A 4-core shared-L2 machine (for hierarchical min-cut experiments)."""
    return MachineConfig(
        name="quadcore",
        num_cores=4,
        l2=core2duo_l2(),
        shared_l2=True,
        timing=timing or TimingModel(),
        clock_hz=2.6e9,
    )
