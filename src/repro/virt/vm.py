"""Virtual machines and vcpus.

The paper's Xen experiments encapsulate one benchmark per VM ("Four VMs
were configured on the Xen hypervisor. Each VM ran Fedora Linux and one
benchmark", Section 4.2), so the common case is a single-vcpu VM whose
vcpu's reference stream is the benchmark's. Multi-vcpu VMs are supported
for completeness: all vcpus share the VM's ``process_id``, which is the
granularity the signature hardware tracks in virtualized mode (the paper's
"per-VM basis", Section 3.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.sched.process import SimTask, task_from_profile
from repro.utils.validation import require_positive
from repro.workloads.base import WorkloadProfile

__all__ = ["VirtualMachine"]

_vm_ids = itertools.count()


@dataclass
class VirtualMachine:
    """One guest VM: a named container of vcpu tasks."""

    name: str
    vcpus: List[SimTask]
    vm_id: int = field(default_factory=lambda: next(_vm_ids))

    def __post_init__(self) -> None:
        if not self.vcpus:
            raise ConfigurationError(f"VM {self.name!r} has no vcpus")
        # All vcpus share one process_id: the per-VM signature granularity.
        pid = self.vcpus[0].process_id
        for vcpu in self.vcpus:
            vcpu.process_id = pid

    @property
    def process_id(self) -> int:
        """Grouping key used by signatures and mappings."""
        return self.vcpus[0].process_id

    @property
    def tids(self) -> List[int]:
        """Task ids of all vcpus."""
        return [v.tid for v in self.vcpus]

    @classmethod
    def from_profile(
        cls,
        profile: WorkloadProfile,
        instructions: int,
        base_block: int = 0,
        seed: int = 0,
    ) -> "VirtualMachine":
        """The paper's shape: a single-vcpu VM running one benchmark."""
        require_positive(instructions, "instructions")
        task = task_from_profile(
            profile, instructions=instructions, base_block=base_block, seed=seed
        )
        task.name = f"vm:{profile.name}"
        return cls(name=profile.name, vcpus=[task])

    def user_time(self, result) -> float:
        """VM 'user time': the slowest vcpu's first completion."""
        return max(result.user_time(v.name) for v in self.vcpus)
