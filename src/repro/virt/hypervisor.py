"""The hypervisor layer: builds virtualized simulations from VMs.

The hardware infrastructure is identical to the native case (paper Section
3.1: "The infrastructure needed to support VMs is exactly the same") — the
differences are (a) signatures are tracked per VM rather than per process,
(b) the timing carries the virtualization tax, and (c) Dom0's background
activity shares the machine.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.core.signature import SignatureConfig
from repro.errors import ConfigurationError
from repro.perf.machine import MachineConfig
from repro.perf.simulator import MulticoreSimulator, SimulationResult
from repro.sched.affinity import Mapping
from repro.sched.os_model import SchedulerConfig
from repro.sched.process import SimTask
from repro.telemetry.context import current as telemetry_current
from repro.virt.overhead import VirtualizationOverhead
from repro.virt.vm import VirtualMachine
from repro.workloads.patterns import HotColdGenerator

__all__ = ["Hypervisor", "DOM0_NAME"]

DOM0_NAME = "dom0"

#: Block-address slice reserved for the Dom0 task, far above guest slices.
_DOM0_BASE_BLOCK = 1 << 30


class Hypervisor:
    """Owns the virtualized machine model and the guest VMs.

    Parameters
    ----------
    machine:
        The bare-metal platform the hypervisor runs on.
    vms:
        Guest VMs to schedule.
    overhead:
        The Xen-like overhead model.
    seed:
        Seed for the Dom0 background workload.
    """

    def __init__(
        self,
        machine: MachineConfig,
        vms: Sequence[VirtualMachine],
        overhead: Optional[VirtualizationOverhead] = None,
        seed: int = 0,
    ):
        if not vms:
            raise ConfigurationError("hypervisor needs at least one VM")
        names = [vm.name for vm in vms]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate VM names: {names}")
        self.vms = list(vms)
        self.overhead = overhead or VirtualizationOverhead()
        self.machine = replace(
            machine,
            name=f"{machine.name}+xen",
            timing=self.overhead.virtualize_timing(machine.timing),
        )
        self.dom0_task: Optional[SimTask] = None
        if self.overhead.includes_dom0:
            footprint_blocks = max(1, self.overhead.dom0_footprint_kb * 1024 // 64)
            self.dom0_task = SimTask(
                name=DOM0_NAME,
                generator=HotColdGenerator(
                    footprint_blocks,
                    max(1, footprint_blocks // 4),
                    hot_fraction=0.8,
                    base_block=_DOM0_BASE_BLOCK,
                    seed=seed,
                ),
                total_accesses=self.overhead.dom0_accesses,
                accesses_per_kinstr=2.0,
                mlp=1.5,
            )

    # ------------------------------------------------------------------
    @property
    def guest_tasks(self) -> List[SimTask]:
        """All guest vcpu tasks (excludes Dom0)."""
        return [v for vm in self.vms for v in vm.vcpus]

    @property
    def all_tasks(self) -> List[SimTask]:
        """Guest vcpus plus the Dom0 task (if modelled)."""
        tasks = self.guest_tasks
        if self.dom0_task is not None:
            tasks = tasks + [self.dom0_task]
        return tasks

    def scheduler_config(
        self, base: Optional[SchedulerConfig] = None
    ) -> SchedulerConfig:
        """The vcpu scheduler config with world-switch costs folded in."""
        base = base or SchedulerConfig(num_cores=self.machine.num_cores)
        return replace(
            base,
            num_cores=self.machine.num_cores,
            context_switch_cycles=base.context_switch_cycles
            + self.overhead.vm_switch_cycles,
        )

    def simulator(
        self,
        mapping: Optional[Mapping] = None,
        signature_config: Optional[SignatureConfig] = None,
        monitor=None,
        scheduler_config: Optional[SchedulerConfig] = None,
        batch_accesses: int = 256,
        seed: int = 0,
        signature_injector=None,
    ) -> MulticoreSimulator:
        """Build a virtualized simulation.

        *mapping* names guest vcpu tids only; the Dom0 task floats to the
        least-loaded core, as an unpinned domain would.
        """
        return MulticoreSimulator(
            self.machine,
            self.all_tasks,
            mapping=mapping,
            signature_config=signature_config,
            monitor=monitor,
            scheduler_config=self.scheduler_config(scheduler_config),
            batch_accesses=batch_accesses,
            seed=seed,
            signature_injector=signature_injector,
        )

    def run(
        self,
        mapping: Optional[Mapping] = None,
        signature_config: Optional[SignatureConfig] = None,
        monitor=None,
        scheduler_config: Optional[SchedulerConfig] = None,
        batch_accesses: int = 256,
        seed: int = 0,
        min_wall_cycles: Optional[float] = None,
        max_wall_cycles: Optional[float] = None,
        signature_injector=None,
    ) -> SimulationResult:
        """Run the VMs to completion (Dom0 restarts throughout)."""
        sim = self.simulator(
            mapping=mapping,
            signature_config=signature_config,
            monitor=monitor,
            scheduler_config=scheduler_config,
            batch_accesses=batch_accesses,
            seed=seed,
            signature_injector=signature_injector,
        )
        tel = telemetry_current()
        if tel is None or tel.tracer is None:
            return sim.run(
                max_wall_cycles=max_wall_cycles, min_wall_cycles=min_wall_cycles
            )
        with tel.tracer.span(
            "hypervisor.run",
            vms=len(self.vms),
            dom0=self.dom0_task is not None,
        ):
            return sim.run(
                max_wall_cycles=max_wall_cycles, min_wall_cycles=min_wall_cycles
            )

    def vm_user_time(self, result: SimulationResult, vm_name: str) -> float:
        """User time of a named VM (slowest vcpu's first completion)."""
        for vm in self.vms:
            if vm.name == vm_name:
                return vm.user_time(result)
        raise KeyError(f"no VM named {vm_name!r}")
