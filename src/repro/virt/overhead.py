"""Virtualization overhead model.

The paper (Section 5.1.2) attributes the dampened improvements inside Xen
to "virtualization overhead". On the 2006-era Core 2 Duo it evaluated,
Xen's memory virtualization (shadow paging / PV MMU hypercalls) taxed every
memory operation, VM switches cost world-switch hypercalls, and Dom0's own
activity lightly polluted the shared cache. This module models those three
components:

* a CPI multiplier plus a flat per-L2-reference cost (shadow-paging/TLB
  pressure that scales with memory activity),
* extra cycles per context/world switch,
* an optional Dom0 background task with a small footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.perf.timing import TimingModel

__all__ = ["VirtualizationOverhead"]


@dataclass(frozen=True)
class VirtualizationOverhead:
    """Knobs for the Xen-like overhead model.

    Parameters
    ----------
    cpi_multiplier:
        Scales the bare-metal CPI (instruction-side virtualization tax).
    per_access_cycles:
        Flat cycles added to every L2 reference (shadow-paging cost).
    vm_switch_cycles:
        Extra cycles per context switch (world switch + hypercall path).
    dom0_footprint_kb:
        Working-set size of the Dom0 background task (0 disables it).
    dom0_accesses:
        Per-run trace length of the Dom0 task (it restarts forever).
    """

    cpi_multiplier: float = 1.4
    per_access_cycles: float = 70.0
    vm_switch_cycles: float = 30_000.0
    dom0_footprint_kb: int = 256
    dom0_accesses: int = 20_000

    def __post_init__(self) -> None:
        if self.cpi_multiplier < 1.0:
            raise ConfigurationError("cpi_multiplier must be >= 1.0")
        if self.per_access_cycles < 0:
            raise ConfigurationError("per_access_cycles must be >= 0")
        if self.vm_switch_cycles < 0:
            raise ConfigurationError("vm_switch_cycles must be >= 0")
        if self.dom0_footprint_kb < 0 or self.dom0_accesses <= 0:
            raise ConfigurationError("invalid dom0 parameters")

    def virtualize_timing(self, timing: TimingModel) -> TimingModel:
        """Return the bare-metal *timing* with the tax applied."""
        return TimingModel(
            cpi_base=timing.cpi_base * self.cpi_multiplier,
            l2_hit_cycles=timing.l2_hit_cycles,
            mem_cycles=timing.mem_cycles,
            queue_coeff=timing.queue_coeff,
            intensity_ema=timing.intensity_ema,
            per_access_cycles=timing.per_access_cycles + self.per_access_cycles,
        )

    @property
    def includes_dom0(self) -> bool:
        """Whether a Dom0 background task is injected."""
        return self.dom0_footprint_kb > 0
