"""Dom0: the control domain running the allocation policy.

In the paper's architecture (Section 3.2) "the actual resource allocation
decisions are made in Dom0. An allocation policy running in this domain
utilizes a hyper-call interface to periodically query the hypervisor for
updated information regarding executing VMs". The hypercall interface has
the same shape as the native syscall interface, so
:class:`Dom0AllocationAgent` is the user-level monitor specialised to the
virtualized setting: it never reschedules Dom0's own vcpu, and it allocates
at VM granularity.

This module also carries the Figure 11 experiment drivers — the two-phase
methodology with VM encapsulation.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.alloc.monitor import UserLevelMonitor
from repro.jobs.spec import MonitorSpec, WorkloadSpec, make_run_spec, policy_to_spec
from repro.perf.experiment import MixResult, SweepResult
from repro.perf.machine import MachineConfig
from repro.perf.runner import default_signature_config
from repro.sched.affinity import Mapping, balanced_mappings, canonical_mapping
from repro.sched.os_model import SchedulerConfig
from repro.sched.syscall import SyscallInterface
from repro.telemetry.context import current as telemetry_current
from repro.utils.rng import stable_seed
from repro.virt.hypervisor import DOM0_NAME, Hypervisor
from repro.virt.overhead import VirtualizationOverhead
from repro.virt.vm import VirtualMachine
from repro.workloads.spec import spec_profile

__all__ = ["Dom0AllocationAgent", "vm_two_phase", "vm_mix_sweep"]

#: Block-address spacing between guest VMs (matches the native runner).
_ADDRESS_STRIDE_BLOCKS = 1 << 23


class Dom0AllocationAgent(UserLevelMonitor):
    """The control-domain allocator: a monitor that ignores Dom0 itself."""

    def invoke(self, syscall: SyscallInterface) -> Optional[Mapping]:
        tel = telemetry_current()
        span = (
            tel.tracer.begin("hypervisor.remap")
            if tel is not None and tel.tracer is not None
            else None
        )
        try:
            tasks = [t for t in syscall.query_tasks() if t.name != DOM0_NAME]
            if not tasks or any(not t.valid for t in tasks):
                self.skipped_invocations += 1
                self._count(tel, "virt_remaps_skipped_total")
                return None
            mapping = self.policy.allocate(tasks, syscall.num_cores).canonical()
            self.decisions.append(mapping)
            if self.apply:
                syscall.apply_mapping(mapping)
                self._count(tel, "virt_remaps_applied_total")
            return mapping
        finally:
            if span is not None:
                tel.tracer.end(span)


def _build_vms(
    names: Sequence[str], instructions: int, seed: int
) -> List[VirtualMachine]:
    vms = []
    for i, name in enumerate(names):
        vms.append(
            VirtualMachine.from_profile(
                spec_profile(name),
                instructions=instructions,
                base_block=(i + 1) * _ADDRESS_STRIDE_BLOCKS,
                seed=stable_seed(seed, "vm", name, i),
            )
        )
    return vms


class _VmTwoPhasePlan:
    """One VM mix's two-phase methodology as a batch of run specs.

    The virtualized analogue of the native two-phase plan: the phase-1
    (Dom0-agent) spec and every vcpu-mapping measurement spec go out as
    one batch; only a chosen-outside-reference mapping needs a second
    round. Mappings are in vcpu-index space (vcpu ``i`` belongs to the
    ``i``-th named VM).
    """

    def __init__(
        self,
        machine: MachineConfig,
        names: Sequence[str],
        policy,
        *,
        instructions: int = 6_000_000,
        overhead: Optional[VirtualizationOverhead] = None,
        seed: int = 0,
        batch_accesses: int = 256,
        monitor_interval: float = 8_000_000.0,
        phase1_min_wall: float = 160_000_000.0,
        scheduler_config: Optional[SchedulerConfig] = None,
    ):
        self.names = tuple(names)
        self.machine = machine
        self.seed = seed
        self.batch_accesses = batch_accesses
        self.scheduler_config = scheduler_config
        self.overhead = asdict(overhead or VirtualizationOverhead())
        self.workload = WorkloadSpec(
            kind="vm", names=self.names, instructions=instructions, seed=seed
        )
        policy_name, policy_kwargs = policy_to_spec(policy)
        phase1_spec = make_run_spec(
            machine,
            self.workload,
            monitor=MonitorSpec.make(
                policy_name,
                policy_kwargs,
                interval_cycles=monitor_interval,
                apply=True,
            ),
            signature=default_signature_config(machine),
            scheduler=SchedulerConfig(
                num_cores=machine.num_cores,
                timeslice_cycles=8_000_000.0,
                context_smoothing=0.6,
            ),
            overhead=self.overhead,
            seed=seed,
            batch_accesses=batch_accesses,
            min_wall_cycles=phase1_min_wall,
        )
        n = len(self.names)
        self.default = canonical_mapping(
            [
                [i for i in range(n) if i % machine.num_cores == c]
                for c in range(machine.num_cores)
            ]
        )
        self.mappings = balanced_mappings(list(range(n)), machine.num_cores)
        self.specs = [phase1_spec] + [
            self._measure_spec(m) for m in self.mappings
        ]
        self.chosen: Optional[Mapping] = None
        self.decisions: Tuple[Mapping, ...] = ()
        self.mapping_times: Dict[Mapping, Dict[str, float]] = {}

    def _measure_spec(self, mapping: Mapping):
        """The measurement spec of one vcpu-index mapping."""
        return make_run_spec(
            self.machine,
            self.workload,
            mapping=[sorted(g) for g in mapping.groups],
            scheduler=self.scheduler_config,
            overhead=self.overhead,
            seed=self.seed,
            batch_accesses=self.batch_accesses,
        )

    def _vm_times(self, outcome) -> Dict[str, float]:
        return {
            name: outcome.process_time(i)
            for i, name in enumerate(self.names)
        }

    def resolve(self, outcomes):
        """Consume this plan's outcomes; return any extra spec needed."""
        phase1 = outcomes[0]
        self.decisions = tuple(phase1.decisions_mappings())
        self.chosen = (phase1.majority_mapping() or self.default).canonical()
        self.mapping_times = {
            m: self._vm_times(out)
            for m, out in zip(self.mappings, outcomes[1:])
        }
        if self.chosen not in self.mapping_times:
            return self._measure_spec(self.chosen)
        return None

    def finish(self, extra=None) -> MixResult:
        """Assemble the :class:`~repro.perf.experiment.MixResult`."""
        if extra is not None:
            self.mapping_times[self.chosen] = self._vm_times(extra)
        return MixResult(
            names=self.names,
            mapping_times=self.mapping_times,
            chosen_mapping=self.chosen,
            default_mapping=self.default,
            decisions=self.decisions,
        )


def vm_two_phase(
    machine: MachineConfig,
    names: Sequence[str],
    policy,
    instructions: int = 6_000_000,
    overhead: Optional[VirtualizationOverhead] = None,
    seed: int = 0,
    batch_accesses: int = 256,
    monitor_interval: float = 8_000_000.0,
    phase1_min_wall: float = 160_000_000.0,
    scheduler_config: Optional[SchedulerConfig] = None,
    orchestrator=None,
) -> MixResult:
    """The Section 4 methodology with VM encapsulation (Figure 11).

    Identical structure to :func:`repro.perf.experiment.two_phase`, with
    the benchmark processes wrapped in single-vcpu VMs on a hypervisor, the
    Dom0 agent making decisions over hypercalls, and the virtualization
    overhead model active in both phases.

    With an *orchestrator*, both phases run as one (parallel, cached)
    batch and mappings are in vcpu-index space.
    """
    if orchestrator is not None:
        plan = _VmTwoPhasePlan(
            machine,
            names,
            policy,
            instructions=instructions,
            overhead=overhead,
            seed=seed,
            batch_accesses=batch_accesses,
            monitor_interval=monitor_interval,
            phase1_min_wall=phase1_min_wall,
            scheduler_config=scheduler_config,
        )
        extra_spec = plan.resolve(orchestrator.run_specs(plan.specs))
        extra = (
            orchestrator.run_spec(extra_spec)
            if extra_spec is not None
            else None
        )
        return plan.finish(extra)
    vms = _build_vms(names, instructions, seed)
    hypervisor = Hypervisor(machine, vms, overhead=overhead, seed=seed)
    sig = default_signature_config(machine)
    agent = Dom0AllocationAgent(
        policy, interval_cycles=monitor_interval, apply=True
    )
    phase1_sched = SchedulerConfig(
        num_cores=machine.num_cores,
        timeslice_cycles=8_000_000.0,
        context_smoothing=0.6,
    )
    phase1 = hypervisor.run(
        signature_config=sig,
        monitor=agent,
        scheduler_config=phase1_sched,
        seed=seed,
        batch_accesses=batch_accesses,
        min_wall_cycles=phase1_min_wall,
    )

    vcpu_tids = [vm.vcpus[0].tid for vm in vms]
    default = canonical_mapping(
        [
            [tid for i, tid in enumerate(vcpu_tids) if i % machine.num_cores == c]
            for c in range(machine.num_cores)
        ]
    )
    chosen = (phase1.majority_mapping or default).canonical()

    def vm_times(result) -> Dict[str, float]:
        return {vm.name: vm.user_time(result) for vm in vms}

    mapping_times: Dict[Mapping, Dict[str, float]] = {}
    candidates = balanced_mappings(vcpu_tids, machine.num_cores)
    for mapping in candidates:
        result = hypervisor.run(
            mapping=mapping,
            scheduler_config=scheduler_config,
            seed=seed,
            batch_accesses=batch_accesses,
        )
        mapping_times[mapping] = vm_times(result)
    if chosen not in mapping_times:
        result = hypervisor.run(
            mapping=chosen,
            scheduler_config=scheduler_config,
            seed=seed,
            batch_accesses=batch_accesses,
        )
        mapping_times[chosen] = vm_times(result)
    return MixResult(
        names=tuple(names),
        mapping_times=mapping_times,
        chosen_mapping=chosen,
        default_mapping=default,
        decisions=tuple(phase1.decisions),
    )


def vm_mix_sweep(
    machine: MachineConfig,
    mixes: Sequence[Sequence[str]],
    policy,
    instructions: int = 6_000_000,
    overhead: Optional[VirtualizationOverhead] = None,
    seed: int = 0,
    batch_accesses: int = 256,
    orchestrator=None,
    **two_phase_kwargs,
) -> SweepResult:
    """Figure 11's sweep: per-benchmark max/avg improvement inside VMs.

    With an *orchestrator*, every mix's specs are concatenated into one
    batch (plus at most one follow-up batch), exactly like the native
    :func:`~repro.perf.experiment.mix_sweep`.
    """
    sweep = SweepResult()
    if orchestrator is not None:
        plans = [
            _VmTwoPhasePlan(
                machine,
                list(mix),
                policy,
                instructions=instructions,
                overhead=overhead,
                seed=seed + i,
                batch_accesses=batch_accesses,
                **two_phase_kwargs,
            )
            for i, mix in enumerate(mixes)
        ]
        outcomes = orchestrator.run_specs(
            [spec for plan in plans for spec in plan.specs]
        )
        position = 0
        extra_specs = []
        for plan in plans:
            chunk = outcomes[position:position + len(plan.specs)]
            position += len(plan.specs)
            extra_specs.append(plan.resolve(chunk))
        pending = [s for s in extra_specs if s is not None]
        extras = iter(orchestrator.run_specs(pending)) if pending else iter(())
        for plan, extra_spec in zip(plans, extra_specs):
            sweep.add(
                plan.finish(next(extras) if extra_spec is not None else None)
            )
        return sweep
    for i, mix in enumerate(mixes):
        sweep.add(
            vm_two_phase(
                machine,
                list(mix),
                policy,
                instructions=instructions,
                overhead=overhead,
                seed=seed + i,
                batch_accesses=batch_accesses,
                **two_phase_kwargs,
            )
        )
    return sweep
