"""Dom0: the control domain running the allocation policy.

In the paper's architecture (Section 3.2) "the actual resource allocation
decisions are made in Dom0. An allocation policy running in this domain
utilizes a hyper-call interface to periodically query the hypervisor for
updated information regarding executing VMs". The hypercall interface has
the same shape as the native syscall interface, so
:class:`Dom0AllocationAgent` is the user-level monitor specialised to the
virtualized setting: it never reschedules Dom0's own vcpu, and it allocates
at VM granularity.

This module also carries the Figure 11 experiment drivers — the two-phase
methodology with VM encapsulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.alloc.monitor import UserLevelMonitor
from repro.perf.experiment import MixResult, SweepResult
from repro.perf.machine import MachineConfig
from repro.perf.runner import default_signature_config
from repro.sched.affinity import Mapping, balanced_mappings, canonical_mapping
from repro.sched.os_model import SchedulerConfig
from repro.sched.syscall import SyscallInterface
from repro.utils.rng import stable_seed
from repro.virt.hypervisor import DOM0_NAME, Hypervisor
from repro.virt.overhead import VirtualizationOverhead
from repro.virt.vm import VirtualMachine
from repro.workloads.spec import spec_profile

__all__ = ["Dom0AllocationAgent", "vm_two_phase", "vm_mix_sweep"]

#: Block-address spacing between guest VMs (matches the native runner).
_ADDRESS_STRIDE_BLOCKS = 1 << 23


class Dom0AllocationAgent(UserLevelMonitor):
    """The control-domain allocator: a monitor that ignores Dom0 itself."""

    def invoke(self, syscall: SyscallInterface) -> Optional[Mapping]:
        tasks = [t for t in syscall.query_tasks() if t.name != DOM0_NAME]
        if not tasks or any(not t.valid for t in tasks):
            self.skipped_invocations += 1
            return None
        mapping = self.policy.allocate(tasks, syscall.num_cores).canonical()
        self.decisions.append(mapping)
        if self.apply:
            syscall.apply_mapping(mapping)
        return mapping


def _build_vms(
    names: Sequence[str], instructions: int, seed: int
) -> List[VirtualMachine]:
    vms = []
    for i, name in enumerate(names):
        vms.append(
            VirtualMachine.from_profile(
                spec_profile(name),
                instructions=instructions,
                base_block=(i + 1) * _ADDRESS_STRIDE_BLOCKS,
                seed=stable_seed(seed, "vm", name, i),
            )
        )
    return vms


def vm_two_phase(
    machine: MachineConfig,
    names: Sequence[str],
    policy,
    instructions: int = 6_000_000,
    overhead: Optional[VirtualizationOverhead] = None,
    seed: int = 0,
    batch_accesses: int = 256,
    monitor_interval: float = 8_000_000.0,
    phase1_min_wall: float = 160_000_000.0,
    scheduler_config: Optional[SchedulerConfig] = None,
) -> MixResult:
    """The Section 4 methodology with VM encapsulation (Figure 11).

    Identical structure to :func:`repro.perf.experiment.two_phase`, with
    the benchmark processes wrapped in single-vcpu VMs on a hypervisor, the
    Dom0 agent making decisions over hypercalls, and the virtualization
    overhead model active in both phases.
    """
    vms = _build_vms(names, instructions, seed)
    hypervisor = Hypervisor(machine, vms, overhead=overhead, seed=seed)
    sig = default_signature_config(machine)
    agent = Dom0AllocationAgent(
        policy, interval_cycles=monitor_interval, apply=True
    )
    phase1_sched = SchedulerConfig(
        num_cores=machine.num_cores,
        timeslice_cycles=8_000_000.0,
        context_smoothing=0.6,
    )
    phase1 = hypervisor.run(
        signature_config=sig,
        monitor=agent,
        scheduler_config=phase1_sched,
        seed=seed,
        batch_accesses=batch_accesses,
        min_wall_cycles=phase1_min_wall,
    )

    vcpu_tids = [vm.vcpus[0].tid for vm in vms]
    default = canonical_mapping(
        [
            [tid for i, tid in enumerate(vcpu_tids) if i % machine.num_cores == c]
            for c in range(machine.num_cores)
        ]
    )
    chosen = (phase1.majority_mapping or default).canonical()

    def vm_times(result) -> Dict[str, float]:
        return {vm.name: vm.user_time(result) for vm in vms}

    mapping_times: Dict[Mapping, Dict[str, float]] = {}
    candidates = balanced_mappings(vcpu_tids, machine.num_cores)
    for mapping in candidates:
        result = hypervisor.run(
            mapping=mapping,
            scheduler_config=scheduler_config,
            seed=seed,
            batch_accesses=batch_accesses,
        )
        mapping_times[mapping] = vm_times(result)
    if chosen not in mapping_times:
        result = hypervisor.run(
            mapping=chosen,
            scheduler_config=scheduler_config,
            seed=seed,
            batch_accesses=batch_accesses,
        )
        mapping_times[chosen] = vm_times(result)
    return MixResult(
        names=tuple(names),
        mapping_times=mapping_times,
        chosen_mapping=chosen,
        default_mapping=default,
        decisions=tuple(phase1.decisions),
    )


def vm_mix_sweep(
    machine: MachineConfig,
    mixes: Sequence[Sequence[str]],
    policy,
    instructions: int = 6_000_000,
    overhead: Optional[VirtualizationOverhead] = None,
    seed: int = 0,
    batch_accesses: int = 256,
    **two_phase_kwargs,
) -> SweepResult:
    """Figure 11's sweep: per-benchmark max/avg improvement inside VMs."""
    sweep = SweepResult()
    for i, mix in enumerate(mixes):
        sweep.add(
            vm_two_phase(
                machine,
                list(mix),
                policy,
                instructions=instructions,
                overhead=overhead,
                seed=seed + i,
                batch_accesses=batch_accesses,
                **two_phase_kwargs,
            )
        )
    return sweep
