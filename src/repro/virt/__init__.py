"""Xen-like virtualization layer: VMs, hypervisor, Dom0 control domain."""

from repro.virt.dom0 import Dom0AllocationAgent, vm_mix_sweep, vm_two_phase
from repro.virt.hypervisor import DOM0_NAME, Hypervisor
from repro.virt.overhead import VirtualizationOverhead
from repro.virt.vm import VirtualMachine

__all__ = [
    "Dom0AllocationAgent",
    "vm_mix_sweep",
    "vm_two_phase",
    "DOM0_NAME",
    "Hypervisor",
    "VirtualizationOverhead",
    "VirtualMachine",
]
