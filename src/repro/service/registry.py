"""The live process table with streaming CBF-signature estimates.

The daemon has no simulated cache attached — processes are *described*
(by their workload profile) rather than executed. The registry keeps
the same per-entity record the paper's syscall interface exposes
(``last_core``, ``occupancy``, ``symbiosis[N]``) but derives it from a
streaming footprint estimator: every scheduling event folds one more
deterministic footprint sample into an exponentially-weighted moving
average, mirroring how the hardware signature unit refreshes a CBF
reading on every context switch.

Samples are a pure function of ``(pid, profile, sample index)`` via
:func:`~repro.utils.rng.stable_seed`, so a replayed event trace yields
bit-identical occupancies — the property the incremental-vs-full
equivalence tests pin.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, ServiceError, WorkloadError
from repro.sched.affinity import Mapping
from repro.sched.syscall import TaskView
from repro.service.tuning import DEFAULT_TUNING
from repro.utils.rng import stable_seed
from repro.workloads.base import WorkloadProfile
from repro.workloads.spec import SPEC_PROFILES

__all__ = ["DEFAULT_CAPACITY_LINES", "ProcessHandle", "ProcessRegistry"]

#: Default shared-cache capacity in 64-byte lines (the paper's 4 MB L2).
DEFAULT_CAPACITY_LINES = 4 * 1024 * 1024 // 64

#: Relative jitter band applied around a profile's hot-set footprint.
_JITTER = 0.2


def _sample_fraction(pid: int, profile: str, index: int) -> float:
    """A stable uniform draw in [0, 1) for one footprint sample.

    Derived from a digest rather than an RNG stream so the estimate for
    process *pid* does not depend on how many *other* processes sampled
    in between — the registry stays order-insensitive per process.
    """
    return (stable_seed("svc-footprint", pid, profile, index) % (1 << 24)) / (
        1 << 24
    )


class ProcessHandle:
    """One live process: identity, profile, core, footprint estimate."""

    __slots__ = ("pid", "profile", "core", "footprint", "samples_seen")

    def __init__(self, pid: int, profile: WorkloadProfile, core: int) -> None:
        self.pid = pid
        self.profile = profile
        self.core = core
        self.footprint = 0.0
        self.samples_seen = 0

    def __repr__(self) -> str:
        return (
            f"ProcessHandle(pid={self.pid}, profile={self.profile.name!r}, "
            f"core={self.core}, footprint={self.footprint:.1f})"
        )


class ProcessRegistry:
    """Tracks live processes and synthesises their signature contexts.

    Parameters
    ----------
    num_cores:
        Cores the mapper partitions over (defines the symbiosis vector
        length).
    capacity_lines:
        Shared-cache capacity in lines; footprints saturate here, and
        the fractional-inclusion overlap model normalises against it.
    ewma_alpha:
        Weight of the newest footprint sample in the moving average
        (1.0 = always trust the latest sample).
    """

    def __init__(
        self,
        num_cores: int,
        capacity_lines: int = DEFAULT_CAPACITY_LINES,
        ewma_alpha: float = DEFAULT_TUNING.ewma_alpha,
    ) -> None:
        if num_cores < 1:
            raise ConfigurationError(f"num_cores must be >= 1, got {num_cores}")
        if capacity_lines < 1:
            raise ConfigurationError(
                f"capacity_lines must be >= 1, got {capacity_lines}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}"
            )
        self.num_cores = num_cores
        self.capacity_lines = capacity_lines
        self.ewma_alpha = ewma_alpha
        self._handles: Dict[int, ProcessHandle] = {}

    # -- lifecycle -----------------------------------------------------

    def _resolve_profile(
        self, name: str, profile: Optional[WorkloadProfile]
    ) -> WorkloadProfile:
        if profile is not None:
            return profile
        try:
            return SPEC_PROFILES[name]
        except KeyError:
            raise WorkloadError(
                f"unknown workload profile {name!r}; see 'repro-cli profiles'"
            ) from None

    def _initial_core(self) -> int:
        """Least-loaded core by population (ties to the lowest index)."""
        counts = [0] * self.num_cores
        for handle in self._handles.values():
            counts[handle.core] += 1
        return min(range(self.num_cores), key=lambda c: (counts[c], c))

    def admit(
        self,
        pid: int,
        name: str,
        profile: Optional[WorkloadProfile] = None,
    ) -> ProcessHandle:
        """Register a new process and fold its first footprint sample.

        The process gets a provisional core (least populated) so its
        view is immediately usable by the mapper; the mapper's decision
        then moves it via :meth:`apply_mapping`.
        """
        if pid in self._handles:
            raise ServiceError(f"pid {pid} is already registered")
        resolved = self._resolve_profile(name, profile)
        handle = ProcessHandle(pid, resolved, self._initial_core())
        self._handles[pid] = handle
        self.observe(pid)
        return handle

    def retire(self, pid: int) -> ProcessHandle:
        """Remove a process; returns its final handle."""
        try:
            return self._handles.pop(pid)
        except KeyError:
            raise ServiceError(f"pid {pid} is not registered") from None

    def phase_change(
        self,
        pid: int,
        name: str,
        profile: Optional[WorkloadProfile] = None,
    ) -> ProcessHandle:
        """Switch a process to a new profile and restart its estimate.

        The old footprint average is discarded — a phase change means
        the old samples describe memory behaviour that no longer
        exists.
        """
        handle = self._get(pid)
        handle.profile = self._resolve_profile(name, profile)
        handle.footprint = 0.0
        self.observe(pid)
        return handle

    def _get(self, pid: int) -> ProcessHandle:
        try:
            return self._handles[pid]
        except KeyError:
            raise ServiceError(f"pid {pid} is not registered") from None

    # -- streaming estimation ------------------------------------------

    def observe(self, pid: int) -> float:
        """Fold one footprint sample into the process's EWMA estimate.

        The sample jitters around the profile's hot-set size (capped at
        cache capacity), emulating the run-to-run variation of a real
        CBF reading; the EWMA smooths it exactly like the monitor's
        periodic re-sampling does in the batch pipeline.
        """
        handle = self._get(pid)
        base = float(min(handle.profile.hot_set_blocks, self.capacity_lines))
        fraction = _sample_fraction(
            handle.pid, handle.profile.name, handle.samples_seen
        )
        sample = min(
            float(self.capacity_lines),
            base * (1.0 - _JITTER + 2.0 * _JITTER * fraction),
        )
        if handle.samples_seen == 0 or handle.footprint == 0.0:
            handle.footprint = sample
        else:
            alpha = self.ewma_alpha
            handle.footprint = (1.0 - alpha) * handle.footprint + alpha * sample
        handle.samples_seen += 1
        return handle.footprint

    # -- mapper-facing views -------------------------------------------

    def apply_mapping(self, mapping: Mapping) -> int:
        """Move every mapped process to its decided core; returns moves.

        Pids in the registry but absent from the mapping keep their
        current core (the mapper always maps the full population, so
        this only matters transiently during tests).
        """
        moved = 0
        for core, group in enumerate(mapping.groups):
            for pid in group:
                handle = self._handles.get(pid)
                if handle is not None and handle.core != core:
                    handle.core = core
                    moved += 1
        return moved

    def views(self) -> List[TaskView]:
        """Signature-context snapshots for every live process.

        Occupancy is the streaming footprint estimate; the symbiosis
        entry against core ``c`` uses the paper's XOR-population form
        ``|P| + |C_c| - 2·|P ∩ C_c|`` with a fractional-inclusion
        overlap model (co-resident footprints overlap in proportion to
        how much of the cache the other core's residents fill).
        """
        handles = sorted(self._handles.values(), key=lambda h: h.pid)
        capacity = float(self.capacity_lines)
        core_fill = [0.0] * self.num_cores
        for handle in handles:
            core_fill[handle.core] += handle.footprint
        views: List[TaskView] = []
        for handle in handles:
            occ = handle.footprint
            symbiosis = np.zeros(self.num_cores, dtype=np.float64)
            for core in range(self.num_cores):
                others = core_fill[core]
                if core == handle.core:
                    others -= occ
                others = min(max(others, 0.0), capacity)
                overlap = occ * others / capacity
                symbiosis[core] = occ + others - 2.0 * overlap
            views.append(
                TaskView(
                    tid=handle.pid,
                    name=handle.profile.name,
                    process_id=handle.pid,
                    last_core=handle.core,
                    occupancy=occ,
                    symbiosis=symbiosis,
                    valid=True,
                    samples_seen=handle.samples_seen,
                )
            )
        return views

    # -- snapshot support ----------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """JSON-native registry contents for durable snapshots.

        Footprints are exported as raw floats — JSON's shortest
        round-trip ``repr`` restores them bit-identical, which the
        recovery-equivalence fingerprint depends on.
        """
        return {
            "processes": {
                str(pid): {
                    "profile": h.profile.name,
                    "core": h.core,
                    "footprint": h.footprint,
                    "samples_seen": h.samples_seen,
                }
                for pid, h in sorted(self._handles.items())
            }
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Replace the process table from :meth:`export_state` output.

        Profiles are re-resolved by name, so only named (catalogue)
        profiles survive a snapshot round-trip — which is all the wire
        protocol can admit in the first place.
        """
        handles: Dict[int, ProcessHandle] = {}
        processes = state.get("processes", {})
        assert isinstance(processes, dict)
        for pid_text, entry in processes.items():
            pid = int(pid_text)
            profile = self._resolve_profile(entry["profile"], None)
            handle = ProcessHandle(pid, profile, int(entry["core"]))
            handle.footprint = float(entry["footprint"])
            handle.samples_seen = int(entry["samples_seen"])
            handles[pid] = handle
        self._handles = handles

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        """Number of live processes."""
        return len(self._handles)

    def __contains__(self, pid: int) -> bool:
        """Whether *pid* is currently registered."""
        return pid in self._handles

    def live_pids(self) -> List[int]:
        """Sorted pids of every live process."""
        return sorted(self._handles)

    def handle(self, pid: int) -> ProcessHandle:
        """The handle for *pid* (raises ``ServiceError`` if unknown)."""
        return self._get(pid)

    def status(self) -> Dict[str, object]:
        """JSON-native summary used by the ``status`` endpoint."""
        return {
            "num_cores": self.num_cores,
            "population": len(self._handles),
            "capacity_lines": self.capacity_lines,
            "processes": {
                str(pid): {
                    "profile": h.profile.name,
                    "core": h.core,
                    "footprint_lines": round(h.footprint, 1),
                    "samples_seen": h.samples_seen,
                }
                for pid, h in sorted(self._handles.items())
            },
        }
