"""The newline-JSON wire protocol spoken by server and client.

One request or response per line: a compact, sorted-key JSON object
followed by ``\\n``. Requests carry ``{"op", "id", ...fields}``;
responses ``{"id", "ok", ...}`` with ``"error"`` set when ``ok`` is
false. Newline framing keeps the protocol trivially debuggable
(``nc``-able) and maps 1:1 onto asyncio stream ``readline``; the
per-line byte cap bounds memory against a misbehaving peer.

See ``docs/service.md`` for the full endpoint table.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "encode_message",
    "decode_message",
    "request",
    "response_ok",
    "response_error",
    "read_message",
]

#: Wire protocol revision; servers reject requests from the future.
PROTOCOL_VERSION = 1

#: Upper bound on one framed line (a status payload fits comfortably).
MAX_LINE_BYTES = 256 * 1024

#: Every operation the server dispatches.
OPS: Tuple[str, ...] = (
    "submit", "retire", "phase_change", "status", "mapping", "ping",
    "shutdown",
)


def encode_message(payload: Dict[str, Any]) -> bytes:
    """Frame one JSON object as a compact, sorted-key wire line."""
    line = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(line) + 1 > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line cap"
        )
    return line + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line back into a JSON object."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte cap"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"protocol messages are JSON objects, got {type(payload).__name__}"
        )
    return payload


def request(op: str, request_id: int, **fields: Any) -> Dict[str, Any]:
    """Build one request payload (client side)."""
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; valid ops: {', '.join(OPS)}")
    payload: Dict[str, Any] = {"v": PROTOCOL_VERSION, "op": op, "id": request_id}
    payload.update(fields)
    return payload


def response_ok(request_id: Optional[int], **fields: Any) -> Dict[str, Any]:
    """Build one success response payload (server side)."""
    payload: Dict[str, Any] = {"id": request_id, "ok": True}
    payload.update(fields)
    return payload


def response_error(request_id: Optional[int], error: str) -> Dict[str, Any]:
    """Build one failure response payload (server side)."""
    return {"id": request_id, "ok": False, "error": error}


async def read_message(reader) -> Optional[Dict[str, Any]]:
    """Read one framed message from an asyncio stream reader.

    Returns ``None`` on clean EOF. An overlong line (the stream was
    created with ``limit=MAX_LINE_BYTES``) or malformed JSON raises
    :class:`~repro.errors.ProtocolError`.
    """
    try:
        line = await reader.readline()
    except ValueError as exc:  # stream limit overrun
        raise ProtocolError(
            f"peer sent a line over the {MAX_LINE_BYTES}-byte cap"
        ) from exc
    if not line:
        return None
    return decode_message(line.rstrip(b"\n"))
