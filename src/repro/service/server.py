"""Asyncio stream server exposing a :class:`SchedulerService` over TCP.

One connection handler per client, many concurrent clients: each reads
newline-JSON requests (:mod:`repro.service.protocol`), routes them into
the daemon, and writes one response line per request. Protocol faults
(malformed JSON, unknown ops, missing fields) answer with an error
response on the same connection — a confused client must never crash
the daemon or poison other connections.

Overload protection (both off by default, preserving pure-backpressure
semantics):

* ``request_timeout`` bounds how long one mutating request may wait on
  the daemon; expiry answers ``"deadline exceeded"``. The event may
  still be applied after the deadline — the client's ``(client, seq)``
  idempotency tag is what makes its retry safe.
* ``shed_queue_depth`` sheds mutating requests with an immediate
  ``"overloaded"`` error once the admission queue is that deep,
  instead of stalling every connection behind the backlog.

Mutating requests may carry a ``(client, seq)`` idempotency tag
(both fields or neither); the daemon answers recognised duplicates
from its dedup table without re-applying them.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError, ReproError
from repro.service.daemon import SchedulerService
from repro.service.events import (
    AdmitEvent,
    PhaseChangeEvent,
    RetireEvent,
    ServiceEvent,
)
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    encode_message,
    read_message,
    response_error,
    response_ok,
)
from repro.telemetry.context import current as telemetry_current

__all__ = ["ServiceServer"]


def _field(message: Dict[str, Any], name: str, kind: type) -> Any:
    """Extract one typed request field or raise a protocol error."""
    try:
        value = message[name]
    except KeyError:
        raise ProtocolError(f"request is missing field {name!r}") from None
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ProtocolError(
            f"field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _idempotency_tag(
    message: Dict[str, Any],
) -> Tuple[Optional[str], Optional[int]]:
    """The request's ``(client, seq)`` tag, or ``(None, None)``.

    The tag is all-or-nothing: a request naming only one half is
    malformed (a half-tagged retry could never be recognised).
    """
    has_client = "client" in message
    has_seq = "seq" in message
    if not has_client and not has_seq:
        return None, None
    if has_client != has_seq:
        raise ProtocolError(
            "idempotency tag needs both 'client' and 'seq' (got one)"
        )
    return _field(message, "client", str), _field(message, "seq", int)


class ServiceServer:
    """Serves one :class:`SchedulerService` on a TCP address.

    ``port=0`` (the default) binds an ephemeral port; read the actual
    address from :attr:`address` after :meth:`start`. The ``shutdown``
    op answers its sender, then gracefully drains and stops both the
    daemon and the server — :meth:`serve_until_closed` returns once
    that completes.

    ``request_timeout`` (seconds) and ``shed_queue_depth`` (events)
    arm the overload protections described in the module docstring;
    both default to off.
    """

    def __init__(
        self,
        service: SchedulerService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        request_timeout: Optional[float] = None,
        shed_queue_depth: Optional[int] = None,
    ) -> None:
        if request_timeout is not None and request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be > 0 or None, got {request_timeout}"
            )
        if shed_queue_depth is not None and shed_queue_depth < 1:
            raise ConfigurationError(
                f"shed_queue_depth must be >= 1 or None, got {shed_queue_depth}"
            )
        self.service = service
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.shed_queue_depth = shed_queue_depth
        self.requests_shed = 0
        self.requests_deadline_exceeded = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._closed = asyncio.Event()
        self._shutdown_task: Optional[asyncio.Task] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise ReproError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Bind the listening socket and begin accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )

    async def close_listener(self) -> None:
        """Stop accepting connections without touching the daemon.

        Used by replay drivers that still need to settle the daemon
        in-process after the wire traffic ends.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def stop(self) -> None:
        """Close the listener and gracefully drain the daemon."""
        await self.close_listener()
        if self.service.running:
            await self.service.stop(drain=True)
        self._closed.set()

    async def serve_until_closed(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`stop`) completes."""
        await self._closed.wait()

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection until EOF or a fatal frame error."""
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    # Framing is unrecoverable mid-stream: answer, drop.
                    writer.write(encode_message(response_error(None, str(exc))))
                    await writer.drain()
                    return
                if message is None:
                    return
                # _respond's only instance-state writes are the
                # monotonic shed/deadline counters — single-statement
                # increments with no await between read and write, so
                # interleaved handlers cannot observe a torn update.
                response = await self._respond(message)  # repro: noqa[RPR604]
                writer.write(encode_message(response))
                await writer.drain()
        except ConnectionResetError:
            return  # client vanished mid-write; nothing left to answer
        except asyncio.CancelledError:
            # Listener teardown cancels in-flight handlers. Finishing
            # normally keeps 3.11's stream callback from logging the
            # cancellation as an unhandled exception.
            return
        finally:
            writer.close()

    async def _submit_guarded(
        self, event: ServiceEvent, request_id: Optional[int]
    ) -> Dict[str, Any]:
        """Submit one mutating event under shedding + deadline rules.

        A deadline expiry leaves the event *queued* — the daemon may
        still apply it after answering the error. That is exactly why
        deadline errors tell the client to retry with the same
        idempotency tag rather than a fresh one.
        """
        if (
            self.shed_queue_depth is not None
            and self.service.queue_depth() >= self.shed_queue_depth
        ):
            self.requests_shed += 1
            tel = telemetry_current()
            if tel is not None and tel.metrics is not None:
                tel.metrics.counter("service_shed_total").inc()
            return response_error(request_id, "overloaded")
        if self.request_timeout is None:
            result = await self.service.submit_event(event)
            return response_ok(request_id, result=result)
        try:
            result = await asyncio.wait_for(
                self.service.submit_event(event), self.request_timeout
            )
        except asyncio.TimeoutError:
            self.requests_deadline_exceeded += 1
            tel = telemetry_current()
            if tel is not None and tel.metrics is not None:
                tel.metrics.counter("service_deadline_total").inc()
            return response_error(
                request_id,
                "deadline exceeded (the event may still be applied; "
                "retry with the same idempotency tag)",
            )
        return response_ok(request_id, result=result)

    async def _respond(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request and build its response payload."""
        request_id = message.get("id")
        try:
            version = message.get("v", PROTOCOL_VERSION)
            if version > PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version {version} is newer than this "
                    f"server's {PROTOCOL_VERSION}"
                )
            op = _field(message, "op", str)
            if op == "submit":
                client, seq = _idempotency_tag(message)
                return await self._submit_guarded(
                    AdmitEvent(
                        pid=_field(message, "pid", int),
                        name=_field(message, "name", str),
                        client=client,
                        seq=seq,
                    ),
                    request_id,
                )
            if op == "retire":
                client, seq = _idempotency_tag(message)
                return await self._submit_guarded(
                    RetireEvent(
                        pid=_field(message, "pid", int),
                        client=client,
                        seq=seq,
                    ),
                    request_id,
                )
            if op == "phase_change":
                client, seq = _idempotency_tag(message)
                return await self._submit_guarded(
                    PhaseChangeEvent(
                        pid=_field(message, "pid", int),
                        name=_field(message, "name", str),
                        client=client,
                        seq=seq,
                    ),
                    request_id,
                )
            if op == "status":
                return response_ok(request_id, status=self.service.status())
            if op == "mapping":
                return response_ok(
                    request_id, **self.service.mapping_payload()
                )
            if op == "ping":
                return response_ok(request_id, version=PROTOCOL_VERSION)
            if op == "shutdown":
                if self._shutdown_task is None:
                    self._shutdown_task = asyncio.create_task(self.stop())
                return response_ok(request_id, stopping=True)
            raise ProtocolError(f"unknown op {op!r}")
        except ReproError as exc:
            return response_error(request_id, str(exc))
