"""Asyncio stream server exposing a :class:`SchedulerService` over TCP.

One connection handler per client, many concurrent clients: each reads
newline-JSON requests (:mod:`repro.service.protocol`), routes them into
the daemon, and writes one response line per request. Protocol faults
(malformed JSON, unknown ops, missing fields) answer with an error
response on the same connection — a confused client must never crash
the daemon or poison other connections.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from repro.errors import ProtocolError, ReproError
from repro.service.daemon import SchedulerService
from repro.service.events import AdmitEvent, PhaseChangeEvent, RetireEvent
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    encode_message,
    read_message,
    response_error,
    response_ok,
)

__all__ = ["ServiceServer"]


def _field(message: Dict[str, Any], name: str, kind: type) -> Any:
    """Extract one typed request field or raise a protocol error."""
    try:
        value = message[name]
    except KeyError:
        raise ProtocolError(f"request is missing field {name!r}") from None
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ProtocolError(
            f"field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


class ServiceServer:
    """Serves one :class:`SchedulerService` on a TCP address.

    ``port=0`` (the default) binds an ephemeral port; read the actual
    address from :attr:`address` after :meth:`start`. The ``shutdown``
    op answers its sender, then gracefully drains and stops both the
    daemon and the server — :meth:`serve_until_closed` returns once
    that completes.
    """

    def __init__(
        self,
        service: SchedulerService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._closed = asyncio.Event()
        self._shutdown_task: Optional[asyncio.Task] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise ReproError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Bind the listening socket and begin accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )

    async def close_listener(self) -> None:
        """Stop accepting connections without touching the daemon.

        Used by replay drivers that still need to settle the daemon
        in-process after the wire traffic ends.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def stop(self) -> None:
        """Close the listener and gracefully drain the daemon."""
        await self.close_listener()
        if self.service.running:
            await self.service.stop(drain=True)
        self._closed.set()

    async def serve_until_closed(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`stop`) completes."""
        await self._closed.wait()

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection until EOF or a fatal frame error."""
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    # Framing is unrecoverable mid-stream: answer, drop.
                    writer.write(encode_message(response_error(None, str(exc))))
                    await writer.drain()
                    return
                if message is None:
                    return
                response = await self._respond(message)
                writer.write(encode_message(response))
                await writer.drain()
        except ConnectionResetError:
            return  # client vanished mid-write; nothing left to answer
        except asyncio.CancelledError:
            # Listener teardown cancels in-flight handlers. Finishing
            # normally keeps 3.11's stream callback from logging the
            # cancellation as an unhandled exception.
            return
        finally:
            writer.close()

    async def _respond(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request and build its response payload."""
        request_id = message.get("id")
        try:
            version = message.get("v", PROTOCOL_VERSION)
            if version > PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version {version} is newer than this "
                    f"server's {PROTOCOL_VERSION}"
                )
            op = _field(message, "op", str)
            if op == "submit":
                result = await self.service.submit_event(
                    AdmitEvent(
                        pid=_field(message, "pid", int),
                        name=_field(message, "name", str),
                    )
                )
                return response_ok(request_id, result=result)
            if op == "retire":
                result = await self.service.submit_event(
                    RetireEvent(pid=_field(message, "pid", int))
                )
                return response_ok(request_id, result=result)
            if op == "phase_change":
                result = await self.service.submit_event(
                    PhaseChangeEvent(
                        pid=_field(message, "pid", int),
                        name=_field(message, "name", str),
                    )
                )
                return response_ok(request_id, result=result)
            if op == "status":
                return response_ok(request_id, status=self.service.status())
            if op == "mapping":
                return response_ok(
                    request_id, **self.service.mapping_payload()
                )
            if op == "ping":
                return response_ok(request_id, version=PROTOCOL_VERSION)
            if op == "shutdown":
                if self._shutdown_task is None:
                    self._shutdown_task = asyncio.create_task(self.stop())
                return response_ok(request_id, stopping=True)
            raise ProtocolError(f"unknown op {op!r}")
        except ReproError as exc:
            return response_error(request_id, str(exc))
