"""Client for the scheduling daemon's newline-JSON protocol.

:class:`ServiceClient` is the asyncio-native client (one connection,
sequential request/response); :func:`call_once` is the synchronous
one-shot convenience the CLI's ``repro-cli submit`` uses — connect,
send one request, return the decoded response.

Liveness: every connect and every response read runs under a deadline
(default 30 s) and raises a loud
:class:`~repro.errors.ServiceTimeout` instead of blocking forever on a
dead or half-open peer. A timed-out *mutating* request is ambiguous —
the daemon may or may not have applied it — so the client tags every
mutating request with a durable ``(client_id, seq)`` pair and offers
:meth:`ServiceClient.resend_last`: after :meth:`ServiceClient.reconnect`
(seeded capped-jitter backoff via
:class:`~repro.supervise.retry.RetryPolicy`), the resend is answered
from the server's idempotency table if the original was applied, and
applied normally if it was lost. Either way: exactly once.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.errors import ServiceError, ServiceTimeout
from repro.service.protocol import (
    MAX_LINE_BYTES,
    encode_message,
    read_message,
    request,
)
from repro.supervise.retry import RetryPolicy

__all__ = ["DEFAULT_TIMEOUT", "ServiceClient", "call_once"]

#: Default connect/read deadline in seconds (``None`` disables).
DEFAULT_TIMEOUT = 30.0

#: Ops whose requests mutate daemon state (and therefore carry the
#: idempotency tag and are kept for :meth:`ServiceClient.resend_last`).
_MUTATING_OPS = ("submit", "retire", "phase_change")


class ServiceClient:
    """One connection to a running :class:`ServiceServer`.

    Build with :meth:`connect`; every operation sends one request line
    and awaits its response line. Responses are returned as decoded
    payloads — including error responses (``ok`` false), so callers
    decide whether a rejection is exceptional. A *transport* failure
    (connection dropped mid-call) raises
    :class:`~repro.errors.ServiceError`; an expired deadline raises
    :class:`~repro.errors.ServiceTimeout`.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        client_id: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self.timeout = timeout
        self.client_id = client_id
        self.retry = retry if retry is not None else RetryPolicy(
            base=0.05, cap=2.0
        )
        self._next_id = 0
        self._seq = 0
        self._last_mutating: Optional[Dict[str, Any]] = None

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        client_id: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> "ServiceClient":
        """Open a connection to the daemon at ``host:port``.

        ``client_id`` arms idempotency tagging: every mutating request
        carries ``(client_id, seq)`` with a per-connection-object
        monotonic ``seq``, letting the server recognise resends.
        """
        reader, writer = await cls._open(host, port, timeout)
        return cls(
            reader,
            writer,
            host=host,
            port=port,
            timeout=timeout,
            client_id=client_id,
            retry=retry,
        )

    @staticmethod
    async def _open(host: str, port: int, timeout: Optional[float]):
        """Open one stream pair under the connect deadline."""
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=MAX_LINE_BYTES),
                timeout,
            )
        except asyncio.TimeoutError:
            raise ServiceTimeout(
                f"connect to {host}:{port} timed out after {timeout}s"
            ) from None

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionResetError:
            pass  # server already gone; the socket is closed either way

    async def reconnect(self, attempts: int = 5) -> None:
        """Re-open the connection, backing off between failed tries.

        Delays come from the client's seeded
        :class:`~repro.supervise.retry.RetryPolicy` session — capped,
        jittered, and deterministic per seed, so a herd of reconnecting
        clients spreads out instead of stampeding the restarted daemon.
        The request-id and ``seq`` counters survive, so
        :meth:`resend_last` after a reconnect is recognised as a
        duplicate if the old connection's request was applied.
        """
        if self._host is None or self._port is None:
            raise ServiceError(
                "cannot reconnect: client was built from raw streams"
            )
        try:
            await self.close()
        except OSError:
            pass  # the old transport is beyond caring
        session = self.retry.session()
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(session.next_delay())
            try:
                self._reader, self._writer = await self._open(
                    self._host, self._port, self.timeout
                )
                return
            except (ServiceTimeout, OSError) as exc:
                last_error = exc
        raise ServiceTimeout(
            f"reconnect to {self._host}:{self._port} failed after "
            f"{attempts} attempts: {last_error}"
        )

    # -- request plumbing ----------------------------------------------

    async def _send(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Write one request payload and await its response line."""
        op = payload.get("op", "?")
        self._writer.write(encode_message(payload))
        await self._writer.drain()
        try:
            response = await asyncio.wait_for(
                read_message(self._reader), self.timeout
            )
        except asyncio.TimeoutError:
            raise ServiceTimeout(
                f"no response to {op!r} within {self.timeout}s — peer dead "
                "or wedged; reconnect() then resend_last() to retry safely"
            ) from None
        if response is None:
            raise ServiceError(
                f"connection closed before a response to {op!r} arrived"
            )
        return response

    async def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and await its response payload.

        Mutating ops are stamped with the idempotency tag (when
        ``client_id`` is set) and remembered for :meth:`resend_last`.
        """
        self._next_id += 1
        if op in _MUTATING_OPS and self.client_id is not None:
            self._seq += 1
            fields.setdefault("client", self.client_id)
            fields.setdefault("seq", self._seq)
        payload = request(op, self._next_id, **fields)
        if op in _MUTATING_OPS:
            self._last_mutating = payload
        return await self._send(payload)

    async def resend_last(self) -> Dict[str, Any]:
        """Resend the last mutating request verbatim (same tag).

        The safe follow-up to a :class:`~repro.errors.ServiceTimeout`:
        if the original was applied, the server's dedup table answers
        with the original result (flagged ``duplicate``); if it was
        lost, the resend applies it for the first time.
        """
        if self._last_mutating is None:
            raise ServiceError("no mutating request has been sent yet")
        return await self._send(self._last_mutating)

    # -- endpoint conveniences -----------------------------------------

    async def submit(self, pid: int, name: str) -> Dict[str, Any]:
        """Admit process *pid* running profile *name*."""
        return await self.call("submit", pid=pid, name=name)

    async def retire(self, pid: int) -> Dict[str, Any]:
        """Retire process *pid*."""
        return await self.call("retire", pid=pid)

    async def phase_change(self, pid: int, name: str) -> Dict[str, Any]:
        """Report a phase change of *pid* to profile *name*."""
        return await self.call("phase_change", pid=pid, name=name)

    async def status(self) -> Dict[str, Any]:
        """Fetch the daemon status payload."""
        return await self.call("status")

    async def mapping(self) -> Dict[str, Any]:
        """Fetch the current core mapping."""
        return await self.call("mapping")

    async def ping(self) -> Dict[str, Any]:
        """Liveness probe (also reports the protocol version)."""
        return await self.call("ping")

    async def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and stop."""
        return await self.call("shutdown")


def call_once(
    host: str,
    port: int,
    op: str,
    *,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    client_id: Optional[str] = None,
    **fields: Any,
) -> Dict[str, Any]:
    """Synchronous one-shot request (the CLI's transport).

    Opens a connection, performs one call, closes, and returns the
    decoded response payload. ``timeout`` bounds both the connect and
    the response wait (:class:`~repro.errors.ServiceTimeout` on
    expiry); ``client_id`` tags mutating ops for idempotent retries.
    """

    async def _run() -> Dict[str, Any]:
        client = await ServiceClient.connect(
            host, port, timeout=timeout, client_id=client_id
        )
        try:
            return await client.call(op, **fields)
        finally:
            await client.close()

    return asyncio.run(_run())
