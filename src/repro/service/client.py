"""Client for the scheduling daemon's newline-JSON protocol.

:class:`ServiceClient` is the asyncio-native client (one connection,
sequential request/response); :func:`call_once` is the synchronous
one-shot convenience the CLI's ``repro-cli submit`` uses — connect,
send one request, return the decoded response.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict

from repro.errors import ServiceError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    encode_message,
    read_message,
    request,
)

__all__ = ["ServiceClient", "call_once"]


class ServiceClient:
    """One connection to a running :class:`ServiceServer`.

    Build with :meth:`connect`; every operation sends one request line
    and awaits its response line. Responses are returned as decoded
    payloads — including error responses (``ok`` false), so callers
    decide whether a rejection is exceptional. A *transport* failure
    (connection dropped mid-call) raises
    :class:`~repro.errors.ServiceError`.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        """Open a connection to the daemon at ``host:port``."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionResetError:
            pass  # server already gone; the socket is closed either way

    async def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and await its response payload."""
        self._next_id += 1
        payload = request(op, self._next_id, **fields)
        self._writer.write(encode_message(payload))
        await self._writer.drain()
        response = await read_message(self._reader)
        if response is None:
            raise ServiceError(
                f"connection closed before a response to {op!r} arrived"
            )
        return response

    # -- endpoint conveniences -----------------------------------------

    async def submit(self, pid: int, name: str) -> Dict[str, Any]:
        """Admit process *pid* running profile *name*."""
        return await self.call("submit", pid=pid, name=name)

    async def retire(self, pid: int) -> Dict[str, Any]:
        """Retire process *pid*."""
        return await self.call("retire", pid=pid)

    async def phase_change(self, pid: int, name: str) -> Dict[str, Any]:
        """Report a phase change of *pid* to profile *name*."""
        return await self.call("phase_change", pid=pid, name=name)

    async def status(self) -> Dict[str, Any]:
        """Fetch the daemon status payload."""
        return await self.call("status")

    async def mapping(self) -> Dict[str, Any]:
        """Fetch the current core mapping."""
        return await self.call("mapping")

    async def ping(self) -> Dict[str, Any]:
        """Liveness probe (also reports the protocol version)."""
        return await self.call("ping")

    async def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and stop."""
        return await self.call("shutdown")


def call_once(host: str, port: int, op: str, **fields: Any) -> Dict[str, Any]:
    """Synchronous one-shot request (the CLI's transport).

    Opens a connection, performs one call, closes, and returns the
    decoded response payload.
    """

    async def _run() -> Dict[str, Any]:
        client = await ServiceClient.connect(host, port)
        try:
            return await client.call(op, **fields)
        finally:
            await client.close()

    return asyncio.run(_run())
