"""Online symbiotic scheduling service (ROADMAP item 2).

The batch pipeline runs one closed sample→signature→map loop over a
fixed process set. This package is the production framing of the same
mechanism: a long-running asyncio daemon that admits and retires
processes dynamically, keeps their CBF-signature estimates streaming,
and recomputes core mappings *incrementally* so per-event work stays
bounded under heavy traffic.

Layers (each its own module, composable without the daemon):

* :mod:`repro.service.events` — the admit/retire/phase-change event
  types shared by queue, protocol and replay.
* :mod:`repro.service.registry` — the live :class:`ProcessHandle`
  table with streaming footprint/symbiosis estimation.
* :mod:`repro.service.mapper` — :class:`IncrementalMapper`, wrapping
  any batch :class:`~repro.alloc.base.AllocationPolicy` with
  single-event partition repair plus drift-bounded full remaps.
* :mod:`repro.service.daemon` — :class:`SchedulerService`, the
  bounded-queue event loop wiring supervision and telemetry.
* :mod:`repro.service.protocol` / ``server`` / ``client`` — the
  newline-JSON wire protocol over asyncio streams.
* :mod:`repro.service.replay` — the load-test driver replaying a
  seeded :class:`~repro.workloads.arrivals.ArrivalTrace`.

See ``docs/service.md`` for the protocol, event lifecycle and
backpressure semantics.
"""

from repro.service.daemon import SchedulerService, ServiceConfig
from repro.service.events import (
    AdmitEvent,
    PhaseChangeEvent,
    RetireEvent,
    SettleEvent,
    event_from_arrival,
    event_from_payload,
    event_to_payload,
)
from repro.service.mapper import IncrementalMapper, MapDecision, StablePolicy
from repro.service.registry import ProcessHandle, ProcessRegistry
from repro.service.tuning import DEFAULT_TUNING, ServiceTuning
from repro.service.replay import (
    RecoveryReport,
    ReplayReport,
    measure_recovery,
    run_replay,
    write_bench_json,
)
from repro.service.client import ServiceClient, call_once
from repro.service.server import ServiceServer

__all__ = [
    "SchedulerService",
    "ServiceConfig",
    "ServiceTuning",
    "DEFAULT_TUNING",
    "AdmitEvent",
    "RetireEvent",
    "PhaseChangeEvent",
    "SettleEvent",
    "event_from_arrival",
    "event_from_payload",
    "event_to_payload",
    "IncrementalMapper",
    "MapDecision",
    "StablePolicy",
    "ProcessHandle",
    "ProcessRegistry",
    "RecoveryReport",
    "ReplayReport",
    "measure_recovery",
    "run_replay",
    "write_bench_json",
    "ServiceClient",
    "call_once",
    "ServiceServer",
]
