"""Replayed-arrival load driver for the scheduling daemon.

Feeds a seeded :class:`~repro.workloads.arrivals.ArrivalTrace` into a
:class:`~repro.service.daemon.SchedulerService` as fast as the daemon
accepts it (the trace's simulated inter-arrival times order events but
are not slept out — this is a load test, not a simulation), measures
per-event decision latency, and finishes with a settle so the final
mapping can be compared byte-for-byte against the full-remap oracle.

Two transports:

* ``direct`` — events enter the admission queue in-process; measures
  the daemon itself.
* ``socket`` — events travel through the newline-JSON TCP protocol;
  measures the full client/server round trip.

:func:`write_bench_json` persists the report as the
``BENCH_service_replay.json`` artifact the CI smoke job uploads.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.alloc.base import AllocationPolicy
from repro.alloc.weight_sort import WeightSortPolicy
from repro.durable.manager import DurabilityManager
from repro.durable.state import capture_state, state_fingerprint
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.daemon import SchedulerService, ServiceConfig
from repro.service.events import SettleEvent, event_from_arrival
from repro.service.server import ServiceServer
from repro.workloads.arrivals import ArrivalTrace

__all__ = [
    "RecoveryReport",
    "ReplayReport",
    "measure_recovery",
    "percentile",
    "run_replay",
    "write_bench_json",
]

#: Transports a replay can drive the daemon through.
TRANSPORTS: Tuple[str, ...] = ("direct", "socket")


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for empty input."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ServiceError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class ReplayReport:
    """Everything a replay measured, JSON-native via :meth:`to_payload`.

    Latencies are seconds per event (submission to resolved decision);
    ``oracle_match`` asserts the trace-end contract: the settled
    mapping equals the full-remap oracle on the same final snapshot.
    """

    trace_kind: str
    trace_seed: int
    trace_events: int
    policy: str
    transport: str
    num_cores: int
    drift_threshold: int
    processed: int
    ok: int
    rejected: int
    dropped: int
    wall_seconds: float
    events_per_second: float
    latency_p50_seconds: float
    latency_p99_seconds: float
    full_remaps: int
    incremental_updates: int
    final_population: int
    final_mapping: str
    oracle_mapping: str
    oracle_match: bool
    #: Durability-layer summary when the replay ran with a state dir
    #: attached; ``None`` (and absent from the payload) otherwise, so
    #: durability-off artifacts keep their pre-durability shape.
    durability: Optional[Dict[str, Any]] = None

    def to_payload(self) -> Dict[str, Any]:
        """Plain-dict form for the bench JSON artifact."""
        return {
            "trace": {
                "kind": self.trace_kind,
                "seed": self.trace_seed,
                "events": self.trace_events,
            },
            "policy": self.policy,
            "transport": self.transport,
            "num_cores": self.num_cores,
            "drift_threshold": self.drift_threshold,
            "events": {
                "processed": self.processed,
                "ok": self.ok,
                "rejected": self.rejected,
                "dropped": self.dropped,
            },
            "wall_seconds": round(self.wall_seconds, 6),
            "events_per_second": round(self.events_per_second, 1),
            "decision_latency_seconds": {
                "p50": round(self.latency_p50_seconds, 9),
                "p99": round(self.latency_p99_seconds, 9),
            },
            "remaps": {
                "full": self.full_remaps,
                "incremental": self.incremental_updates,
            },
            "final": {
                "population": self.final_population,
                "mapping": self.final_mapping,
                "oracle": self.oracle_mapping,
                "oracle_match": self.oracle_match,
            },
            **(
                {}
                if self.durability is None
                else {"durability": self.durability}
            ),
        }


async def _drive_direct(
    service: SchedulerService, trace: ArrivalTrace
) -> List[float]:
    """Submit every trace event in-process; returns per-event latencies."""
    latencies: List[float] = []
    for arrival in trace:
        started = time.perf_counter()
        await service.submit_event(event_from_arrival(arrival))
        latencies.append(time.perf_counter() - started)
    return latencies


async def _drive_socket(
    service: SchedulerService, trace: ArrivalTrace, host: str
) -> List[float]:
    """Submit every trace event over the TCP protocol round trip."""
    server = ServiceServer(service, host=host, port=0)
    await server.start()
    bound_host, bound_port = server.address
    client = await ServiceClient.connect(bound_host, bound_port)
    latencies: List[float] = []
    try:
        for arrival in trace:
            started = time.perf_counter()
            if arrival.kind == "admit":
                response = await client.submit(arrival.pid, arrival.name)
            elif arrival.kind == "retire":
                response = await client.retire(arrival.pid)
            else:
                response = await client.phase_change(
                    arrival.pid, arrival.name
                )
            latencies.append(time.perf_counter() - started)
            if not response.get("ok"):
                raise ServiceError(
                    f"transport error replaying event {arrival.seq}: "
                    f"{response.get('error')}"
                )
    finally:
        await client.close()
        await server.close_listener()  # keep the daemon: replay settles it
    return latencies


def run_replay(
    trace: ArrivalTrace,
    policy: Optional[AllocationPolicy] = None,
    *,
    config: Optional[ServiceConfig] = None,
    transport: str = "direct",
    host: str = "127.0.0.1",
    state_dir: Optional[Union[str, Path]] = None,
    snapshot_interval: int = 256,
    fsync_every: int = 1,
) -> ReplayReport:
    """Replay *trace* against a fresh daemon and report what happened.

    The default policy is :class:`~repro.alloc.weight_sort.WeightSortPolicy`
    — the paper's cheapest allocator, whose decisions depend only on
    occupancy weights, keeping full-remap cost flat under load. Any
    other policy can be passed in; the interference policies are
    stabilised by the mapper either way.

    ``state_dir`` attaches the durability layer: every event is
    WAL-logged (fsync cadence ``fsync_every``) and state snapshots
    every ``snapshot_interval`` events. The dirty directory is left
    behind on purpose — it is what :func:`measure_recovery` and the
    recovery bench feed on.
    """
    if transport not in TRANSPORTS:
        raise ServiceError(
            f"unknown transport {transport!r}; valid: {', '.join(TRANSPORTS)}"
        )
    chosen = policy if policy is not None else WeightSortPolicy()
    cfg = config if config is not None else ServiceConfig(num_cores=4)
    durability = (
        None
        if state_dir is None
        else DurabilityManager(
            state_dir,
            snapshot_interval=snapshot_interval,
            fsync_every=fsync_every,
        )
    )

    async def _run() -> Tuple[SchedulerService, List[float], dict, float]:
        service = SchedulerService(chosen, cfg, durability=durability)
        await service.start()
        started = time.perf_counter()
        try:
            if transport == "direct":
                latencies = await _drive_direct(service, trace)
            else:
                latencies = await _drive_socket(service, trace, host)
            settle = await service.submit_event(SettleEvent())
            wall = time.perf_counter() - started
        finally:
            if service.running:
                await service.stop(drain=True)
        return service, latencies, settle, wall

    service, latencies, settle, wall = asyncio.run(_run())
    processed = service.events_processed
    return ReplayReport(
        trace_kind=trace.kind,
        trace_seed=trace.seed,
        trace_events=len(trace),
        policy=chosen.name,
        transport=transport,
        num_cores=cfg.num_cores,
        drift_threshold=cfg.drift_threshold,
        processed=processed,
        ok=service.events_ok,
        rejected=service.events_rejected,
        dropped=service.events_dropped,
        wall_seconds=wall,
        events_per_second=processed / wall if wall > 0 else 0.0,
        latency_p50_seconds=percentile(latencies, 50.0),
        latency_p99_seconds=percentile(latencies, 99.0),
        full_remaps=service.mapper.full_remaps,
        incremental_updates=service.mapper.incremental_updates,
        final_population=len(service.registry),
        final_mapping=settle["mapping"],
        oracle_mapping=settle["oracle"],
        oracle_match=settle["mapping"] == settle["oracle"],
        durability=(
            None
            if durability is None
            # The state dir is a tmp path — dropping it keeps the bench
            # artifact stable run-to-run.
            else {
                k: v
                for k, v in durability.status().items()
                if k != "state_dir"
            }
        ),
    )


@dataclass(frozen=True)
class RecoveryReport:
    """What one crash-recovery measured (the ``BENCH_service_recovery``
    payload): how much history was replayed, from where, and how long
    snapshot load + WAL tail replay took."""

    policy: str
    num_cores: int
    events_processed: int
    recovered_events: int
    from_snapshot: bool
    recovery_seconds: float
    final_mapping: str
    fingerprint: str

    def to_payload(self) -> Dict[str, Any]:
        """Plain-dict form for the bench JSON artifact."""
        return {
            "policy": self.policy,
            "num_cores": self.num_cores,
            "events_processed": self.events_processed,
            "recovered_events": self.recovered_events,
            "from_snapshot": self.from_snapshot,
            "recovery_seconds": round(self.recovery_seconds, 6),
            "final_mapping": self.final_mapping,
            "fingerprint": self.fingerprint,
        }


def measure_recovery(
    state_dir: Union[str, Path],
    policy: Optional[AllocationPolicy] = None,
    *,
    config: Optional[ServiceConfig] = None,
) -> RecoveryReport:
    """Recover a daemon from *state_dir* and time the whole path.

    Policy and config must match the run that produced the directory
    (the snapshot's embedded config is checked on restore). The wall
    clock covers everything a restarted daemon pays before it can
    serve: snapshot read + checksum, state restore, and WAL tail
    replay through the event handler.
    """
    chosen = policy if policy is not None else WeightSortPolicy()
    cfg = config if config is not None else ServiceConfig(num_cores=4)
    started = time.perf_counter()
    service = SchedulerService.recover(chosen, cfg, state_dir=state_dir)
    elapsed = time.perf_counter() - started
    return RecoveryReport(
        policy=chosen.name,
        num_cores=cfg.num_cores,
        events_processed=service.events_processed,
        recovered_events=service.recovered_events,
        from_snapshot=service.recovered_from_snapshot,
        recovery_seconds=elapsed,
        final_mapping=str(service.mapper.mapping),
        fingerprint=state_fingerprint(capture_state(service)),
    )


def write_bench_json(
    report: Union[ReplayReport, RecoveryReport], path: Union[str, Path]
) -> Path:
    """Write the report's JSON payload to *path* (parents created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(report.to_payload(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target
