"""One source of truth for the service's adaptation-speed tunables.

Before this module existed, the registry's EWMA weight and the mapper's
drift threshold were separate hard-coded constants (``0.3`` in
``registry.py``, ``16`` in ``mapper.py`` and again in ``daemon.py``) —
a grep-unfriendly duplication that made it impossible to reason about
the service's *reaction window* as one quantity. :class:`ServiceTuning`
hoists them into a single frozen dataclass that the registry, the
mapper, the daemon config and the ``repro-cli serve`` flags all read.

The same dataclass carries the **flap guard** knobs added for the
adversarial-workload hardening (see ``docs/robustness.md``): a process
whose phase changes arrive faster than the EWMA can re-converge would
otherwise force a full remap per event (a remap storm). The guard is
pure hysteresis bookkeeping in
:class:`~repro.service.mapper.IncrementalMapper` and is **disarmed by
default** (``flap_threshold=None``), which keeps every existing replay
and snapshot byte-identical to the pre-guard daemon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["ServiceTuning", "DEFAULT_TUNING"]


@dataclass(frozen=True)
class ServiceTuning:
    """Adaptation-speed tunables shared by registry, mapper and daemon.

    Parameters
    ----------
    ewma_alpha:
        Weight of the newest footprint sample in the registry's moving
        average (1.0 = always trust the latest sample). This is the
        service's *estimation* window: a signal faster than
        ``1/ewma_alpha`` samples is smoothed away.
    drift_threshold:
        Incremental repairs the mapper tolerates before the next event
        forces a full remap (1 = remap on every event). This is the
        service's *decision* window, and — with the flap guard armed —
        also the full-remap rate limit an adversary cannot beat.
    flap_window:
        Width, in mapper events, of the sliding window over which a
        process's phase changes are counted for flap detection.
    flap_threshold:
        Phase changes within ``flap_window`` at which a process is
        declared *flapping* (its phase changes are then damped into
        incremental re-placements instead of full remaps, until it
        quiets down below half the threshold — hysteresis). ``None``
        (the default) disarms the guard entirely: no history is kept
        and behaviour is byte-identical to the unguarded mapper.
    """

    ewma_alpha: float = 0.3
    drift_threshold: int = 16
    flap_window: int = 32
    flap_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.drift_threshold < 1:
            raise ConfigurationError(
                f"drift_threshold must be >= 1, got {self.drift_threshold}"
            )
        if self.flap_window < 1:
            raise ConfigurationError(
                f"flap_window must be >= 1, got {self.flap_window}"
            )
        if self.flap_threshold is not None and self.flap_threshold < 2:
            raise ConfigurationError(
                "flap_threshold must be >= 2 (or None to disarm the "
                f"guard), got {self.flap_threshold}"
            )

    @property
    def flap_armed(self) -> bool:
        """Whether the mapper's flap guard keeps per-pid history."""
        return self.flap_threshold is not None


#: The tuning every component defaults to — the single definition the
#: old per-module constants collapsed into.
DEFAULT_TUNING = ServiceTuning()
