"""Scheduling events flowing through the service admission queue.

One frozen dataclass per event kind keeps dispatch explicit (the daemon
switches on ``kind``) while the shared shape — a ``kind`` tag plus the
fields the registry needs — serialises 1:1 onto the wire protocol
(:mod:`repro.service.protocol`) and onto
:class:`~repro.workloads.arrivals.ArrivalEvent` for replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.errors import ServiceError
from repro.workloads.arrivals import ArrivalEvent

__all__ = [
    "SERVICE_EVENT_KINDS",
    "AdmitEvent",
    "RetireEvent",
    "PhaseChangeEvent",
    "SettleEvent",
    "ServiceEvent",
    "event_from_arrival",
]

#: Every event kind the daemon dispatches on.
SERVICE_EVENT_KINDS: Tuple[str, ...] = (
    "admit", "retire", "phase_change", "settle",
)


@dataclass(frozen=True)
class AdmitEvent:
    """A new process ``pid`` running workload profile ``name`` arrives."""

    pid: int
    name: str
    kind: str = "admit"


@dataclass(frozen=True)
class RetireEvent:
    """Process ``pid`` exits and leaves the registry."""

    pid: int
    kind: str = "retire"


@dataclass(frozen=True)
class PhaseChangeEvent:
    """Process ``pid`` enters a new execution phase, profile ``name``.

    Phase changes invalidate the incremental mapping premise (the
    process's footprint may be arbitrarily different), so the mapper
    answers them with a full remap.
    """

    pid: int
    name: str
    kind: str = "phase_change"


@dataclass(frozen=True)
class SettleEvent:
    """Force a full remap now, clearing any accumulated drift.

    Replay drivers enqueue one settle at trace end so the final
    mapping is directly comparable to the full-remap oracle.
    """

    kind: str = "settle"


ServiceEvent = Union[AdmitEvent, RetireEvent, PhaseChangeEvent, SettleEvent]


def event_from_arrival(event: ArrivalEvent) -> ServiceEvent:
    """Convert one trace event into the service's queue event type."""
    if event.kind == "admit":
        return AdmitEvent(pid=event.pid, name=event.name)
    if event.kind == "retire":
        return RetireEvent(pid=event.pid)
    if event.kind == "phase_change":
        return PhaseChangeEvent(pid=event.pid, name=event.name)
    raise ServiceError(f"unknown arrival event kind {event.kind!r}")
