"""Scheduling events flowing through the service admission queue.

One frozen dataclass per event kind keeps dispatch explicit (the daemon
switches on ``kind``) while the shared shape — a ``kind`` tag plus the
fields the registry needs — serialises 1:1 onto the wire protocol
(:mod:`repro.service.protocol`), onto
:class:`~repro.workloads.arrivals.ArrivalEvent` for replays, and onto
the write-ahead log (:func:`event_to_payload` /
:func:`event_from_payload`).

Every mutating event optionally carries an idempotency tag: the
``(client, seq)`` pair a reconnecting client resends so the daemon can
recognise (and answer, but never re-apply) a duplicate. The tag is part
of the WAL payload — recovery replays it so the dedup table rebuilds
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import ServiceError
from repro.workloads.arrivals import ArrivalEvent

__all__ = [
    "SERVICE_EVENT_KINDS",
    "AdmitEvent",
    "RetireEvent",
    "PhaseChangeEvent",
    "SettleEvent",
    "ServiceEvent",
    "event_from_arrival",
    "event_from_payload",
    "event_to_payload",
]

#: Every event kind the daemon dispatches on.
SERVICE_EVENT_KINDS: Tuple[str, ...] = (
    "admit", "retire", "phase_change", "settle",
)


@dataclass(frozen=True)
class AdmitEvent:
    """A new process ``pid`` running workload profile ``name`` arrives."""

    pid: int
    name: str
    kind: str = "admit"
    client: Optional[str] = None
    seq: Optional[int] = None


@dataclass(frozen=True)
class RetireEvent:
    """Process ``pid`` exits and leaves the registry."""

    pid: int
    kind: str = "retire"
    client: Optional[str] = None
    seq: Optional[int] = None


@dataclass(frozen=True)
class PhaseChangeEvent:
    """Process ``pid`` enters a new execution phase, profile ``name``.

    Phase changes invalidate the incremental mapping premise (the
    process's footprint may be arbitrarily different), so the mapper
    answers them with a full remap.
    """

    pid: int
    name: str
    kind: str = "phase_change"
    client: Optional[str] = None
    seq: Optional[int] = None


@dataclass(frozen=True)
class SettleEvent:
    """Force a full remap now, clearing any accumulated drift.

    Replay drivers enqueue one settle at trace end so the final
    mapping is directly comparable to the full-remap oracle.
    """

    kind: str = "settle"
    client: Optional[str] = None
    seq: Optional[int] = None


ServiceEvent = Union[AdmitEvent, RetireEvent, PhaseChangeEvent, SettleEvent]


def event_from_arrival(event: ArrivalEvent) -> ServiceEvent:
    """Convert one trace event into the service's queue event type."""
    if event.kind == "admit":
        return AdmitEvent(pid=event.pid, name=event.name)
    if event.kind == "retire":
        return RetireEvent(pid=event.pid)
    if event.kind == "phase_change":
        return PhaseChangeEvent(pid=event.pid, name=event.name)
    raise ServiceError(f"unknown arrival event kind {event.kind!r}")


def event_to_payload(event: ServiceEvent) -> Dict[str, Any]:
    """JSON-native WAL payload for one event (omits unset fields)."""
    payload: Dict[str, Any] = {"kind": event.kind}
    for field in ("pid", "name", "client", "seq"):
        value = getattr(event, field, None)
        if value is not None:
            payload[field] = value
    return payload


def event_from_payload(payload: Dict[str, Any]) -> ServiceEvent:
    """Rebuild the queue event a WAL payload was recorded from."""
    kind = payload.get("kind")
    client = payload.get("client")
    seq = payload.get("seq")
    try:
        if kind == "admit":
            return AdmitEvent(
                pid=payload["pid"], name=payload["name"],
                client=client, seq=seq,
            )
        if kind == "retire":
            return RetireEvent(pid=payload["pid"], client=client, seq=seq)
        if kind == "phase_change":
            return PhaseChangeEvent(
                pid=payload["pid"], name=payload["name"],
                client=client, seq=seq,
            )
        if kind == "settle":
            return SettleEvent(client=client, seq=seq)
    except KeyError as exc:
        raise ServiceError(
            f"WAL payload for {kind!r} event is missing field {exc}"
        ) from None
    raise ServiceError(f"unknown WAL event kind {kind!r}")
