"""Incremental core-mapping over the batch allocation policies.

A full remap calls an :class:`~repro.alloc.base.AllocationPolicy` over
the whole population — optimal, but at 14 processes the exhaustive
min-cut already costs milliseconds, far too much to pay on *every*
admission under load. :class:`IncrementalMapper` keeps per-event work
bounded (cf. the representative-sampling argument in PAPERS.md): single
arrivals and departures repair only the affected partition, and the
policy is re-run in full only on phase changes or once accumulated
*drift* (count of incremental repairs since the last full remap)
crosses a threshold.

Determinism contract
--------------------
The interference policies deliberately vary their tie-break seed per
invocation (the phase-1 majority vote needs tied optima explored). An
online mapper must not: two services replaying the same event trace
would diverge purely on invocation counts, and a random tie-break per
event causes gratuitous migration churn. :class:`StablePolicy`
therefore pins the wrapped policy's invocation counter for the duration
of each ``allocate`` call, making it a pure function of the task
snapshot — which is exactly what lets the pinned equivalence test
compare the incremental mapper against a full-remap oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.alloc.base import AllocationPolicy
from repro.core.metrics import interference_from_symbiosis
from repro.errors import ConfigurationError, ServiceError
from repro.sched.affinity import Mapping, canonical_mapping
from repro.sched.syscall import TaskView
from repro.service.tuning import DEFAULT_TUNING, ServiceTuning

__all__ = ["StablePolicy", "MapDecision", "IncrementalMapper"]


class StablePolicy:
    """Snapshot-pure adapter over a batch allocation policy.

    Pins the wrapped policy's per-invocation tie-break counter (when it
    has one) so that ``allocate`` becomes a pure function of
    ``(tasks, num_cores)`` — identical snapshots always yield identical
    mappings, regardless of how many times the policy ran before.
    """

    def __init__(self, policy: AllocationPolicy) -> None:
        self.policy = policy
        self.name = f"stable({policy.name})"

    def allocate(self, tasks: Sequence[TaskView], num_cores: int) -> Mapping:
        """Run the wrapped policy with its invocation counter pinned."""
        saved = getattr(self.policy, "_invocations", None)
        if saved is not None:
            self.policy._invocations = 0
        try:
            return self.policy.allocate(tasks, num_cores)
        finally:
            if saved is not None:
                self.policy._invocations = saved


@dataclass(frozen=True)
class MapDecision:
    """The outcome of one mapper step.

    ``action`` records which path produced the mapping (``full`` or
    ``incremental``); ``moved`` the pids whose core changed; ``drift``
    the repairs accumulated since the last full remap, after this step.
    """

    action: str
    mapping: Mapping
    moved: Tuple[int, ...]
    drift: int


class IncrementalMapper:
    """Single-event partition repair with drift-bounded full remaps.

    Parameters
    ----------
    policy:
        Any batch allocation policy; it is wrapped in
        :class:`StablePolicy` and consulted only on full remaps.
    num_cores:
        Cores to partition over.
    drift_threshold:
        Incremental repairs tolerated before the next event forces a
        full remap (1 = remap on every event, i.e. no incrementality).
        Defaults to ``tuning.drift_threshold``; passing it explicitly
        overrides the tuning value (legacy call sites).
    tuning:
        Shared :class:`~repro.service.tuning.ServiceTuning`; supplies the
        drift threshold and the flap-guard knobs. With the default tuning
        the guard is disarmed and behaviour is byte-identical to the
        pre-guard mapper.

    Flap guard
    ----------
    A phase change normally forces a full remap (the estimate is
    invalidated). An adversary exploiting that — flapping phases faster
    than the registry's EWMA window — turns every event into a
    policy-rerun remap storm. With ``tuning.flap_threshold`` armed, the
    mapper counts each pid's phase changes over a sliding
    ``flap_window`` of events; a pid crossing the threshold is marked
    *flapping* and its phase changes are damped to an incremental
    re-placement (``action='damped'``) until its rate falls to half the
    threshold (hysteresis). Damped steps still accrue drift, so the
    drift threshold becomes the full-remap rate limit: at most one full
    remap per ``drift_threshold`` events, no matter how fast the
    adversary flaps.
    """

    def __init__(
        self,
        policy: AllocationPolicy,
        num_cores: int,
        drift_threshold: Optional[int] = None,
        *,
        tuning: Optional[ServiceTuning] = None,
    ) -> None:
        if num_cores < 1:
            raise ConfigurationError(f"num_cores must be >= 1, got {num_cores}")
        self.tuning = tuning if tuning is not None else DEFAULT_TUNING
        if drift_threshold is None:
            drift_threshold = self.tuning.drift_threshold
        if drift_threshold < 1:
            raise ConfigurationError(
                f"drift_threshold must be >= 1, got {drift_threshold}"
            )
        self.policy = StablePolicy(policy)
        self.num_cores = num_cores
        self.drift_threshold = drift_threshold
        self.drift = 0
        self.full_remaps = 0
        self.incremental_updates = 0
        self.damped_updates = 0
        #: Working partition, indexed by core (NOT canonicalised — core
        #: identity must survive incremental repair steps).
        self._groups: List[List[int]] = [[] for _ in range(num_cores)]
        # Flap-guard state: only populated when the guard is armed.
        self._event_index = 0
        self._flap_history: Dict[int, List[int]] = {}
        self._flapping: set = set()

    # -- queries -------------------------------------------------------

    @property
    def mapping(self) -> Mapping:
        """The current mapping in canonical (core-permutation) form."""
        return canonical_mapping(self._groups)

    def oracle(self, views: Sequence[TaskView]) -> Mapping:
        """What a from-scratch full remap would decide for *views*.

        Pure query: consults the stabilised policy without touching the
        mapper's own partition or drift state. The equivalence tests
        compare :meth:`settle` output against this.
        """
        if not views:
            return canonical_mapping([[] for _ in range(self.num_cores)])
        return self.policy.allocate(views, self.num_cores).canonical()

    def _cores_of(self) -> dict:
        placement = {}
        for core, group in enumerate(self._groups):
            for pid in group:
                placement[pid] = core
        return placement

    def _decide(self, action: str, before: dict) -> MapDecision:
        after = self._cores_of()
        moved = tuple(
            sorted(
                pid
                for pid, core in after.items()
                if before.get(pid) is not None and before[pid] != core
            )
        )
        return MapDecision(
            action=action, mapping=self.mapping, moved=moved, drift=self.drift
        )

    # -- full remap ----------------------------------------------------

    def _full(self, views: Sequence[TaskView], before: dict) -> MapDecision:
        self.full_remaps += 1
        self.drift = 0
        if not views:
            self._groups = [[] for _ in range(self.num_cores)]
        else:
            decided = self.policy.allocate(views, self.num_cores).canonical()
            self._groups = [sorted(group) for group in decided.groups]
        return self._decide("full", before)

    # -- flap guard ----------------------------------------------------

    @property
    def flap_armed(self) -> bool:
        """Whether phase-change flap detection is active."""
        return self.tuning.flap_threshold is not None

    @property
    def flapping_pids(self) -> Tuple[int, ...]:
        """Pids currently damped by the flap guard (sorted)."""
        return tuple(sorted(self._flapping))

    def _tick(self) -> None:
        """Advance the guard's event clock (armed mappers only)."""
        if self.flap_armed:
            self._event_index += 1

    def _note_phase_change(self, pid: int) -> bool:
        """Record one phase change of *pid*; True when it should be damped.

        Hysteresis: a pid starts being damped at ``flap_threshold``
        changes within the sliding window and stops only once its rate
        decays to half that, so a borderline process does not oscillate
        between damped and full-remap treatment.
        """
        window = self.tuning.flap_window
        threshold = self.tuning.flap_threshold
        assert threshold is not None
        history = self._flap_history.setdefault(pid, [])
        history.append(self._event_index)
        cutoff = self._event_index - window
        while history and history[0] <= cutoff:
            history.pop(0)
        count = len(history)
        if pid in self._flapping:
            if count <= threshold // 2:
                self._flapping.discard(pid)
        elif count >= threshold:
            self._flapping.add(pid)
        return pid in self._flapping

    def _forget(self, pid: int) -> None:
        """Drop a departed pid from the guard's books."""
        self._flap_history.pop(pid, None)
        self._flapping.discard(pid)

    # -- incremental repairs -------------------------------------------

    def _view_of(self, views: Sequence[TaskView], tid: int) -> TaskView:
        for view in views:
            if view.tid == tid:
                return view
        raise ServiceError(f"pid {tid} missing from task views")

    def _placement_cost(self, view: TaskView, core: int) -> float:
        """Occupancy-weighted interference of placing *view* on *core*."""
        return view.occupancy * interference_from_symbiosis(
            view.symbiosis[core]
        )

    def _rebalance(self, views: Sequence[TaskView]) -> None:
        """Restore near-balanced group sizes after a departure.

        Migrates, one task at a time, from the largest group to the
        smallest while their sizes differ by more than one — the same
        balance invariant the batch policies produce. The migrant is
        the donor task suffering the most on its current core (highest
        occupancy-weighted interference), ties broken by pid.
        """
        while True:
            sizes = [len(g) for g in self._groups]
            donor = max(range(self.num_cores), key=lambda c: (sizes[c], -c))
            receiver = min(range(self.num_cores), key=lambda c: (sizes[c], c))
            if sizes[donor] - sizes[receiver] <= 1:
                return
            migrant = max(
                self._groups[donor],
                key=lambda pid: (
                    self._placement_cost(self._view_of(views, pid), donor),
                    -pid,
                ),
            )
            self._groups[donor].remove(migrant)
            self._groups[receiver].append(migrant)
            self._groups[receiver].sort()

    def admit(self, views: Sequence[TaskView], pid: int) -> MapDecision:
        """Place one arrival; *views* is the post-admission snapshot.

        The arrival goes to the least-interfering of the smallest
        groups (preserving balance); everything else stays put. Falls
        back to a full remap when drift would cross the threshold.
        """
        before = self._cores_of()
        self._tick()
        if self.drift + 1 >= self.drift_threshold:
            return self._full(views, before)
        self._place(views, pid)
        self.drift += 1
        self.incremental_updates += 1
        return self._decide("incremental", before)

    def _place(self, views: Sequence[TaskView], pid: int) -> None:
        """Append *pid* to the least-interfering of the smallest groups."""
        view = self._view_of(views, pid)
        sizes = [len(g) for g in self._groups]
        smallest = min(sizes)
        candidates = [c for c in range(self.num_cores) if sizes[c] == smallest]
        core = min(
            candidates, key=lambda c: (self._placement_cost(view, c), c)
        )
        self._groups[core].append(pid)
        self._groups[core].sort()

    def retire(self, views: Sequence[TaskView], pid: int) -> MapDecision:
        """Remove one departure; *views* is the post-removal snapshot."""
        before = self._cores_of()
        self._tick()
        self._forget(pid)
        if self.drift + 1 >= self.drift_threshold:
            for group in self._groups:
                if pid in group:
                    group.remove(pid)
            return self._full(views, before)
        removed = False
        for group in self._groups:
            if pid in group:
                group.remove(pid)
                removed = True
                break
        if not removed:
            raise ServiceError(f"pid {pid} is not in the current mapping")
        self._rebalance(views)
        self.drift += 1
        self.incremental_updates += 1
        return self._decide("incremental", before)

    def phase_change(
        self, views: Sequence[TaskView], pid: int
    ) -> MapDecision:
        """A phase change invalidates the estimate: remap fully — unless
        the flap guard has marked *pid* as flapping, in which case the
        change is damped to an incremental re-placement (and drift still
        accrues, so the drift threshold rate-limits full remaps)."""
        before = self._cores_of()
        if pid not in before:
            raise ServiceError(f"pid {pid} is not in the current mapping")
        self._tick()
        if self.flap_armed and self._note_phase_change(pid):
            if self.drift + 1 >= self.drift_threshold:
                return self._full(views, before)
            for group in self._groups:
                if pid in group:
                    group.remove(pid)
                    break
            self._place(views, pid)
            self.drift += 1
            self.damped_updates += 1
            return self._decide("damped", before)
        return self._full(views, before)

    # -- snapshot support ----------------------------------------------

    def export_state(self) -> dict:
        """JSON-native mapper state for durable snapshots.

        Groups are exported in core-index order (NOT canonicalised):
        core identity is working state the incremental repair paths
        depend on, so it must survive a snapshot round-trip.
        """
        state = {
            "drift": self.drift,
            "full_remaps": self.full_remaps,
            "incremental_updates": self.incremental_updates,
            "groups": [list(group) for group in self._groups],
        }
        if self.flap_armed:
            # Guard state is exported only when armed: a disarmed mapper's
            # snapshot stays byte-identical to the pre-guard format.
            state["damped_updates"] = self.damped_updates
            state["flap"] = {
                "event_index": self._event_index,
                "history": {
                    str(pid): list(events)
                    for pid, events in sorted(self._flap_history.items())
                    if events
                },
                "flapping": sorted(self._flapping),
            }
        return state

    def restore(self, state: dict) -> None:
        """Replace partition and counters from :meth:`export_state` output."""
        groups = state["groups"]
        if len(groups) != self.num_cores:
            raise ServiceError(
                f"snapshot has {len(groups)} groups but mapper partitions "
                f"{self.num_cores} cores"
            )
        self._groups = [sorted(int(pid) for pid in group) for group in groups]
        self.drift = int(state["drift"])
        self.full_remaps = int(state["full_remaps"])
        self.incremental_updates = int(state["incremental_updates"])
        self.damped_updates = int(state.get("damped_updates", 0))
        flap = state.get("flap")
        if flap is not None and self.flap_armed:
            self._event_index = int(flap["event_index"])
            self._flap_history = {
                int(pid): [int(e) for e in events]
                for pid, events in flap["history"].items()
            }
            self._flapping = {int(pid) for pid in flap["flapping"]}
        else:
            self._event_index = 0
            self._flap_history = {}
            self._flapping = set()

    def settle(self, views: Sequence[TaskView]) -> MapDecision:
        """Clear accumulated drift with an unconditional full remap.

        Replays call this once at trace end; because the stabilised
        policy is a pure function of the snapshot, the settled mapping
        is byte-identical to :meth:`oracle` on the same views — the
        trace-end equivalence contract the bench asserts.
        """
        return self._full(views, self._cores_of())
