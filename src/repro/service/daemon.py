"""The event-driven scheduling daemon: :class:`SchedulerService`.

One asyncio task consumes a bounded admission queue of scheduling
events, updates the :class:`~repro.service.registry.ProcessRegistry`,
asks the :class:`~repro.service.mapper.IncrementalMapper` for a
decision, and resolves the submitter's future with a JSON-native
result. Bounded queue + awaiting producers = backpressure: under
overload, submitters *wait* — nothing is silently discarded. The only
path that drops is the explicitly non-blocking :meth:`try_submit`,
and every drop is counted.

Health reuses the supervision layer rather than reinventing it:

* a :class:`~repro.supervise.breaker.CircuitBreaker` keyed by workload
  profile short-circuits admissions of profiles that keep failing
  (poison specs in service clothing); its cooldown advances in waves
  of processed events, keeping it deterministic under replay;
* an optional heartbeat board (:mod:`repro.supervise.heartbeat`) gets
  a tick per processed event and an idle tick while the queue is
  empty, so an external watchdog can distinguish loaded from wedged.

Crash consistency is optional and composed in from
:mod:`repro.durable`: with a
:class:`~repro.durable.manager.DurabilityManager` attached, every
event is WAL-appended before it is applied, state is snapshotted every
N events, duplicate ``(client, seq)`` submissions are answered from
the idempotency table instead of re-applied, and
:meth:`SchedulerService.recover` rebuilds an exact replica of the
pre-crash daemon. Without it (the default) nothing is logged and
behaviour is byte-identical to the pre-durability daemon.

Telemetry follows the house contract — one guarded ``current()`` read,
byte-identical behaviour when disabled: ``service_events_<kind>_total``
counters, the ``service_registry_size`` gauge and the
``service_remap_seconds`` histogram (full remaps only), plus a
``service.event`` span per processed event.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.alloc.base import AllocationPolicy
from repro.durable.dedup import DedupTable
from repro.durable.manager import DurabilityManager
from repro.durable.state import capture_state, restore_state
from repro.errors import ConfigurationError, ReproError, ServiceError
from repro.service.events import (
    AdmitEvent,
    PhaseChangeEvent,
    RetireEvent,
    ServiceEvent,
    SettleEvent,
    event_from_payload,
    event_to_payload,
)
from repro.service.mapper import IncrementalMapper, MapDecision
from repro.service.registry import DEFAULT_CAPACITY_LINES, ProcessRegistry
from repro.service.tuning import DEFAULT_TUNING, ServiceTuning
from repro.supervise import heartbeat
from repro.supervise.breaker import CircuitBreaker
from repro.telemetry.context import current as telemetry_current
from repro.telemetry.metrics import DURATION_BUCKETS

__all__ = ["ServiceConfig", "SchedulerService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one scheduling daemon instance.

    ``queue_capacity`` bounds the admission queue (backpressure depth);
    ``drift_threshold`` is forwarded to the incremental mapper;
    ``wave_events`` sets how many processed events advance one circuit
    breaker cooldown wave; ``heartbeat_interval`` paces idle liveness
    ticks when a heartbeat board is attached; ``stale_after_seconds``
    (``None`` = never) arms the degraded mode — once the footprint
    stream has been silent that long the daemon keeps serving its
    last-good mapping but flags ``degraded=true`` in ``status``. The
    default keeps every clock read out of the event path, so
    undegraded runs stay byte-identical to a build without the feature.

    ``ewma_alpha``, ``drift_threshold``, ``flap_window`` and
    ``flap_threshold`` mirror :class:`~repro.service.tuning.ServiceTuning`
    (one source of truth for the defaults); the :attr:`tuning` property
    rebuilds the dataclass the mapper consumes. ``flap_threshold=None``
    (the default) disarms the mapper's flap guard, keeping benign
    behaviour byte-identical to the pre-guard daemon.
    """

    num_cores: int = 2
    queue_capacity: int = 1024
    drift_threshold: int = DEFAULT_TUNING.drift_threshold
    capacity_lines: int = DEFAULT_CAPACITY_LINES
    ewma_alpha: float = DEFAULT_TUNING.ewma_alpha
    breaker_threshold: int = 3
    breaker_cooldown_waves: int = 2
    wave_events: int = 64
    heartbeat_interval: float = 1.0
    stale_after_seconds: Optional[float] = None
    flap_window: int = DEFAULT_TUNING.flap_window
    flap_threshold: Optional[int] = None

    @property
    def tuning(self) -> ServiceTuning:
        """The shared tuning view of this config's adaptation knobs."""
        return ServiceTuning(
            ewma_alpha=self.ewma_alpha,
            drift_threshold=self.drift_threshold,
            flap_window=self.flap_window,
            flap_threshold=self.flap_threshold,
        )

    def __post_init__(self) -> None:
        self.tuning  # validates ewma/drift/flap fields in one place
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.wave_events < 1:
            raise ConfigurationError(
                f"wave_events must be >= 1, got {self.wave_events}"
            )
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.stale_after_seconds is not None and self.stale_after_seconds <= 0:
            raise ConfigurationError(
                "stale_after_seconds must be > 0 or None, got "
                f"{self.stale_after_seconds}"
            )


class SchedulerService:
    """The online symbiotic scheduler (see module docstring).

    Parameters
    ----------
    policy:
        Batch allocation policy consulted on full remaps (wrapped in
        :class:`~repro.service.mapper.StablePolicy` by the mapper).
    config:
        Daemon tunables; defaults are sensible for tests and replays.
    heartbeat_board:
        Optional shared mapping for liveness ticks (any mutable
        mapping; in production a ``multiprocessing.Manager().dict()``).
    heartbeat_slot:
        Board slot this daemon ticks under.
    durability:
        Optional :class:`~repro.durable.manager.DurabilityManager`.
        When attached, every event is WAL-logged *before* it is
        applied and the full service state is snapshotted every
        ``snapshot_interval`` events; :meth:`recover` rebuilds the
        daemon from that directory after a crash. ``None`` (the
        default) keeps the daemon purely in-memory, byte-identical to
        a build without the durability layer.
    """

    def __init__(
        self,
        policy: AllocationPolicy,
        config: Optional[ServiceConfig] = None,
        *,
        heartbeat_board: Optional[Any] = None,
        heartbeat_slot: Tuple[int, int] = (0, 0),
        durability: Optional[DurabilityManager] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.registry = ProcessRegistry(
            self.config.num_cores,
            capacity_lines=self.config.capacity_lines,
            ewma_alpha=self.config.ewma_alpha,
        )
        self.mapper = IncrementalMapper(
            policy,
            self.config.num_cores,
            tuning=self.config.tuning,
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_waves=self.config.breaker_cooldown_waves,
        )
        self._heartbeat_board = heartbeat_board
        self._heartbeat_slot = heartbeat_slot
        self.durability = durability
        self.dedup = DedupTable()
        self.events_processed = 0
        self.events_ok = 0
        self.events_rejected = 0
        self.events_dropped = 0
        self.events_deduped = 0
        self.recovered_events = 0
        self.recovered_from_snapshot = False
        self._events_since_wave = 0
        #: Monotonic stamp of the last applied event; read/written only
        #: when ``stale_after_seconds`` arms the degraded mode.
        self._last_event_monotonic: Optional[float] = None
        self._queue: Optional[asyncio.Queue] = None
        self._task: Optional[asyncio.Task] = None
        self._accepting = False

    # -- recovery ------------------------------------------------------

    @classmethod
    def recover(
        cls,
        policy: AllocationPolicy,
        config: Optional[ServiceConfig] = None,
        *,
        state_dir,
        snapshot_interval: int = 256,
        fsync_every: int = 1,
        heartbeat_board: Optional[Any] = None,
        heartbeat_slot: Tuple[int, int] = (0, 0),
    ) -> "SchedulerService":
        """Rebuild a daemon from a durability directory after a crash.

        Loads the newest intact snapshot (corrupt ones are quarantined
        and ignored), replays the WAL tail through the daemon's own
        event handler, and returns a service whose registry, mapper,
        breaker, dedup table and counters are byte-identical to an
        uninterrupted run over the same event sequence — the
        equivalence the kill-at-every-index test pins. The recovered
        service is not started; call :meth:`start` as usual.
        """
        durability = DurabilityManager(
            state_dir,
            snapshot_interval=snapshot_interval,
            fsync_every=fsync_every,
        )
        service = cls(
            policy,
            config,
            heartbeat_board=heartbeat_board,
            heartbeat_slot=heartbeat_slot,
            durability=durability,
        )
        service._recover_from(durability)
        return service

    def checkpoint(self) -> bool:
        """Force a snapshot + WAL compaction now; False when not durable.

        The daemon never snapshots on :meth:`stop` — clean shutdown
        leaves the snapshot + WAL tail exactly as the last event left
        them, and recovery replays the tail. Call this to bound the
        tail explicitly (e.g. before planned maintenance).
        """
        if self.durability is None:
            return False
        self.durability.checkpoint(capture_state(self))
        return True

    def _recover_from(self, durability: DurabilityManager) -> None:
        """Load snapshot + WAL tail into this (fresh, stopped) service."""
        tel = telemetry_current()
        span = (
            tel.tracer.begin("durable.recover")
            if tel is not None and tel.tracer is not None
            else None
        )
        started = (
            time.perf_counter()
            if tel is not None and tel.metrics is not None
            else None
        )
        tail: list = []
        try:
            state, _, tail = durability.load()
            if state is not None:
                restore_state(self, state)
                self.recovered_from_snapshot = True
            for _, payload in tail:
                self._handle(event_from_payload(payload), record=False)
            self.recovered_events = len(tail)
        finally:
            if tel is not None and tel.metrics is not None:
                if tail:
                    tel.metrics.counter(
                        "durable_recovery_replayed_total"
                    ).inc(len(tail))
                tel.metrics.histogram(
                    "durable_recovery_seconds", DURATION_BUCKETS
                ).observe(time.perf_counter() - started)
            if span is not None:
                tel.tracer.end(span)

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the consumer task is alive."""
        return self._task is not None and not self._task.done()

    async def start(self) -> None:
        """Create the admission queue and launch the consumer task."""
        if self._task is not None:
            raise ServiceError("service already started")
        self._queue = asyncio.Queue(maxsize=self.config.queue_capacity)
        self._accepting = True
        if self._heartbeat_board is not None:
            heartbeat.bind(self._heartbeat_board, self._heartbeat_slot)
            heartbeat.tick("service:start")
        self._task = asyncio.create_task(self._run(), name="repro-service")

    async def stop(self, drain: bool = True) -> None:
        """Stop the daemon.

        With ``drain=True`` (graceful) the queue is closed to new
        submissions, every already-queued event is processed and its
        future resolved, and only then does the consumer exit. With
        ``drain=False`` the consumer is cancelled immediately and every
        still-queued future resolves with a shutdown error (counted as
        dropped).
        """
        if self._task is None:
            return
        self._accepting = False
        assert self._queue is not None
        if drain:
            await self._queue.put(None)  # sentinel lands after queued work
            await self._task
        else:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            while not self._queue.empty():
                item = self._queue.get_nowait()
                if item is None:
                    continue
                _, future = item
                # stop() is externally serialised (one caller, once) and
                # admission was closed via _accepting=False before any
                # await above, so no handler can interleave with this
                # monotonic drain counter.
                self.events_dropped += 1  # repro: noqa[RPR604]
                if future is not None and not future.done():
                    future.set_result(
                        {
                            "ok": False,
                            "error": "service stopped before processing",
                        }
                    )
        if self._heartbeat_board is not None:
            heartbeat.unbind()
        self._task = None
        self._queue = None

    # -- submission ----------------------------------------------------

    def _require_accepting(self) -> asyncio.Queue:
        if not self._accepting or self._queue is None:
            raise ServiceError("service is not accepting events")
        return self._queue

    async def submit_event(self, event: ServiceEvent) -> Dict[str, Any]:
        """Enqueue one event and await its decision (backpressure path).

        When the queue is full this *waits* for a slot — the bounded
        queue pushes back on producers instead of dropping events.
        """
        queue = self._require_accepting()
        future = asyncio.get_running_loop().create_future()
        await queue.put((event, future))
        return await future

    def try_submit(self, event: ServiceEvent) -> Optional["asyncio.Future"]:
        """Enqueue without blocking; ``None`` (and a counted drop) if full.

        The future resolves with the decision once the event is
        processed. This is the only path that can ever drop an event.
        """
        queue = self._require_accepting()
        future = asyncio.get_running_loop().create_future()
        try:
            queue.put_nowait((event, future))
        except asyncio.QueueFull:
            self.events_dropped += 1
            tel = telemetry_current()
            if tel is not None and tel.metrics is not None:
                tel.metrics.counter("service_dropped_events_total").inc()
            return None
        return future

    # -- consumer ------------------------------------------------------

    async def _run(self) -> None:
        """Consume the admission queue until the shutdown sentinel."""
        assert self._queue is not None
        while True:
            if self._heartbeat_board is not None:
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), self.config.heartbeat_interval
                    )
                except asyncio.TimeoutError:
                    heartbeat.tick("service:idle")
                    continue
            else:
                item = await self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            event, future = item
            # Write-ahead ordering requires the WAL append (a small
            # buffered write, fsync batched by policy) to complete
            # synchronously before the event is applied; _run is the
            # single consumer task, so the bounded stall is the
            # documented durability/latency trade, not a hazard.
            result = self._handle(event)  # repro: noqa[RPR602]
            if self._heartbeat_board is not None:
                heartbeat.tick(
                    f"service:{getattr(event, 'kind', 'unknown')}"
                )
            if future is not None and not future.done():
                future.set_result(result)
            self._queue.task_done()

    def _handle(
        self, event: ServiceEvent, record: bool = True
    ) -> Dict[str, Any]:
        """Process one event; never raises (the daemon must keep serving).

        With durability attached (and ``record=True``) the event is
        WAL-appended *before* it is applied — write-ahead order. The
        recovery replay path calls with ``record=False``: re-applying
        an already-logged event must not log it again. A duplicate
        ``(client, seq)`` request short-circuits here, answered from
        the dedup table without touching the WAL or the scheduler.
        """
        # Even a foreign object in the queue must produce an answer, so
        # the kind tag cannot assume the event honours the protocol.
        kind = getattr(event, "kind", type(event).__name__)
        tel = telemetry_current()
        client = getattr(event, "client", None)
        seq = getattr(event, "seq", None)
        if client is not None and seq is not None:
            cached = self.dedup.check(client, seq)
            if cached is not None:
                self.events_deduped += 1
                if tel is not None and tel.metrics is not None:
                    tel.metrics.counter("service_deduped_total").inc()
                result = dict(cached)
                result["duplicate"] = True
                return result
        span = (
            tel.tracer.begin("service.event", kind=kind)
            if tel is not None and tel.tracer is not None
            else None
        )
        try:
            if record and self.durability is not None:
                self.durability.record_event(event_to_payload(event))
            try:
                result = self._dispatch(event, tel)
            except ReproError as exc:
                result = {"ok": False, "kind": kind, "error": str(exc)}
            except Exception as exc:  # unexpected: report, keep serving
                result = {
                    "ok": False,
                    "kind": kind,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            self.events_processed += 1
            if result.get("ok"):
                self.events_ok += 1
            else:
                self.events_rejected += 1
            self._events_since_wave += 1
            if self._events_since_wave >= self.config.wave_events:
                self._events_since_wave = 0
                self.breaker.advance_wave()
            if client is not None and seq is not None:
                self.dedup.remember(client, seq, result)
            if record and self.durability is not None:
                self.durability.note_applied(lambda: capture_state(self))
            if self.config.stale_after_seconds is not None:
                self._last_event_monotonic = time.monotonic()
            if tel is not None and tel.metrics is not None:
                tel.metrics.counter(
                    f"service_events_{kind}_total"
                ).inc()
                if not result.get("ok"):
                    tel.metrics.counter("service_rejected_total").inc()
                tel.metrics.gauge("service_registry_size").set(
                    len(self.registry)
                )
            return result
        finally:
            if span is not None:
                tel.tracer.end(span)

    def _dispatch(self, event: ServiceEvent, tel) -> Dict[str, Any]:
        """Route one event to registry + mapper; returns the result."""
        if isinstance(event, AdmitEvent):
            if not self.breaker.allow(event.name):
                return {
                    "ok": False,
                    "kind": "admit",
                    "pid": event.pid,
                    "error": (
                        f"admission short-circuited: profile {event.name!r} "
                        "tripped the circuit breaker"
                    ),
                    "short_circuited": True,
                }
            try:
                self.registry.admit(event.pid, event.name)
            except ReproError as exc:
                self.breaker.record_failure(event.name, str(exc))
                raise
            self.breaker.record_success(event.name)
            decision = self._map(
                lambda views: self.mapper.admit(views, event.pid), tel
            )
            return self._result("admit", event.pid, decision)
        if isinstance(event, RetireEvent):
            self.registry.retire(event.pid)
            decision = self._map(
                lambda views: self.mapper.retire(views, event.pid), tel
            )
            return self._result("retire", event.pid, decision)
        if isinstance(event, PhaseChangeEvent):
            self.registry.phase_change(event.pid, event.name)
            decision = self._map(
                lambda views: self.mapper.phase_change(views, event.pid), tel
            )
            return self._result("phase_change", event.pid, decision)
        if isinstance(event, SettleEvent):
            views = self.registry.views()
            decision = self._timed_step(
                lambda: self.mapper.settle(views), full=True, tel=tel
            )
            oracle = self.mapper.oracle(views)
            self.registry.apply_mapping(decision.mapping)
            result = self._result("settle", None, decision)
            result["oracle"] = str(oracle)
            return result
        raise ServiceError(f"unknown service event {event!r}")

    def _map(self, step, tel) -> MapDecision:
        """Snapshot views, run one mapper step, apply the decision."""
        views = self.registry.views()
        decision = self._timed_step(
            lambda: step(views), full=None, tel=tel
        )
        self.registry.apply_mapping(decision.mapping)
        return decision

    @staticmethod
    def _timed_step(step, full, tel) -> MapDecision:
        """Run a mapper step, observing remap latency when telemetry is on.

        ``full=None`` means "observe only if the step chose the full
        path"; ``full=True`` forces observation (settle). The clock is
        read only when telemetry is active — disabled runs stay
        byte-identical to an uninstrumented build.
        """
        if tel is None or tel.metrics is None:
            return step()
        started = time.perf_counter()
        decision = step()
        if full or decision.action == "full":
            tel.metrics.histogram(
                "service_remap_seconds", DURATION_BUCKETS
            ).observe(time.perf_counter() - started)
        return decision

    def _result(
        self, kind: str, pid: Optional[int], decision: MapDecision
    ) -> Dict[str, Any]:
        """JSON-native success payload shared by every event kind."""
        return {
            "ok": True,
            "kind": kind,
            "pid": pid,
            "action": decision.action,
            "mapping": str(decision.mapping),
            "moved": list(decision.moved),
            "drift": decision.drift,
            "population": len(self.registry),
        }

    # -- introspection -------------------------------------------------

    def queue_depth(self) -> int:
        """Events currently waiting in the admission queue."""
        return 0 if self._queue is None else self._queue.qsize()

    @property
    def degraded(self) -> bool:
        """Whether the footprint stream has been stale past threshold.

        Always ``False`` while ``stale_after_seconds`` is unset (no
        clock is ever read) and until the first event arrives; once
        degraded, the daemon keeps answering ``mapping`` with the
        last-good mapping rather than refusing service.
        """
        threshold = self.config.stale_after_seconds
        if threshold is None or self._last_event_monotonic is None:
            return False
        return time.monotonic() - self._last_event_monotonic > threshold

    def status(self) -> Dict[str, Any]:
        """JSON-native daemon status (the ``status`` endpoint)."""
        return {
            "running": self.running,
            "accepting": self._accepting,
            "degraded": self.degraded,
            "queue_depth": self.queue_depth(),
            "events": {
                "processed": self.events_processed,
                "ok": self.events_ok,
                "rejected": self.events_rejected,
                "dropped": self.events_dropped,
                "deduped": self.events_deduped,
            },
            "mapper": {
                "full_remaps": self.mapper.full_remaps,
                "incremental_updates": self.mapper.incremental_updates,
                "drift": self.mapper.drift,
                "drift_threshold": self.mapper.drift_threshold,
                **(
                    {
                        "damped_updates": self.mapper.damped_updates,
                        "flapping": list(self.mapper.flapping_pids),
                    }
                    if self.mapper.flap_armed
                    else {}
                ),
            },
            "breaker_open": self.breaker.open_keys(),
            "registry": self.registry.status(),
            "durability": (
                None if self.durability is None else self.durability.status()
            ),
        }

    def mapping_payload(self) -> Dict[str, Any]:
        """JSON-native current mapping (the ``mapping`` endpoint)."""
        mapping = self.mapper.mapping
        return {
            "mapping": str(mapping),
            "groups": [sorted(group) for group in mapping.groups],
            "population": len(self.registry),
            "drift": self.mapper.drift,
        }
