"""Synthetic single-threaded profiles standing in for the 12 SPEC CPU2006
benchmarks of the paper's pool (Section 4.2).

SPEC binaries and reference inputs are licensed and cannot ship here, and
no native x86 execution is available; what the paper's mechanism consumes,
however, is only each benchmark's **L2 reference stream**. Each profile
below therefore encodes the published/known qualitative memory behaviour of
its namesake — working-set size, reuse pattern and post-L1 memory intensity
(L2 accesses per kilo-instruction) — so that the signature hardware and the
allocation algorithms face the same footprint/interference structure the
paper measured:

* **mcf** — the paper's most cache-sensitive benchmark (54% max gain):
  pointer-chasing over a multi-megabyte structure with a hot core that fits
  a 4 MB L2 only when left alone.
* **omnetpp** — second most sensitive (49%): similar shape, smaller hot set.
* **libquantum** — pure streaming polluter; hurts others while being mostly
  miss-bound itself (Fig 3(b)'s worst pair is mcf+libquantum).
* **hmmer** — "low locality yet high memory traffic" (bandwidth-bound,
  insensitive to scheduling per Section 5.1.1).
* **povray** — compute-bound, tiny footprint, insensitive.
* the remaining seven fill out the moderate middle of the pool.

Working-set numbers are calibrated against the 4 MB/16-way shared L2 of the
paper's Core 2 Duo target rather than measured from SPEC runs; EXPERIMENTS.md
records the resulting paper-vs-measured comparison per figure.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import WorkloadProfile

__all__ = ["SPEC_PROFILES", "spec_profile", "spec_profile_names", "spec_pool"]


def _p(**kwargs) -> WorkloadProfile:
    return WorkloadProfile(**kwargs)


#: The 12-benchmark pool, keyed by name.
SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        _p(
            name="mcf",
            category="cache_sensitive",
            working_set_kb=16 * 1024,
            hot_set_kb=3072,
            accesses_per_kinstr=45.0,
            pattern="zipf",
            locality=0.9,
            mlp=1.0,
            description="single-depot vehicle scheduling; pointer-heavy, "
            "randomly traversed ~3MB hot core inside a 16MB structure",
        ),
        _p(
            name="omnetpp",
            category="cache_sensitive",
            working_set_kb=8 * 1024,
            hot_set_kb=2560,
            accesses_per_kinstr=30.0,
            pattern="zipf",
            locality=0.88,
            mlp=1.2,
            description="discrete event simulator; linked event lists with "
            "a ~2MB hot heap",
        ),
        _p(
            name="libquantum",
            category="streaming",
            working_set_kb=32 * 1024,
            hot_set_kb=32 * 1024,
            accesses_per_kinstr=25.0,
            pattern="stream",
            locality=1.0,
            mlp=6.0,
            description="quantum register simulation; unit-stride sweeps of "
            "a 32MB vector, the pool's chief cache polluter",
        ),
        _p(
            name="hmmer",
            category="bandwidth_bound",
            working_set_kb=24 * 1024,
            hot_set_kb=24 * 1024,
            accesses_per_kinstr=20.0,
            pattern="random",
            locality=1.0,
            mlp=4.0,
            description="profile HMM search over a protein database; low "
            "locality, high traffic (paper Sec 5.1.1)",
        ),
        _p(
            name="povray",
            category="compute_bound",
            working_set_kb=128,
            hot_set_kb=64,
            accesses_per_kinstr=1.0,
            pattern="zipf",
            locality=0.95,
            mlp=1.0,
            description="ray tracing; tiny footprint, arithmetic-bound",
        ),
        _p(
            name="gobmk",
            category="moderate",
            working_set_kb=1024,
            hot_set_kb=512,
            accesses_per_kinstr=5.0,
            pattern="zipf",
            locality=0.85,
            mlp=1.5,
            description="Go playing; board/pattern tables with ~0.5MB hot set",
        ),
        _p(
            name="perlbench",
            category="moderate",
            working_set_kb=1024,
            hot_set_kb=384,
            accesses_per_kinstr=5.0,
            pattern="zipf",
            locality=0.9,
            mlp=1.5,
            description="Perl interpreter; op dispatch tables, modest reuse set",
        ),
        _p(
            name="sjeng",
            category="moderate",
            working_set_kb=512,
            hot_set_kb=256,
            accesses_per_kinstr=3.0,
            pattern="zipf",
            locality=0.9,
            mlp=1.5,
            description="chess search; transposition table with strong reuse",
        ),
        _p(
            name="bzip2",
            category="moderate",
            working_set_kb=2048,
            hot_set_kb=768,
            accesses_per_kinstr=8.0,
            pattern="mixed",
            locality=0.7,
            mlp=2.0,
            description="block-sorting compression; strided block sweeps plus "
            "random suffix references",
        ),
        _p(
            name="gcc",
            category="moderate",
            working_set_kb=4096,
            hot_set_kb=1024,
            accesses_per_kinstr=10.0,
            pattern="zipf",
            locality=0.8,
            mlp=1.5,
            description="compiler; IR graphs with a ~1MB hot region",
        ),
        _p(
            name="milc",
            category="cache_sensitive",
            working_set_kb=16 * 1024,
            hot_set_kb=1536,
            accesses_per_kinstr=25.0,
            pattern="mixed",
            locality=0.6,
            mlp=3.0,
            description="lattice QCD; strided field sweeps with a reused "
            "3MB lattice slice",
        ),
        _p(
            name="astar",
            category="cache_sensitive",
            working_set_kb=6 * 1024,
            hot_set_kb=2048,
            accesses_per_kinstr=15.0,
            pattern="zipf",
            locality=0.85,
            mlp=1.2,
            description="path finding; graph traversal with a ~1.5MB hot set",
        ),
    ]
}


def spec_profile(name: str) -> WorkloadProfile:
    """Look up one of the 12 pool profiles by name."""
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown SPEC profile {name!r}; pool: {sorted(SPEC_PROFILES)}"
        ) from None


def spec_profile_names() -> List[str]:
    """Names of the 12-benchmark pool, in a stable order."""
    return sorted(SPEC_PROFILES)


def spec_pool() -> List[WorkloadProfile]:
    """The full pool as a list (stable order)."""
    return [SPEC_PROFILES[n] for n in spec_profile_names()]
