"""Address-pattern generators and the profile → generator factory.

Each generator models one locality archetype observed in the paper's
benchmark pool:

* :class:`StridedGenerator` / :class:`StreamGenerator` — regular sweeps
  (libquantum-style streaming, Figure 1's conjured patterns);
* :class:`RandomRegionGenerator` — uniform low-locality traffic
  (hmmer-style bandwidth-bound behaviour);
* :class:`HotColdGenerator` — two-level reuse skew (gobmk/perlbench-style
  moderate locality);
* :class:`PointerChaseGenerator` — dependent-chain traversal over a
  shuffled cycle (mcf/omnetpp-style cache-sensitive behaviour);
* :class:`PhasedGenerator` — time-varying footprint (the aim9-like
  microbenchmark of Figures 2/5);
* :class:`MixtureGenerator` — weighted interleaving of sub-patterns.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.utils.validation import require_positive
from repro.workloads.base import TraceGenerator, WorkloadProfile

__all__ = [
    "StridedGenerator",
    "StreamGenerator",
    "RandomRegionGenerator",
    "HotColdGenerator",
    "PointerChaseGenerator",
    "SlidingWindowGenerator",
    "PhasedGenerator",
    "MixtureGenerator",
    "generator_for_profile",
]


class StridedGenerator(TraceGenerator):
    """Sweep a region with a fixed stride, wrapping around.

    With ``stride`` equal to the number of cache sets this reproduces
    Figure 1's 'same miss rate, different footprint' conflict pattern.
    """

    def __init__(
        self,
        region_blocks: int,
        stride_blocks: int = 1,
        base_block: int = 0,
        seed: int = 0,
    ):
        super().__init__(base_block=base_block, seed=seed)
        self.region_blocks = require_positive(region_blocks, "region_blocks")
        self.stride_blocks = require_positive(stride_blocks, "stride_blocks")
        self._pos = 0

    def _generate(self, n: int) -> np.ndarray:
        steps = np.arange(self._pos, self._pos + n, dtype=np.int64)
        self._pos = (self._pos + n) % self.region_blocks
        return (steps * self.stride_blocks) % self.region_blocks

    def _restart(self) -> None:
        self._pos = 0


class StreamGenerator(StridedGenerator):
    """Unit-stride streaming over a (typically cache-exceeding) region."""

    def __init__(self, region_blocks: int, base_block: int = 0, seed: int = 0):
        super().__init__(region_blocks, 1, base_block=base_block, seed=seed)


class RandomRegionGenerator(TraceGenerator):
    """Uniform random references within a region (low locality)."""

    def __init__(self, region_blocks: int, base_block: int = 0, seed: int = 0):
        super().__init__(base_block=base_block, seed=seed)
        self.region_blocks = require_positive(region_blocks, "region_blocks")

    def _generate(self, n: int) -> np.ndarray:
        return self._rng.integers(0, self.region_blocks, n, dtype=np.int64)


class HotColdGenerator(TraceGenerator):
    """Two-level reuse: a hot subset absorbs most references.

    Each reference targets the hot region (``[0, hot_blocks)``) with
    probability *hot_fraction*, else the whole region — the standard
    cheap stand-in for a Zipf-like reuse distribution.
    """

    def __init__(
        self,
        region_blocks: int,
        hot_blocks: int,
        hot_fraction: float = 0.9,
        base_block: int = 0,
        seed: int = 0,
    ):
        super().__init__(base_block=base_block, seed=seed)
        self.region_blocks = require_positive(region_blocks, "region_blocks")
        self.hot_blocks = require_positive(hot_blocks, "hot_blocks")
        if self.hot_blocks > self.region_blocks:
            raise WorkloadError("hot_blocks exceeds region_blocks")
        if not 0.0 <= hot_fraction <= 1.0:
            raise WorkloadError(f"hot_fraction must be in [0,1], got {hot_fraction}")
        self.hot_fraction = float(hot_fraction)

    def _generate(self, n: int) -> np.ndarray:
        # Single inverse-CDF draw: u < f maps into the hot region, the rest
        # maps uniformly over the whole region. One stream draw per access
        # keeps the sequence invariant under batch splitting.
        u = self._rng.random(n)
        f = self.hot_fraction
        out = np.empty(n, dtype=np.int64)
        hot = u < f
        if f > 0.0:
            out[hot] = (u[hot] / f * self.hot_blocks).astype(np.int64)
        cold = ~hot
        if f < 1.0:
            out[cold] = ((u[cold] - f) / (1.0 - f) * self.region_blocks).astype(
                np.int64
            )
        np.clip(out, 0, self.region_blocks - 1, out=out)
        return out


class PointerChaseGenerator(TraceGenerator):
    """Dependent-chain traversal of a shuffled single-cycle permutation.

    Models linked-data-structure benchmarks (mcf, omnetpp): the access
    order is fixed, covers the whole region exactly once per lap, and has
    no spatial locality — the classic worst case for caches slightly
    smaller than the region.
    """

    def __init__(self, region_blocks: int, base_block: int = 0, seed: int = 0):
        super().__init__(base_block=base_block, seed=seed)
        self.region_blocks = require_positive(region_blocks, "region_blocks")
        # Materialise the chase order once: a shuffled visiting sequence is
        # equivalent to following a random single-cycle permutation.
        order = np.arange(self.region_blocks, dtype=np.int64)
        np.random.default_rng(self.seed).shuffle(order)
        self._order = order
        self._pos = 0

    def _generate(self, n: int) -> np.ndarray:
        idx = (np.arange(self._pos, self._pos + n, dtype=np.int64)) % self.region_blocks
        self._pos = (self._pos + n) % self.region_blocks
        return self._order[idx]

    def _restart(self) -> None:
        self._pos = 0


class SlidingWindowGenerator(TraceGenerator):
    """Streaming references with a bounded live window.

    Each reference either advances the stream cursor to a fresh block
    (probability *churn*) or re-touches a uniformly random block within the
    last *window_blocks* — so the live working set stays at
    ``window_blocks`` while fresh data flows through indefinitely (the
    aim9_disk-like behaviour behind Figures 2/5: the miss rate is governed
    by churn, the footprint by the window, and the two are independent).

    A single uniform draw per access doubles as the new/reuse decision and
    the reuse offset, keeping the stream invariant under batch splitting.
    """

    def __init__(
        self,
        window_blocks: int,
        churn: float = 0.3,
        base_block: int = 0,
        seed: int = 0,
    ):
        super().__init__(base_block=base_block, seed=seed)
        self.window_blocks = require_positive(window_blocks, "window_blocks")
        if not 0.0 < churn <= 1.0:
            raise WorkloadError(f"churn must be in (0, 1], got {churn}")
        self.churn = float(churn)
        self._cursor = 0

    def _generate(self, n: int) -> np.ndarray:
        u = self._rng.random(n)
        fresh = u < self.churn
        cursors = self._cursor + np.cumsum(fresh.astype(np.int64))
        out = cursors.copy()
        reuse = ~fresh
        if reuse.any():
            v = (u[reuse] - self.churn) / (1.0 - self.churn)
            offsets = (v * self.window_blocks).astype(np.int64) + 1
            out[reuse] = np.maximum(cursors[reuse] - offsets, 0)
        self._cursor = int(cursors[-1]) if n else self._cursor
        return out

    def _restart(self) -> None:
        self._cursor = 0


class PhasedGenerator(TraceGenerator):
    """Concatenate sub-generators, each active for a fixed access budget.

    Used for the aim9-like microbenchmark whose true footprint steps up and
    down over time (Figures 2 and 5). Phases repeat cyclically.
    """

    def __init__(
        self,
        phases: Sequence[Tuple[TraceGenerator, int]],
        base_block: int = 0,
        seed: int = 0,
    ):
        super().__init__(base_block=base_block, seed=seed)
        if not phases:
            raise WorkloadError("PhasedGenerator needs at least one phase")
        for _, length in phases:
            require_positive(length, "phase length")
        self.phases = list(phases)
        self._phase_index = 0
        self._remaining = self.phases[0][1]

    @property
    def current_phase(self) -> int:
        """Index of the active phase (for test/figure instrumentation)."""
        return self._phase_index

    def _generate(self, n: int) -> np.ndarray:
        out: List[np.ndarray] = []
        needed = n
        while needed > 0:
            gen, _ = self.phases[self._phase_index]
            take = min(needed, self._remaining)
            out.append(gen.next_batch(take))
            needed -= take
            self._remaining -= take
            if self._remaining == 0:
                self._phase_index = (self._phase_index + 1) % len(self.phases)
                self._remaining = self.phases[self._phase_index][1]
        return out[0] if len(out) == 1 else np.concatenate(out)

    def _restart(self) -> None:
        for gen, _ in self.phases:
            gen.reset()
        self._phase_index = 0
        self._remaining = self.phases[0][1]


class MixtureGenerator(TraceGenerator):
    """Weighted interleaving of sub-generators in small chunks.

    Chunked (rather than per-access) interleaving keeps each component's
    short-range locality intact while still blending footprints.
    """

    CHUNK = 16

    def __init__(
        self,
        generators: Sequence[TraceGenerator],
        weights: Sequence[float],
        base_block: int = 0,
        seed: int = 0,
    ):
        super().__init__(base_block=base_block, seed=seed)
        if not generators or len(generators) != len(weights):
            raise WorkloadError("generators and weights must align and be non-empty")
        total = float(sum(weights))
        if total <= 0:
            raise WorkloadError("weights must sum to a positive value")
        self.generators = list(generators)
        self.weights = np.asarray(weights, dtype=np.float64) / total

    def _generate(self, n: int) -> np.ndarray:
        # One vectorised draw replaces a scalar rng.choice per chunk,
        # consuming the bit stream identically (choice with p is
        # searchsorted(cdf, random()) internally, and random(m) draws
        # the same doubles as m scalar calls) — traces are byte-for-byte
        # what the per-chunk loop produced. Consecutive chunks from the
        # same component merge into one next_batch call; every component
        # generator is batch-split invariant, so merging cannot change
        # its stream either.
        num_chunks = -(-n // self.CHUNK)
        cdf = np.cumsum(self.weights)
        cdf /= cdf[-1]
        which = cdf.searchsorted(self._rng.random(num_chunks), side="right")
        out: List[np.ndarray] = []
        remaining = n
        start = 0
        while start < num_chunks:
            end = start + 1
            while end < num_chunks and which[end] == which[start]:
                end += 1
            take = min((end - start) * self.CHUNK, remaining)
            out.append(self.generators[int(which[start])].next_batch(take))
            remaining -= take
            start = end
        return out[0] if len(out) == 1 else np.concatenate(out)

    def _restart(self) -> None:
        for gen in self.generators:
            gen.reset()


def generator_for_profile(
    profile: WorkloadProfile, base_block: int = 0, seed: int = 0
) -> TraceGenerator:
    """Instantiate the trace generator matching a profile's pattern.

    The profile's ``locality`` is the fraction of references served by the
    hot set for the skewed patterns.
    """
    ws = profile.working_set_blocks
    hot = profile.hot_set_blocks
    loc = profile.locality
    if profile.pattern == "stream":
        return StreamGenerator(ws, base_block=base_block, seed=seed)
    if profile.pattern == "strided":
        return StridedGenerator(ws, 1, base_block=base_block, seed=seed)
    if profile.pattern == "random":
        return RandomRegionGenerator(ws, base_block=base_block, seed=seed)
    if profile.pattern == "zipf":
        return HotColdGenerator(
            ws, hot, hot_fraction=loc, base_block=base_block, seed=seed
        )
    if profile.pattern == "pointer_chase":
        if hot >= ws:
            return PointerChaseGenerator(ws, base_block=base_block, seed=seed)
        # Chase within the hot set most of the time; occasionally touch the
        # cold remainder (mcf-style: reused core structures + sparse data).
        return MixtureGenerator(
            [
                PointerChaseGenerator(hot, base_block=0, seed=seed + 1),
                RandomRegionGenerator(ws, base_block=0, seed=seed + 2),
            ],
            weights=[loc, 1.0 - loc],
            base_block=base_block,
            seed=seed,
        )
    if profile.pattern == "mixed":
        return MixtureGenerator(
            [
                StridedGenerator(hot, 1, base_block=0, seed=seed + 1),
                RandomRegionGenerator(ws, base_block=0, seed=seed + 2),
            ],
            weights=[loc, 1.0 - loc],
            base_block=base_block,
            seed=seed,
        )
    raise WorkloadError(
        f"profile {profile.name!r} has unknown pattern {profile.pattern!r}"
    )
