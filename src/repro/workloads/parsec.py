"""Synthetic multithreaded profiles standing in for the PARSEC suite.

The paper (Sections 3.3.4, 5.1.3) runs PARSEC applications with four
threads each and reports modest improvements (max ≈10.1% for ferret),
attributing the gap to PARSEC's smaller, more compute-bound working sets
relative to SPEC 2006.

A :class:`MultithreadedProfile` describes one application: every thread
mixes references to a **process-shared region** (identical absolute
addresses across threads — this is what makes intra-process "interference"
really *sharing*, the pitfall Section 3.3.4's two-phase algorithm exists
for) with references to a **thread-private region**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import WorkloadError
from repro.utils.validation import require_positive
from repro.workloads.base import BLOCK_BYTES, TraceGenerator
from repro.workloads.patterns import (
    HotColdGenerator,
    MixtureGenerator,
    PointerChaseGenerator,
    RandomRegionGenerator,
    StreamGenerator,
)

__all__ = [
    "MultithreadedProfile",
    "PARSEC_PROFILES",
    "parsec_profile",
    "parsec_profile_names",
    "parsec_pool",
]


@dataclass(frozen=True)
class MultithreadedProfile:
    """Static description of a PARSEC-like multithreaded application.

    Parameters
    ----------
    name, category, description:
        Identification and provenance.
    threads:
        Thread count (the paper uses 4).
    shared_ws_kb:
        Size of the region all threads share.
    private_ws_kb:
        Size of each thread's private region.
    shared_fraction:
        Probability that a reference targets the shared region.
    accesses_per_kinstr:
        Per-thread L2 references per kilo-instruction.
    pattern:
        Locality archetype of both regions: ``'zipf'``, ``'random'``,
        ``'stream'`` or ``'pointer_chase'``.
    locality:
        Hot-fraction knob for the zipf pattern.
    mlp:
        Memory-level parallelism (see
        :class:`repro.workloads.base.WorkloadProfile`).
    """

    name: str
    category: str
    threads: int
    shared_ws_kb: int
    private_ws_kb: int
    shared_fraction: float
    accesses_per_kinstr: float
    pattern: str
    locality: float = 0.9
    mlp: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        require_positive(self.threads, "threads")
        require_positive(self.shared_ws_kb, "shared_ws_kb")
        require_positive(self.private_ws_kb, "private_ws_kb")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise WorkloadError("shared_fraction must be in [0, 1]")
        if self.accesses_per_kinstr <= 0:
            raise WorkloadError("accesses_per_kinstr must be positive")

    @property
    def shared_blocks(self) -> int:
        return max(1, self.shared_ws_kb * 1024 // BLOCK_BYTES)

    @property
    def private_blocks(self) -> int:
        return max(1, self.private_ws_kb * 1024 // BLOCK_BYTES)

    @property
    def footprint_blocks(self) -> int:
        """Total distinct blocks the whole process can touch."""
        return self.shared_blocks + self.threads * self.private_blocks

    def accesses_for_instructions(self, instructions: int) -> int:
        """Per-thread trace length for *instructions* executed."""
        return max(1, int(instructions * self.accesses_per_kinstr / 1000.0))

    def _region_generator(self, region_blocks: int, seed: int) -> TraceGenerator:
        if self.pattern == "random":
            return RandomRegionGenerator(region_blocks, seed=seed)
        if self.pattern == "stream":
            return StreamGenerator(region_blocks, seed=seed)
        if self.pattern == "pointer_chase":
            return PointerChaseGenerator(region_blocks, seed=seed)
        if self.pattern == "zipf":
            hot = max(1, int(region_blocks * 0.4))
            return HotColdGenerator(
                region_blocks, hot, hot_fraction=self.locality, seed=seed
            )
        raise WorkloadError(f"unknown pattern {self.pattern!r}")

    def make_thread_generator(
        self, thread_index: int, base_block: int = 0, seed: int = 0
    ) -> TraceGenerator:
        """Build thread *thread_index*'s trace generator.

        All threads place the shared region at ``base_block`` (identical
        absolute addresses) and their private region beyond it, disjoint
        per thread. The per-region seeds are keyed so the shared region's
        *pattern* is common while each thread walks it independently.
        """
        if not 0 <= thread_index < self.threads:
            raise WorkloadError(
                f"thread_index {thread_index} out of range for "
                f"{self.threads}-thread profile {self.name!r}"
            )
        shared = self._region_generator(self.shared_blocks, seed=seed * 131 + 7)
        private = self._region_generator(
            self.private_blocks, seed=seed * 131 + 17 + thread_index
        )
        # Offset the private region past the shared one, per thread.
        private.base_block = self.shared_blocks + thread_index * self.private_blocks
        return MixtureGenerator(
            [shared, private],
            weights=[self.shared_fraction, 1.0 - self.shared_fraction],
            base_block=base_block,
            seed=seed + 1000 + thread_index,
        )


def _m(**kwargs) -> MultithreadedProfile:
    kwargs.setdefault("threads", 4)
    return MultithreadedProfile(**kwargs)


#: Eight PARSEC-like applications (paper runs all 4-app combinations).
PARSEC_PROFILES: Dict[str, MultithreadedProfile] = {
    profile.name: profile
    for profile in [
        _m(
            name="ferret",
            category="cache_sensitive",
            shared_ws_kb=2048,
            private_ws_kb=768,
            shared_fraction=0.3,
            accesses_per_kinstr=12.0,
            pattern="pointer_chase",
            mlp=1.2,
            description="content-based image search pipeline; the paper's "
            "best PARSEC improver (~10.1%)",
        ),
        _m(
            name="canneal",
            category="bandwidth_bound",
            shared_ws_kb=8192,
            private_ws_kb=256,
            shared_fraction=0.8,
            accesses_per_kinstr=12.0,
            pattern="random",
            mlp=3.0,
            description="simulated annealing over a huge shared netlist; "
            "low locality",
        ),
        _m(
            name="streamcluster",
            category="streaming",
            shared_ws_kb=4096,
            private_ws_kb=128,
            shared_fraction=0.9,
            accesses_per_kinstr=15.0,
            pattern="stream",
            mlp=5.0,
            description="online clustering; streaming sweeps of shared points",
        ),
        _m(
            name="dedup",
            category="moderate",
            shared_ws_kb=1024,
            private_ws_kb=512,
            shared_fraction=0.4,
            accesses_per_kinstr=8.0,
            pattern="zipf",
            mlp=2.0,
            description="deduplication pipeline; hash-table reuse",
        ),
        _m(
            name="bodytrack",
            category="moderate",
            shared_ws_kb=512,
            private_ws_kb=256,
            shared_fraction=0.3,
            accesses_per_kinstr=4.0,
            pattern="zipf",
            mlp=1.5,
            description="body tracking; per-thread particle state",
        ),
        _m(
            name="x264",
            category="moderate",
            shared_ws_kb=1024,
            private_ws_kb=512,
            shared_fraction=0.5,
            accesses_per_kinstr=6.0,
            pattern="zipf",
            mlp=2.0,
            description="video encoding; shared reference frames",
        ),
        _m(
            name="blackscholes",
            category="compute_bound",
            shared_ws_kb=64,
            private_ws_kb=64,
            shared_fraction=0.1,
            accesses_per_kinstr=1.0,
            pattern="zipf",
            mlp=1.0,
            description="option pricing; tiny working set, compute-bound",
        ),
        _m(
            name="swaptions",
            category="compute_bound",
            shared_ws_kb=64,
            private_ws_kb=128,
            shared_fraction=0.05,
            accesses_per_kinstr=1.0,
            pattern="zipf",
            mlp=1.0,
            description="swaption pricing; Monte-Carlo, compute-bound",
        ),
    ]
}


def parsec_profile(name: str) -> MultithreadedProfile:
    """Look up a PARSEC-like profile by name."""
    try:
        return PARSEC_PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown PARSEC profile {name!r}; pool: {sorted(PARSEC_PROFILES)}"
        ) from None


def parsec_profile_names() -> List[str]:
    """Names of the PARSEC-like pool, in a stable order."""
    return sorted(PARSEC_PROFILES)


def parsec_pool() -> List[MultithreadedProfile]:
    """The full PARSEC-like pool as a list (stable order)."""
    return [PARSEC_PROFILES[n] for n in parsec_profile_names()]
