"""Trace-generator protocol and workload profile description.

A :class:`TraceGenerator` produces the L2-level reference stream of one
running entity as batches of **block (cache-line) addresses**. Generators
are stateful (the stream continues across batches), deterministic (seeded),
and restartable (:meth:`TraceGenerator.reset` replays the stream from the
beginning — used when a benchmark completes and is restarted, Section 4.2).

A :class:`WorkloadProfile` is the static description of a benchmark-like
workload: its working-set size, access pattern, memory intensity (L2
accesses per kilo-instruction) and a qualitative category. Profiles are the
substitution for SPEC/PARSEC binaries (see DESIGN.md): the scheduling
algorithms only ever observe the L2 reference stream, so a profile matching
a benchmark's footprint and locality class exercises the same code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.utils.validation import require_positive

__all__ = ["TraceGenerator", "WorkloadProfile", "BLOCK_BYTES"]

#: Cache-line size assumed when converting working-set bytes to blocks.
BLOCK_BYTES = 64


class TraceGenerator:
    """Stateful, deterministic block-address stream.

    Subclasses implement :meth:`_generate`; the base class handles the
    address-space base offset (so co-scheduled processes never share lines
    unless sharing is modelled explicitly) and restart bookkeeping.

    Parameters
    ----------
    base_block:
        Offset added to every produced block address — each process gets a
        disjoint slice of the block-address space, while cache-set conflicts
        still arise naturally from the low address bits.
    seed:
        Seed of the generator's private random stream.
    """

    def __init__(self, base_block: int = 0, seed: int = 0):
        if base_block < 0:
            raise WorkloadError(f"base_block must be >= 0, got {base_block}")
        self.base_block = int(base_block)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.blocks_generated = 0

    # -- subclass hook --------------------------------------------------
    def _generate(self, n: int) -> np.ndarray:
        """Produce *n* relative block addresses (before base offset)."""
        raise NotImplementedError

    def _restart(self) -> None:
        """Reset subclass position state (rng is handled by the base)."""

    # -- public API ------------------------------------------------------
    def next_batch(self, n: int) -> np.ndarray:
        """Return the next *n* absolute block addresses of the stream."""
        require_positive(n, "n")
        rel = self._generate(n)
        if len(rel) != n:
            raise WorkloadError(
                f"{type(self).__name__}._generate returned {len(rel)} "
                f"addresses, expected {n}"
            )
        self.blocks_generated += n
        if self.base_block:
            return rel + self.base_block
        return rel

    def reset(self) -> None:
        """Restart the stream from the beginning (deterministic replay)."""
        self._rng = np.random.default_rng(self.seed)
        self.blocks_generated = 0
        self._restart()


@dataclass(frozen=True)
class WorkloadProfile:
    """Static description of a benchmark-like workload.

    Parameters
    ----------
    name:
        Benchmark name (e.g. ``'mcf'``).
    category:
        Qualitative class used in analysis: ``'cache_sensitive'``,
        ``'compute_bound'``, ``'bandwidth_bound'``, ``'streaming'``,
        ``'moderate'``.
    working_set_kb:
        Total region the workload touches.
    hot_set_kb:
        Size of the frequently-reused portion (equals ``working_set_kb``
        for patterns without reuse skew).
    accesses_per_kinstr:
        L2 references per 1000 instructions — the memory intensity that
        converts between instruction counts and trace length.
    pattern:
        Generator family: ``'pointer_chase'``, ``'random'``, ``'zipf'``,
        ``'strided'``, ``'stream'``, ``'mixed'``.
    locality:
        Pattern-specific knob (zipf exponent / hot-fraction weighting).
    mlp:
        Memory-level parallelism: how many misses the workload keeps in
        flight. Dependent pointer chases serialise misses (mlp ≈ 1);
        streaming code with effective prefetching overlaps many (mlp ≈ 4-8).
        The timing model divides the miss penalty by this factor, which is
        what lets streaming workloads flood a shared cache faster than
        chase-bound ones — the asymmetry behind the paper's worst pair
        (mcf + libquantum, Section 2.3.2).
    description:
        One-line provenance note (what behaviour of the real benchmark this
        profile mimics).
    """

    name: str
    category: str
    working_set_kb: int
    hot_set_kb: int
    accesses_per_kinstr: float
    pattern: str
    locality: float = 1.0
    mlp: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        require_positive(self.working_set_kb, "working_set_kb")
        require_positive(self.hot_set_kb, "hot_set_kb")
        if self.hot_set_kb > self.working_set_kb:
            raise WorkloadError(
                f"{self.name}: hot_set_kb {self.hot_set_kb} exceeds "
                f"working_set_kb {self.working_set_kb}"
            )
        if self.accesses_per_kinstr <= 0:
            raise WorkloadError(
                f"{self.name}: accesses_per_kinstr must be positive"
            )
        if self.mlp < 1.0:
            raise WorkloadError(f"{self.name}: mlp must be >= 1.0")

    @property
    def working_set_blocks(self) -> int:
        """Working-set size in cache lines."""
        return max(1, self.working_set_kb * 1024 // BLOCK_BYTES)

    @property
    def hot_set_blocks(self) -> int:
        """Hot-set size in cache lines."""
        return max(1, self.hot_set_kb * 1024 // BLOCK_BYTES)

    def accesses_for_instructions(self, instructions: int) -> int:
        """Trace length corresponding to *instructions* executed."""
        return max(1, int(instructions * self.accesses_per_kinstr / 1000.0))

    def instructions_for_accesses(self, accesses: int) -> int:
        """Instructions corresponding to a trace of *accesses* references."""
        return max(1, int(accesses * 1000.0 / self.accesses_per_kinstr))

    def make_generator(self, base_block: int = 0, seed: int = 0) -> TraceGenerator:
        """Instantiate this profile's trace generator.

        Implemented in :mod:`repro.workloads.patterns` (imported lazily to
        avoid a cycle).
        """
        from repro.workloads.patterns import generator_for_profile

        return generator_for_profile(self, base_block=base_block, seed=seed)
