"""Seeded arrival traces for the online scheduling service.

The batch methodology simulates a *fixed* process set; the service
(:mod:`repro.service`) schedules a *churning* one. This module supplies
the churn: deterministic admit/retire/phase-change event streams over
the 12 SPEC-like profiles, generated from an explicit seed so a load
replay (``repro.service.replay``) is exactly repeatable.

Two arrival processes are provided:

* :func:`poisson_trace` — memoryless arrivals with exponential
  inter-arrival gaps, the classic open-system model.
* :func:`bursty_trace` — alternating admission bursts (many arrivals in
  tight succession) and calm drain periods, the adversarial shape for
  an incremental remapper because drift accumulates fastest inside a
  burst.

The live population performs a reflected random walk between
``min_live`` and ``max_live``: an admit below the floor bootstraps the
system, and the ceiling converts further arrivals into departures.
Event times are simulated seconds since trace start — they order and
pace a replay, they are never read from a wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.utils.rng import make_rng
from repro.workloads.spec import spec_profile_names

__all__ = [
    "EVENT_KINDS",
    "ArrivalEvent",
    "ArrivalTrace",
    "poisson_trace",
    "bursty_trace",
]

#: The event kinds an arrival trace may contain, in no particular order.
EVENT_KINDS: Tuple[str, ...] = ("admit", "retire", "phase_change")


@dataclass(frozen=True)
class ArrivalEvent:
    """One scheduling event in an arrival trace.

    ``time`` is simulated seconds since trace start (pacing only);
    ``pid`` identifies the process across its admit/phase/retire
    lifecycle; ``name`` is the workload profile the process runs —
    for a retire it records the profile being retired.
    """

    seq: int
    time: float
    kind: str
    pid: int
    name: str


@dataclass(frozen=True)
class ArrivalTrace:
    """A deterministic sequence of arrival events plus its provenance.

    ``kind`` names the generating process (``poisson`` / ``bursty``)
    and ``seed`` the root seed, so a report can state exactly which
    trace it replayed.
    """

    kind: str
    seed: int
    events: Tuple[ArrivalEvent, ...]

    def __len__(self) -> int:
        """Number of events in the trace."""
        return len(self.events)

    def __iter__(self) -> Iterator[ArrivalEvent]:
        """Iterate events in submission order."""
        return iter(self.events)

    def final_population(self) -> Dict[int, str]:
        """pid -> profile name of every process still live at trace end."""
        live: Dict[int, str] = {}
        for event in self.events:
            if event.kind == "retire":
                live.pop(event.pid, None)
            else:
                live[event.pid] = event.name
        return live

    def peak_population(self) -> int:
        """Largest number of simultaneously live processes."""
        live = 0
        peak = 0
        for event in self.events:
            if event.kind == "admit":
                live += 1
                peak = max(peak, live)
            elif event.kind == "retire":
                live -= 1
        return peak


def _validate(
    num_events: int,
    pool: Sequence[str],
    min_live: int,
    max_live: int,
    phase_fraction: float,
) -> None:
    """Reject impossible trace parameters with actionable messages."""
    if num_events < 1:
        raise WorkloadError(f"num_events must be >= 1, got {num_events}")
    if not pool:
        raise WorkloadError("profile pool must not be empty")
    if len(set(pool)) != len(pool):
        raise WorkloadError("profile pool contains duplicates")
    if min_live < 1:
        raise WorkloadError(f"min_live must be >= 1, got {min_live}")
    if max_live < min_live:
        raise WorkloadError(
            f"max_live ({max_live}) must be >= min_live ({min_live})"
        )
    if not 0.0 <= phase_fraction < 1.0:
        raise WorkloadError(
            f"phase_fraction must be in [0, 1), got {phase_fraction}"
        )
    if phase_fraction > 0.0 and len(pool) < 2:
        raise WorkloadError(
            "phase changes need at least two profiles to switch between"
        )


class _TraceBuilder:
    """Shared state machine for both arrival processes.

    Holds the live-process table and emits admit/retire/phase-change
    events, enforcing the ``min_live``/``max_live`` reflecting barriers
    so callers only choose *intent* — the builder converts an illegal
    intent into the nearest legal one (an admit over the ceiling
    becomes a retire, a retire under the floor becomes an admit).
    """

    def __init__(
        self,
        rng,
        pool: Sequence[str],
        min_live: int,
        max_live: int,
    ) -> None:
        self.rng = rng
        self.pool = list(pool)
        self.min_live = min_live
        self.max_live = max_live
        self.live: Dict[int, str] = {}
        self.events: List[ArrivalEvent] = []
        self._next_pid = 1
        self._time = 0.0

    def advance(self, mean_gap: float) -> None:
        """Advance simulated time by one exponential inter-arrival gap."""
        self._time += float(self.rng.exponential(mean_gap))

    def _pick_live(self) -> int:
        """A uniformly random live pid (sorted order keeps this stable)."""
        pids = sorted(self.live)
        return pids[int(self.rng.integers(len(pids)))]

    def _emit(self, kind: str, pid: int, name: str) -> None:
        self.events.append(
            ArrivalEvent(
                seq=len(self.events),
                time=self._time,
                kind=kind,
                pid=pid,
                name=name,
            )
        )

    def admit(self) -> None:
        """Admit a fresh process running a uniformly drawn profile."""
        pid = self._next_pid
        self._next_pid += 1
        name = self.pool[int(self.rng.integers(len(self.pool)))]
        self.live[pid] = name
        self._emit("admit", pid, name)

    def retire(self) -> None:
        """Retire a uniformly drawn live process."""
        pid = self._pick_live()
        name = self.live.pop(pid)
        self._emit("retire", pid, name)

    def phase_change(self) -> None:
        """Switch a live process to a different uniformly drawn profile."""
        pid = self._pick_live()
        candidates = [n for n in self.pool if n != self.live[pid]]
        name = candidates[int(self.rng.integers(len(candidates)))]
        self.live[pid] = name
        self._emit("phase_change", pid, name)

    def step(self, kind: str) -> None:
        """Emit one event of intent *kind*, clamped to the barriers."""
        population = len(self.live)
        if population < self.min_live:
            self.admit()
        elif kind == "admit" and population >= self.max_live:
            self.retire()
        elif kind == "admit":
            self.admit()
        elif kind == "phase_change":
            self.phase_change()
        else:
            self.retire()


def _intent(rng, p_admit: float, p_phase: float) -> str:
    """Draw one event intent from the (admit, phase, retire) simplex."""
    u = float(rng.random())
    if u < p_admit:
        return "admit"
    if u < p_admit + p_phase:
        return "phase_change"
    return "retire"


def poisson_trace(
    num_events: int,
    seed: int,
    *,
    pool: Optional[Sequence[str]] = None,
    mean_interarrival: float = 1.0,
    min_live: int = 2,
    max_live: int = 12,
    phase_fraction: float = 0.1,
) -> ArrivalTrace:
    """A memoryless arrival trace: exponential gaps, balanced churn.

    Each event is an admit or retire with equal probability (so the
    live population random-walks between the barriers), except that a
    ``phase_fraction`` slice of events becomes a phase change of one
    live process instead. Defaults draw from the full 12-profile
    SPEC-like pool.
    """
    names = list(pool) if pool is not None else list(spec_profile_names())
    _validate(num_events, names, min_live, max_live, phase_fraction)
    if mean_interarrival <= 0:
        raise WorkloadError(
            f"mean_interarrival must be > 0, got {mean_interarrival}"
        )
    builder = _TraceBuilder(make_rng(seed), names, min_live, max_live)
    remaining_churn = 1.0 - phase_fraction
    while len(builder.events) < num_events:
        builder.advance(mean_interarrival)
        builder.step(
            _intent(builder.rng, remaining_churn / 2.0, phase_fraction)
        )
    return ArrivalTrace(
        kind="poisson", seed=seed, events=tuple(builder.events)
    )


def bursty_trace(
    num_events: int,
    seed: int,
    *,
    pool: Optional[Sequence[str]] = None,
    burst_length: int = 8,
    burst_interarrival: float = 0.05,
    calm_interarrival: float = 2.0,
    min_live: int = 2,
    max_live: int = 12,
    phase_fraction: float = 0.1,
) -> ArrivalTrace:
    """An ON/OFF arrival trace: admission bursts, then drain periods.

    During a burst (geometric length around ``burst_length``) events
    arrive with tiny exponential gaps and are strongly admit-biased;
    between bursts the system drains with large gaps and a retire bias.
    This is the stress shape for incremental remapping — drift
    accumulates fastest when many arrivals land between full remaps.
    """
    names = list(pool) if pool is not None else list(spec_profile_names())
    _validate(num_events, names, min_live, max_live, phase_fraction)
    if burst_length < 1:
        raise WorkloadError(f"burst_length must be >= 1, got {burst_length}")
    if burst_interarrival <= 0 or calm_interarrival <= 0:
        raise WorkloadError("inter-arrival means must be > 0")
    builder = _TraceBuilder(make_rng(seed), names, min_live, max_live)
    rng = builder.rng
    bursting = True
    remaining = int(rng.geometric(1.0 / burst_length))
    while len(builder.events) < num_events:
        if remaining == 0:
            bursting = not bursting
            remaining = int(rng.geometric(1.0 / burst_length))
        remaining -= 1
        if bursting:
            builder.advance(burst_interarrival)
            builder.step(_intent(rng, 0.8, phase_fraction / 2.0))
        else:
            builder.advance(calm_interarrival)
            builder.step(_intent(rng, 0.2, phase_fraction))
    return ArrivalTrace(kind="bursty", seed=seed, events=tuple(builder.events))
