"""Synthetic workload substrate: trace generators and the SPEC/PARSEC-like
benchmark profile pools (see DESIGN.md for the substitution rationale)."""

from repro.workloads.aim9 import (
    aim9_phases,
    make_aim9_generator,
    true_footprint_schedule,
)
from repro.workloads.arrivals import (
    EVENT_KINDS,
    ArrivalEvent,
    ArrivalTrace,
    bursty_trace,
    poisson_trace,
)
from repro.workloads.base import BLOCK_BYTES, TraceGenerator, WorkloadProfile
from repro.workloads.parsec import (
    PARSEC_PROFILES,
    MultithreadedProfile,
    parsec_pool,
    parsec_profile,
    parsec_profile_names,
)
from repro.workloads.patterns import (
    HotColdGenerator,
    MixtureGenerator,
    PhasedGenerator,
    PointerChaseGenerator,
    RandomRegionGenerator,
    StreamGenerator,
    StridedGenerator,
    generator_for_profile,
)
from repro.workloads.spec import (
    SPEC_PROFILES,
    spec_pool,
    spec_profile,
    spec_profile_names,
)

__all__ = [
    "EVENT_KINDS",
    "ArrivalEvent",
    "ArrivalTrace",
    "bursty_trace",
    "poisson_trace",
    "aim9_phases",
    "make_aim9_generator",
    "true_footprint_schedule",
    "BLOCK_BYTES",
    "TraceGenerator",
    "WorkloadProfile",
    "PARSEC_PROFILES",
    "MultithreadedProfile",
    "parsec_pool",
    "parsec_profile",
    "parsec_profile_names",
    "HotColdGenerator",
    "MixtureGenerator",
    "PhasedGenerator",
    "PointerChaseGenerator",
    "RandomRegionGenerator",
    "StreamGenerator",
    "StridedGenerator",
    "generator_for_profile",
    "SPEC_PROFILES",
    "spec_pool",
    "spec_profile",
    "spec_profile_names",
]
