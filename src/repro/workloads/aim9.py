"""The aim9-like phased microbenchmark used by Figures 2 and 5.

The paper's motivating time-series plots use the AIM9 disk benchmark: a
workload that streams fresh (disk-buffer) data continuously while its live
working set steps up and down over time. Against it the paper compares
(a) event-based performance counters — which fail to track the footprint —
and (b) the CBF occupancy weight — which tracks it closely.

Each phase here is a :class:`~repro.workloads.patterns.SlidingWindowGenerator`
with an independent *(live-window, churn)* pair: the true footprint is the
window size, while the miss rate is governed by the churn rate — by design
the two series are uncorrelated across phases, which is precisely the
Figure 2 phenomenon (miss counters do not reveal the working set).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.utils.validation import require_positive
from repro.workloads.base import BLOCK_BYTES
from repro.workloads.patterns import PhasedGenerator, SlidingWindowGenerator

__all__ = ["aim9_phases", "make_aim9_generator", "true_footprint_schedule"]

#: (live_window_kb, churn, accesses) phases. Window sizes and churn rates
#: are deliberately decorrelated — small windows with heavy churn, large
#: windows with light churn, and vice versa — so the miss rate carries no
#: information about the footprint. Churn stays >= 0.3 so the measurement
#: cache turns over within a phase (stale lines leave, letting the CBF's
#: counter-zeroing track footprint *drops* as well as growth).
_DEFAULT_PHASES: Tuple[Tuple[int, float, int], ...] = (
    (32, 0.55, 50_000),
    (768, 0.50, 50_000),
    (128, 0.65, 50_000),
    (512, 0.30, 50_000),
    (64, 0.40, 50_000),
    (384, 0.60, 50_000),
    (96, 0.35, 50_000),
)

#: Block-address spacing between phases (each streams its own fresh data).
_PHASE_STRIDE_BLOCKS = 1 << 18


def aim9_phases() -> List[Tuple[int, float, int]]:
    """The default (live_window_kb, churn, accesses) schedule."""
    return list(_DEFAULT_PHASES)


def make_aim9_generator(
    base_block: int = 0,
    seed: int = 0,
    phases: List[Tuple[int, float, int]] = None,
) -> PhasedGenerator:
    """Build the phased sliding-window generator.

    Each phase streams its own disjoint address slice (fresh disk data),
    so cache contents from earlier phases go stale and get evicted by the
    ongoing churn — letting the CBF's counter-zeroing track the live
    footprint downward as well as upward.
    """
    schedule = phases if phases is not None else aim9_phases()
    subgens = []
    for i, (window_kb, churn, accesses) in enumerate(schedule):
        require_positive(window_kb, "window_kb")
        require_positive(accesses, "accesses")
        blocks = max(1, window_kb * 1024 // BLOCK_BYTES)
        gen = SlidingWindowGenerator(
            window_blocks=blocks,
            churn=churn,
            base_block=i * _PHASE_STRIDE_BLOCKS,
            seed=seed * 97 + i,
        )
        subgens.append((gen, accesses))
    return PhasedGenerator(subgens, base_block=base_block, seed=seed)


def true_footprint_schedule(
    phases: List[Tuple[int, float, int]] = None,
) -> List[Tuple[int, int]]:
    """Ground-truth live working set per phase.

    Returns ``(accesses_in_phase, footprint_blocks)`` pairs aligned with
    the generator's phases, for plotting/asserting against measured
    occupancy.
    """
    schedule = phases if phases is not None else aim9_phases()
    return [
        (accesses, max(1, window_kb * 1024 // BLOCK_BYTES))
        for window_kb, churn, accesses in schedule
    ]
