"""RPR1xx — determinism rules for the simulation core.

The paper's two-phase methodology regenerates every table from seeded
simulation: phase 1 collects signatures, phase 2 replays the chosen
schedule against modelled timing. Content-addressed result caching
(``repro.jobs.keys``) and the chaos suite's byte-identical pinning both
assume a run is a pure function of its spec — so any wall-clock read,
unseeded RNG draw, OS-entropy source, or hash-randomisation-sensitive
``hash()`` inside the core packages silently invalidates results.

These rules are scoped to :data:`~repro.lint.context.SIM_CORE_PACKAGES`
only. ``repro.jobs`` (timeout accounting needs real wall time) and
``repro.telemetry`` (span timestamps) are allowlisted *by package*;
telemetry-only timing inside the core (the simulator's guarded
``PhaseProfile`` reads) is waived per line with ``# repro: noqa[RPR101]``
— and can never be baselined.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.context import ModuleContext
from repro.lint.registry import SCOPE_SIM_CORE, register
from repro.lint.violation import Violation

__all__ = ["CLOCK_CALLS", "ENTROPY_CALLS"]

#: Dotted call targets that read a clock.
CLOCK_CALLS: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
)

#: Dotted call targets that read OS entropy or host-unique state.
ENTROPY_CALLS: Tuple[str, ...] = (
    "os.urandom",
    "os.getrandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
    "secrets.choice",
    "uuid.uuid1",
    "uuid.uuid4",
)

#: ``numpy.random`` constructors that are fine *when seeded*.
_NUMPY_SEEDABLE: Tuple[str, ...] = (
    "default_rng",
    "Generator",
    "SeedSequence",
    "RandomState",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
)


def _violation(
    module: ModuleContext, node: ast.AST, code: str, message: str
) -> Violation:
    lineno = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0) + 1
    return Violation(
        path=module.path,
        line=lineno,
        col=col,
        code=code,
        message=message,
        source=module.source_line(lineno),
    )


def _is_unseeded(node: ast.Call) -> bool:
    """No arguments, or an explicit literal ``None`` seed."""
    if not node.args and not node.keywords:
        return True
    if node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for keyword in node.keywords:
        if keyword.arg == "seed" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is None
    return False


@register(
    "RPR101",
    "wall-clock-in-sim-core",
    "wall-clock read inside the simulation core",
    scope=SCOPE_SIM_CORE,
    rationale=(
        "Simulated time is cycle-driven; a real clock read that leaks into "
        "results breaks bit-reproducibility across runs and machines. "
        "Wall-clock is legal in repro.jobs and repro.telemetry by package "
        "allowlist."
    ),
)
def check_wall_clock(module: ModuleContext) -> Iterator[Violation]:
    """Flag clock reads (time.*, datetime.now) in the core."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = module.resolve_call(node)
        if resolved in CLOCK_CALLS:
            yield _violation(
                module,
                node,
                "RPR101",
                f"wall-clock call {resolved}() in simulation core; results "
                "must be a pure function of the seed (derive time from "
                "simulated cycles, or move the read behind the telemetry "
                "guard and waive it per line)",
            )


@register(
    "RPR102",
    "unseeded-rng",
    "unseeded or global-state RNG inside the simulation core",
    scope=SCOPE_SIM_CORE,
    rationale=(
        "All stochastic components must draw from an explicitly seeded "
        "generator (repro.utils.rng); the module-level random/numpy.random "
        "APIs use hidden global state and fresh OS entropy."
    ),
)
def check_unseeded_rng(module: ModuleContext) -> Iterator[Violation]:
    """Flag global-state or unseeded RNG construction/draws."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = module.resolve_call(node)
        if resolved is None:
            continue
        if resolved == "random.Random" or resolved == "random.SystemRandom":
            if resolved == "random.SystemRandom" or _is_unseeded(node):
                yield _violation(
                    module, node, "RPR102",
                    f"{resolved}() without an explicit seed in simulation "
                    "core; pass a seed derived from the run spec",
                )
        elif resolved.startswith("random."):
            yield _violation(
                module, node, "RPR102",
                f"module-level {resolved}() uses the global RNG; draw from "
                "a seeded generator (repro.utils.rng.make_rng) instead",
            )
        elif resolved.startswith("numpy.random."):
            tail = resolved[len("numpy.random."):]
            if tail in _NUMPY_SEEDABLE:
                if _is_unseeded(node):
                    yield _violation(
                        module, node, "RPR102",
                        f"{resolved}() without a seed draws OS entropy; "
                        "pass a seed derived from the run spec",
                    )
            else:
                yield _violation(
                    module, node, "RPR102",
                    f"legacy global-state API {resolved}(); use an "
                    "explicitly seeded numpy.random.Generator",
                )


@register(
    "RPR103",
    "os-entropy-in-sim-core",
    "OS entropy / host-unique identifier inside the simulation core",
    scope=SCOPE_SIM_CORE,
    rationale=(
        "os.urandom, secrets and uuid1/uuid4 produce values that differ "
        "every run, so any influence on results or cache keys destroys "
        "reproducibility."
    ),
)
def check_entropy(module: ModuleContext) -> Iterator[Violation]:
    """Flag os.urandom/secrets/uuid entropy sources."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = module.resolve_call(node)
        if resolved in ENTROPY_CALLS:
            yield _violation(
                module, node, "RPR103",
                f"entropy source {resolved}() in simulation core; derive "
                "identifiers from the seed (repro.utils.rng.stable_seed)",
            )


@register(
    "RPR104",
    "ordering-sensitive-hash",
    "builtin hash() inside the simulation core",
    scope=SCOPE_SIM_CORE,
    rationale=(
        "str/bytes hash() is randomised per process (PYTHONHASHSEED), so "
        "anything ordered or bucketed by it differs across workers. Use "
        "repro.core.hashes or hashlib digests."
    ),
)
def check_builtin_hash(module: ModuleContext) -> Iterator[Violation]:
    """Flag calls to the randomised builtin ``hash()``."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if module.resolve_call(node) == "hash":
            yield _violation(
                module, node, "RPR104",
                "builtin hash() is randomised per process "
                "(PYTHONHASHSEED); use a stable digest "
                "(repro.utils.rng.stable_seed or hashlib)",
            )
