"""RPR4xx — telemetry hygiene rules.

The telemetry contract (docs/observability.md): disabled runs are
byte-identical to an uninstrumented build, and the disabled fast path
is one ``current()`` read plus one ``is None`` branch. Two patterns
break that contract syntactically:

* **Guard bypass** (RPR401) — chaining straight off the context,
  ``current().tracer.begin(...)``, crashes with ``AttributeError`` the
  moment telemetry is disabled, i.e. in every default run. Correct
  sites bind ``tel = current()`` once and branch on ``tel is None``.
* **Context installation from the core** (RPR402) — ``configure()`` /
  ``deactivate()`` mutate process-wide state; only entry points (the
  CLI, the worker bootstrap, tests) may install contexts. A simulation
  component that self-configures would silently enable telemetry for
  every other component in the process.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.context import ModuleContext
from repro.lint.registry import SCOPE_NON_TELEMETRY, SCOPE_SIM_CORE, register
from repro.lint.violation import Violation

__all__ = ["TELEMETRY_CURRENT", "TELEMETRY_INSTALLERS"]

#: Dotted origins of the telemetry guard accessor.
TELEMETRY_CURRENT: Tuple[str, ...] = (
    "repro.telemetry.current",
    "repro.telemetry.context.current",
)

#: Dotted origins of the process-wide context installers.
TELEMETRY_INSTALLERS: Tuple[str, ...] = (
    "repro.telemetry.configure",
    "repro.telemetry.context.configure",
    "repro.telemetry.deactivate",
    "repro.telemetry.context.deactivate",
    "repro.telemetry.init_from_env",
    "repro.telemetry.context.init_from_env",
)


def _violation(
    module: ModuleContext, node: ast.AST, code: str, message: str
) -> Violation:
    lineno = getattr(node, "lineno", 1)
    return Violation(
        path=module.path,
        line=lineno,
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
        source=module.source_line(lineno),
    )


@register(
    "RPR401",
    "telemetry-guard-bypass",
    "attribute access chained directly off current()",
    scope=SCOPE_NON_TELEMETRY,
    rationale=(
        "current() returns None whenever telemetry is disabled — the "
        "default — so current().tracer... is an AttributeError waiting in "
        "every production run. Bind tel = current() and branch on "
        "'tel is None' (the single-guard fast path)."
    ),
)
def check_guard_bypass(module: ModuleContext) -> Iterator[Violation]:
    """Flag ``current().attr`` chains that skip the None guard."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Attribute):
            continue
        base = node.value
        if not isinstance(base, ast.Call):
            continue
        resolved = module.resolve_call(base)
        if resolved in TELEMETRY_CURRENT:
            yield _violation(
                module, node, "RPR401",
                "attribute chained directly off telemetry current() "
                "crashes when telemetry is disabled (it returns None); "
                "bind 'tel = current()' and guard on 'tel is None'",
            )


@register(
    "RPR402",
    "telemetry-install-in-sim-core",
    "telemetry context installed from inside the simulation core",
    scope=SCOPE_SIM_CORE,
    rationale=(
        "configure()/deactivate()/init_from_env() mutate process-wide "
        "state; only entry points (CLI, worker bootstrap, tests) may "
        "install contexts, or a core component would flip telemetry on "
        "for the whole process mid-run."
    ),
)
def check_install_in_sim_core(module: ModuleContext) -> Iterator[Violation]:
    """Flag configure()/deactivate()/init_from_env() in the core."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = module.resolve_call(node)
        if resolved in TELEMETRY_INSTALLERS:
            tail = resolved.rsplit(".", 1)[1]
            yield _violation(
                module, node, "RPR402",
                f"telemetry {tail}() inside the simulation core installs "
                "process-wide state; only entry points (CLI, worker "
                "bootstrap, tests) may manage contexts",
            )
