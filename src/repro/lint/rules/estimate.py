"""RPR503 — exact-simulator construction stays behind the dispatch seam.

The estimation backends exist to be cheaper than exact simulation but
interchangeable with it, and that interchangeability hangs on a single
seam: :func:`repro.estimate.dispatch.make_exact_simulator` is the one
place inside :mod:`repro.estimate` that may construct the exact
:class:`~repro.perf.simulator.MulticoreSimulator`. Every other estimate
module (the sampled backend's representative intervals, the validation
harness) obtains the engine through that seam, so swapping the exact
implementation — a compiled kernel, an instrumented variant, a fake in
tests — is a one-line change the whole package inherits. A direct
construction elsewhere silently forks the seam: that call site keeps
the old engine, its telemetry, and its defaults while the rest of the
package moves on.

The rule is scoped to :mod:`repro.estimate`; the rest of the codebase
constructs the simulator directly by design (the runner, the service,
the experiment drivers own their engines).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.registry import SCOPE_ESTIMATE, register
from repro.lint.violation import Violation

__all__ = ["DISPATCH_MODULE", "SIMULATOR_CLASS"]

#: The one estimate module allowed to construct the exact simulator.
DISPATCH_MODULE = "repro.estimate.dispatch"

#: The exact engine's class name (matched on any resolved import path).
SIMULATOR_CLASS = "MulticoreSimulator"


def _constructs_simulator(call: ast.Call, module: ModuleContext) -> bool:
    """Whether *call* constructs the exact simulator under any spelling."""
    resolved = module.resolve_call(call)
    if resolved is None:
        return False
    return resolved == SIMULATOR_CLASS or resolved.endswith(
        "." + SIMULATOR_CLASS
    )


@register(
    "RPR503",
    "estimate-direct-simulator-construction",
    "MulticoreSimulator constructed inside repro.estimate outside the "
    "dispatch seam",
    scope=SCOPE_ESTIMATE,
    rationale=(
        "repro.estimate.dispatch.make_exact_simulator is the single "
        "sanctioned construction point of the exact engine inside the "
        "estimation package; it is what lets a different exact "
        "implementation (compiled, instrumented, faked in tests) drop "
        "in behind every backend at once. A direct MulticoreSimulator "
        "call elsewhere forks that seam: the call site silently keeps "
        "the old engine and its defaults. Import make_exact_simulator "
        "from repro.estimate.dispatch instead."
    ),
)
def check_estimate_direct_simulator(
    module: ModuleContext,
) -> Iterator[Violation]:
    """Flag exact-simulator constructions outside the dispatch module."""
    if module.module == DISPATCH_MODULE:
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and _constructs_simulator(node, module):
            yield Violation(
                path=module.path,
                line=node.lineno,
                col=node.col_offset + 1,
                code="RPR503",
                message=(
                    "MulticoreSimulator constructed directly inside "
                    "repro.estimate; go through repro.estimate.dispatch."
                    "make_exact_simulator so the exact engine stays "
                    "swappable behind one seam"
                ),
                source=module.source_line(node.lineno),
            )
