"""RPR3xx — worker-safety (spawn-pool picklability) rules.

The orchestrator's worker pool uses the ``spawn`` start method, so
everything that crosses the process boundary — run specs, the function
a pool maps, their payloads — must pickle. Lambdas, closures and
locally defined classes do not: they fail at submission time at best,
or (worse) only when a crashed worker is replaced mid-sweep and the
respawn re-pickles the batch. These rules catch the pattern at review
time instead.

The check is call-site-shaped: an argument to a known worker-crossing
API (``Orchestrator.run_spec``/``run_specs``, ``WorkerPool.map``,
``RunSpec``/``make_run_spec`` construction, executor ``submit``) that
is a ``lambda`` (RPR301) or a name bound to a function/class defined
inside the enclosing function (RPR302). Parent-side observer callbacks
(``on_event=``) never cross the boundary and are exempt.

RPR303 guards the *retry* side of worker safety: a computed
``time.sleep`` inside a loop is hand-rolled backoff — unbounded,
unjittered, and invisible to the backoff metrics — and must go through
:class:`repro.supervise.retry.RetryPolicy` instead. Fixed-interval
polling (``time.sleep(0.05)`` with a literal argument) stays legal, and
the rule is silent inside ``repro.supervise`` itself, where the policy's
own sleep lives.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.context import ModuleContext
from repro.lint.registry import SCOPE_ALL, register
from repro.lint.violation import Violation

__all__ = ["WORKER_API_METHODS", "WORKER_API_CALLABLES", "OBSERVER_KEYWORDS"]

#: Attribute-call names that hand their arguments to worker processes.
WORKER_API_METHODS: Tuple[str, ...] = ("run_spec", "run_specs", "submit")

#: ``.map(...)`` crosses the boundary only on pool-like receivers; the
#: receiver's name must contain one of these fragments.
_POOL_RECEIVER_FRAGMENTS: Tuple[str, ...] = ("pool", "executor")

#: Plain-call names whose arguments must be picklable spec data.
WORKER_API_CALLABLES: Tuple[str, ...] = (
    "RunSpec",
    "make_run_spec",
    "repro.jobs.spec.RunSpec",
    "repro.jobs.spec.make_run_spec",
    "repro.jobs.RunSpec",
    "repro.jobs.make_run_spec",
)

#: Keyword arguments consumed on the parent side (never pickled).
OBSERVER_KEYWORDS: Tuple[str, ...] = ("on_event",)


def _violation(
    module: ModuleContext, node: ast.AST, code: str, message: str
) -> Violation:
    lineno = getattr(node, "lineno", 1)
    return Violation(
        path=module.path,
        line=lineno,
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
        source=module.source_line(lineno),
    )


def _is_worker_api(node: ast.Call, module: ModuleContext) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in WORKER_API_METHODS:
            return True
        if func.attr == "map":
            receiver = func.value
            name = ""
            if isinstance(receiver, ast.Name):
                name = receiver.id
            elif isinstance(receiver, ast.Attribute):
                name = receiver.attr
            return any(
                fragment in name.lower()
                for fragment in _POOL_RECEIVER_FRAGMENTS
            )
        return False
    resolved = module.resolve_call(node)
    return resolved in WORKER_API_CALLABLES


def _crossing_args(node: ast.Call) -> List[ast.expr]:
    """The argument expressions that will be pickled."""
    args: List[ast.expr] = list(node.args)
    for keyword in node.keywords:
        if keyword.arg in OBSERVER_KEYWORDS:
            continue
        args.append(keyword.value)
    return args


def _pickled_values(expr: ast.expr) -> Iterator[ast.expr]:
    """The sub-expressions of *expr* whose **values** cross the boundary.

    Containers and comprehensions are transparent (their elements are
    pickled); everything else is opaque — in ``measure(m)`` the parent
    process calls ``measure`` and only its *result* is pickled, so the
    local name ``measure`` is fine there. This keeps the rules precise:
    a lambda/local name is flagged only where the object itself would
    be handed to a worker.
    """
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        for element in expr.elts:
            yield from _pickled_values(element)
    elif isinstance(expr, ast.Dict):
        for value in expr.values:
            if value is not None:
                yield from _pickled_values(value)
    elif isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        yield from _pickled_values(expr.elt)
    elif isinstance(expr, ast.DictComp):
        yield from _pickled_values(expr.value)
    elif isinstance(expr, ast.Starred):
        yield from _pickled_values(expr.value)
    elif isinstance(expr, ast.IfExp):
        yield from _pickled_values(expr.body)
        yield from _pickled_values(expr.orelse)
    elif isinstance(expr, ast.BinOp):
        # list concatenation: [a] + [b]
        yield from _pickled_values(expr.left)
        yield from _pickled_values(expr.right)
    else:
        yield expr


def _local_definitions(function: ast.AST) -> Set[str]:
    """Names of functions/classes defined inside *function*."""
    names: Set[str] = set()
    for child in ast.walk(function):
        if child is function:
            continue
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            names.add(child.name)
    return names


@register(
    "RPR301",
    "lambda-into-worker-api",
    "lambda passed into a worker-crossing API",
    scope=SCOPE_ALL,
    rationale=(
        "Lambdas are unpicklable under the spawn start method; the pool "
        "raises at submission — or during a mid-sweep worker respawn. "
        "Use a module-level function."
    ),
)
def check_lambda_into_worker(module: ModuleContext) -> Iterator[Violation]:
    """Flag lambdas whose value would be pickled to a worker."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or not _is_worker_api(node, module):
            continue
        for arg in _crossing_args(node):
            for sub in _pickled_values(arg):
                if isinstance(sub, ast.Lambda):
                    yield _violation(
                        module, sub, "RPR301",
                        "lambda passed into a worker-crossing API is "
                        "unpicklable under the spawn pool; use a "
                        "module-level function",
                    )


@register(
    "RPR302",
    "local-callable-into-worker-api",
    "locally defined function/class passed into a worker-crossing API",
    scope=SCOPE_ALL,
    rationale=(
        "Functions and classes defined inside another function pickle by "
        "qualified name and fail to resolve in a spawned worker; define "
        "them at module level."
    ),
)
def check_local_callable_into_worker(
    module: ModuleContext,
) -> Iterator[Violation]:
    """Flag enclosing-scope callables handed to worker APIs."""
    functions = [
        node
        for node in ast.walk(module.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    # Nested scopes are walked by their enclosing function too; dedupe
    # so one offending argument yields one violation.
    reported: Set[Tuple[int, int]] = set()
    for function in functions:
        local_names = _local_definitions(function)
        if not local_names:
            continue
        for node in ast.walk(function):
            if not isinstance(node, ast.Call) or not _is_worker_api(
                node, module
            ):
                continue
            for arg in _crossing_args(node):
                for sub in _pickled_values(arg):
                    if (
                        isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                        and sub.id in local_names
                    ):
                        spot = (sub.lineno, sub.col_offset)
                        if spot in reported:
                            continue
                        reported.add(spot)
                        yield _violation(
                            module, sub, "RPR302",
                            f"locally defined callable {sub.id!r} passed "
                            "into a worker-crossing API cannot be "
                            "unpickled in a spawned worker; define it at "
                            "module level",
                        )


@register(
    "RPR303",
    "bare-sleep-retry-loop",
    "computed time.sleep backoff inside a retry loop",
    scope=SCOPE_ALL,
    rationale=(
        "A computed time.sleep inside a loop is hand-rolled retry "
        "backoff: unbounded, unjittered, and invisible to the "
        "pool_backoff_seconds metrics. Route the delay through "
        "repro.supervise.retry.RetryPolicy (RetrySession.sleep), which "
        "caps it and draws deterministic jitter from the seeded RNG."
    ),
)
def check_bare_sleep_retry_loop(module: ModuleContext) -> Iterator[Violation]:
    """Flag computed ``time.sleep`` calls inside ``while``/``for`` loops.

    A *literal* sleep in a loop is fixed-interval polling and stays
    legal; a computed one is almost always a grown-by-hand backoff
    schedule. ``repro.supervise`` is exempt — ``RetrySession.sleep`` is
    where the one sanctioned computed sleep lives.
    """
    if module.in_package("repro.supervise"):
        return
    reported: Set[Tuple[int, int]] = set()
    for loop in ast.walk(module.tree):
        if not isinstance(loop, (ast.While, ast.For, ast.AsyncFor)):
            continue
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            if module.resolve_call(node) != "time.sleep":
                continue
            if not node.args or isinstance(node.args[0], ast.Constant):
                continue
            # Nested loops are walked by their enclosing loop too;
            # dedupe so one call yields one violation.
            spot = (node.lineno, node.col_offset)
            if spot in reported:
                continue
            reported.add(spot)
            yield _violation(
                module, node, "RPR303",
                "computed time.sleep inside a loop is hand-rolled retry "
                "backoff; use repro.supervise.retry.RetryPolicy "
                "(RetrySession.sleep) for capped, seeded delays",
            )