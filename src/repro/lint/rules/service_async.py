"""RPR5xx — service responsiveness rules.

The scheduling daemon (:mod:`repro.service`) is a single-threaded
asyncio event loop: one blocking call inside a coroutine stalls *every*
connection, the admission queue, and the heartbeat ticks — the daemon
looks hung to its own watchdog while merely sleeping. RPR501 therefore
bans known blocking calls (``time.sleep``, synchronous file I/O,
subprocess spawns) lexically inside ``async def`` bodies under
``repro.service``.

The sanctioned escape hatch is structural, not a waiver: blocking work
belongs in a *synchronous* helper dispatched via
``loop.run_in_executor`` (or ``asyncio.to_thread``). Calls inside a
nested ``def`` are accordingly not flagged — the nested function is its
own (synchronous) execution context.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.lint.context import ModuleContext
from repro.lint.registry import SCOPE_SERVICE, register
from repro.lint.violation import Violation

__all__ = ["BLOCKING_CALLS"]

#: Dotted call targets that block the event loop.
BLOCKING_CALLS: Tuple[str, ...] = (
    "time.sleep",
    "open",
    "io.open",
    "os.system",
    "os.popen",
    "os.waitpid",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
)


def _violation(
    module: ModuleContext, node: ast.AST, code: str, message: str
) -> Violation:
    lineno = getattr(node, "lineno", 1)
    return Violation(
        path=module.path,
        line=lineno,
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
        source=module.source_line(lineno),
    )


def _async_body_calls(function: ast.AsyncFunctionDef) -> List[ast.Call]:
    """Calls executed directly by the coroutine *function*.

    Nested ``def``/``async def``/``class`` bodies are skipped: a nested
    sync function runs wherever it is *called* (typically an executor —
    the sanctioned pattern), and a nested coroutine is analysed as its
    own scope by the outer walk.
    """
    calls: List[ast.Call] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            visit(child)

    visit(function)
    return calls


@register(
    "RPR501",
    "blocking-call-in-async",
    "blocking call inside an async def in the service package",
    scope=SCOPE_SERVICE,
    rationale=(
        "The daemon is one event loop: a time.sleep or synchronous file/"
        "process/network call inside a coroutine stalls every connection "
        "and suppresses heartbeat ticks, making a loaded daemon "
        "indistinguishable from a wedged one. Use asyncio.sleep, or move "
        "the blocking work into a sync helper dispatched through "
        "loop.run_in_executor / asyncio.to_thread."
    ),
)
def check_blocking_in_async(module: ModuleContext) -> Iterator[Violation]:
    """Flag blocking calls lexically inside coroutine bodies."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        for call in _async_body_calls(node):
            resolved = module.resolve_call(call)
            if resolved in BLOCKING_CALLS:
                yield _violation(
                    module,
                    call,
                    "RPR501",
                    f"blocking call {resolved}() inside 'async def "
                    f"{node.name}' stalls the daemon's event loop; use the "
                    "asyncio equivalent or run it in an executor",
                )
