"""RPR2xx — durability and robustness rules.

The robustness layer's contract (docs/robustness.md): a crash may cost
recomputation but must never corrupt a result, and a fault must never
be swallowed invisibly. Two syntactic patterns carry most of that
contract, so they are enforced here:

* **Publish-after-fsync** — ``os.replace`` is the commit point of every
  atomic-write protocol in the tree (result cache, exporters). Without
  an ``os.fsync`` before it, a power loss after the rename can surface
  a committed-but-empty file — the exact torn state the protocol
  exists to rule out.
* **No silent swallowing** — a bare ``except:`` (RPR202) or a broad
  ``except Exception:`` whose body neither re-raises, nor logs, nor
  even reads the exception (RPR203) turns faults into silence. Sink
  isolation (event sinks, telemetry exporters) is allowed to drop
  exceptions *by design* and is allowlisted by module.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.context import ModuleContext
from repro.lint.registry import SCOPE_ALL, register
from repro.lint.violation import Violation

__all__ = ["SINK_ISOLATION_MODULES"]

#: Modules whose job is to isolate misbehaving plug-ins: a raising sink
#: must be dropped, not propagated, so RPR203 does not apply. (They log
#: anyway today, but the allowlist keeps the *contract* explicit.)
SINK_ISOLATION_MODULES: Tuple[str, ...] = (
    "repro.jobs.events",
    "repro.telemetry.exporters",
)

#: Broad exception type names for RPR203.
_BROAD = ("Exception", "BaseException")

#: Call names/attributes that count as "the handler reported the fault".
_LOG_ATTRS = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical",
     "log", "print"}
)


def _violation(
    module: ModuleContext, node: ast.AST, code: str, message: str
) -> Violation:
    lineno = getattr(node, "lineno", 1)
    return Violation(
        path=module.path,
        line=lineno,
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
        source=module.source_line(lineno),
    )


def _direct_calls(
    function: ast.AST, module: ModuleContext
) -> Tuple[List[int], List[int]]:
    """``(fsync_lines, replace_lines)`` called directly by *function*.

    Nested ``def``/``class`` bodies are skipped — they are analysed as
    their own scopes, so an outer fsync never excuses an inner replace
    (or vice versa).
    """
    fsyncs: List[int] = []
    replaces: List[int] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.Call):
                resolved = module.resolve_call(child)
                if resolved == "os.fsync":
                    fsyncs.append(child.lineno)
                elif resolved == "os.replace":
                    replaces.append(child.lineno)
            visit(child)

    visit(function)
    return fsyncs, replaces


@register(
    "RPR201",
    "replace-without-fsync",
    "os.replace without a preceding os.fsync in the same function",
    scope=SCOPE_ALL,
    rationale=(
        "os.replace publishes a file atomically, but only fsync-then-"
        "replace makes the publish durable: without the fsync a power "
        "loss can expose a committed-but-empty entry."
    ),
)
def check_replace_without_fsync(module: ModuleContext) -> Iterator[Violation]:
    """Flag os.replace publishes with no earlier os.fsync in scope."""
    scopes = [
        node
        for node in ast.walk(module.tree)
        if isinstance(
            node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)
        )
    ]
    for scope in scopes:
        fsync_lines, replace_lines = _direct_calls(scope, module)
        first_fsync = min(fsync_lines) if fsync_lines else None
        for replace_line in replace_lines:
            if first_fsync is None or first_fsync > replace_line:
                yield Violation(
                    path=module.path,
                    line=replace_line,
                    col=1,
                    code="RPR201",
                    message=(
                        "os.replace publishes without a preceding os.fsync "
                        "in this function; a crash can expose a torn or "
                        "empty committed file (write-tmp, flush, fsync, "
                        "then replace)"
                    ),
                    source=module.source_line(replace_line),
                )


def _handler_swallows(
    handler: ast.ExceptHandler, module: ModuleContext
) -> bool:
    """True when the handler neither re-raises, logs, nor reads ``exc``."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return False
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _LOG_ATTRS:
                return False
            if isinstance(func, ast.Name) and func.id in _LOG_ATTRS:
                return False
        if (
            handler.name is not None
            and isinstance(node, ast.Name)
            and node.id == handler.name
            and isinstance(node.ctx, ast.Load)
        ):
            return False
    return True


def _broad_names(handler: ast.ExceptHandler) -> Optional[str]:
    """The broad type name this handler catches, if any."""
    nodes: List[ast.expr] = []
    if handler.type is None:
        return None
    if isinstance(handler.type, ast.Tuple):
        nodes = list(handler.type.elts)
    else:
        nodes = [handler.type]
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return node.id
    return None


@register(
    "RPR202",
    "bare-except",
    "bare 'except:' clause",
    scope=SCOPE_ALL,
    rationale=(
        "A bare except catches KeyboardInterrupt and SystemExit too, "
        "making sweeps unkillable and hiding worker shutdown; name the "
        "exception types (BaseException, if truly everything, and re-raise)."
    ),
)
def check_bare_except(module: ModuleContext) -> Iterator[Violation]:
    """Flag ``except:`` with no exception type."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield _violation(
                module, node, "RPR202",
                "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                "catch explicit exception types",
            )


@register(
    "RPR203",
    "swallowed-broad-except",
    "broad except that swallows without logging or re-raising",
    scope=SCOPE_ALL,
    rationale=(
        "except Exception with a body that neither re-raises, logs, nor "
        "reads the exception converts faults into silence — the opposite "
        "of the graceful-degradation contract, which demands every "
        "degradation leave a structured trace."
    ),
)
def check_swallowed_broad_except(
    module: ModuleContext,
) -> Iterator[Violation]:
    """Flag broad handlers that drop the fault invisibly."""
    if module.module in SINK_ISOLATION_MODULES:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = _broad_names(node)
        if broad is None:
            continue
        if _handler_swallows(node, module):
            yield _violation(
                module, node, "RPR203",
                f"'except {broad}' swallows the fault silently (no raise, "
                "no log, exception unread); log it or narrow the type",
            )
