"""RPR502 — durable-state publish discipline for the durability layer.

RPR201 already enforces fsync-before-``os.replace`` everywhere, but it
resolves exactly one spelling of the commit point. The crash-consistent
scheduler state (``repro.durable`` WAL/snapshots, ``repro.service``
recovery) must not be publishable through a *different* rename that
dodges the audit: ``os.rename``, ``shutil.move``, or the pathlib
method forms ``Path.rename(target)`` / ``Path.replace(target)``. A
rename made durable is a rename preceded by ``os.fsync`` of the data
it publishes — otherwise a power loss between write and rename can
commit an empty snapshot or a truncated WAL, which the recovery path
would then faithfully replay as truth.

The rule is scoped to the durable-state packages rather than global
because the method-form detection is heuristic (any one-argument
``.rename(...)``/``.replace(...)`` call); outside the packages that
persist scheduler state the false-positive cost would outweigh the
audit value. ``str.replace(old, new)`` takes two arguments and is
never matched.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.context import ModuleContext
from repro.lint.registry import SCOPE_DURABLE, register
from repro.lint.violation import Violation

__all__ = ["RENAME_CALLS"]

#: Dotted call targets that publish a file by renaming it.
RENAME_CALLS: Tuple[str, ...] = ("os.rename", "shutil.move")

#: Method names whose one-argument form is a pathlib-style publish.
_RENAME_METHODS = frozenset({"rename", "replace"})


def _publish_label(call: ast.Call, module: ModuleContext) -> Optional[str]:
    """Display label if *call* is a rename-family publish, else ``None``.

    ``os.replace`` itself is excluded — that spelling is RPR201's
    territory and flagging it twice would demand paired ``noqa``s.
    """
    resolved = module.resolve_call(call)
    if resolved in RENAME_CALLS:
        return resolved
    if resolved is not None:
        return None
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _RENAME_METHODS
        and len(call.args) == 1
        and not call.keywords
    ):
        return f".{func.attr}"
    return None


def _scope_calls(
    scope: ast.AST, module: ModuleContext
) -> Tuple[List[int], List[Tuple[int, str]]]:
    """``(fsync_lines, rename_publishes)`` called directly by *scope*.

    Nested ``def``/``class`` bodies are skipped — they are analysed as
    their own scopes, so an outer fsync never excuses an inner rename.
    """
    fsyncs: List[int] = []
    renames: List[Tuple[int, str]] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.Call):
                if module.resolve_call(child) == "os.fsync":
                    fsyncs.append(child.lineno)
                else:
                    label = _publish_label(child, module)
                    if label is not None:
                        renames.append((child.lineno, label))
            visit(child)

    visit(scope)
    return fsyncs, renames


@register(
    "RPR502",
    "durable-rename-without-fsync",
    "rename-family publish of durable state without a preceding os.fsync",
    scope=SCOPE_DURABLE,
    rationale=(
        "The WAL and snapshot files are the daemon's crash-recovery "
        "truth. os.rename, shutil.move, and the pathlib rename/replace "
        "methods publish a file just like os.replace but dodge the "
        "RPR201 audit; without an os.fsync of the written data first, "
        "a power loss can commit an empty or truncated state file that "
        "recovery then replays as reality. Write to a temp file, "
        "flush, fsync, then publish."
    ),
)
def check_durable_rename_without_fsync(
    module: ModuleContext,
) -> Iterator[Violation]:
    """Flag rename-family publishes with no earlier os.fsync in scope."""
    scopes = [
        node
        for node in ast.walk(module.tree)
        if isinstance(
            node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)
        )
    ]
    for scope in scopes:
        fsync_lines, renames = _scope_calls(scope, module)
        first_fsync = min(fsync_lines) if fsync_lines else None
        for line, label in renames:
            if first_fsync is None or first_fsync > line:
                yield Violation(
                    path=module.path,
                    line=line,
                    col=1,
                    code="RPR502",
                    message=(
                        f"{label}() publishes durable state without a "
                        "preceding os.fsync in this function; a crash can "
                        "commit an empty or truncated state file that "
                        "recovery replays as truth (write-tmp, flush, "
                        "fsync, then rename)"
                    ),
                    source=module.source_line(line),
                )
