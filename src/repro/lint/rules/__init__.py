"""Rule modules — importing this package registers every rule.

The registry (:mod:`repro.lint.registry`) imports this package lazily
the first time rules are listed, so adding a rule file means adding it
to the import list below and nothing else.
"""

from __future__ import annotations

from repro.lint.rules import (
    determinism,
    durability,
    durable_publish,
    estimate,
    service_async,
    telemetry,
    worker_safety,
)

__all__ = [
    "determinism",
    "durability",
    "durable_publish",
    "estimate",
    "service_async",
    "telemetry",
    "worker_safety",
]
