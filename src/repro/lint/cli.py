"""Command-line front end: ``repro-cli lint`` and ``scripts/run_lint.py``.

Both entries share :func:`add_arguments` / :func:`run` so the flag
surface cannot drift. Exit codes follow the repo convention: ``0``
clean, ``1`` violations found, ``2`` configuration/usage error.

Baseline semantics:

* ``--baseline`` filters known violations through the committed
  baseline file (``lint-baseline.json`` by default) — CI mode.
* ``--update-baseline`` rewrites that file to grandfather everything
  currently found. Determinism (RPR1xx) violations refuse to baseline:
  the simulation core must be fixed or ``noqa``-ed with justification,
  never grandfathered.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import LintResult, lint_paths, load_modules
from repro.lint.registry import (
    FlowRule,
    Rule,
    all_flow_rules,
    all_rules,
)
from repro.lint.report import render_json, render_text
from repro.lint.violation import Violation

__all__ = ["add_arguments", "run", "main"]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flag surface to *parser* (shared by entries)."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: src tests scripts)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="filter known violations through the committed baseline file",
    )
    parser.add_argument(
        "--baseline-file", metavar="FILE", default=DEFAULT_BASELINE_NAME,
        help=f"baseline file path (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file to grandfather current violations "
        "(refuses RPR1xx: determinism must be fixed, not grandfathered)",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the whole-program flow passes (RPR6xx) over the "
        "same parse — call-graph construction plus interprocedural "
        "determinism/async-safety/durability checks",
    )
    parser.add_argument(
        "--callgraph-out", metavar="FILE", default=None,
        help="write the call graph as versioned JSON (implies --flow)",
    )
    parser.add_argument(
        "--callgraph-dot", metavar="FILE", default=None,
        help="write the call graph as Graphviz DOT (implies --flow)",
    )


def _default_paths() -> List[str]:
    return [p for p in ("src", "tests", "scripts") if Path(p).exists()]


def _selected_rules(
    select: Optional[str],
) -> Tuple[List["Rule"], List["FlowRule"]]:
    """Resolve ``--select`` against both rule families.

    A code may live in either registry; unknown codes are a usage error
    (exit 2). With no selection, everything in both families is active
    (flow rules still only *run* under ``--flow``).
    """
    rules = all_rules()
    flow_rules = all_flow_rules()
    if select is None:
        return rules, flow_rules
    wanted = {code.strip() for code in select.split(",") if code.strip()}
    known = {rule.code for rule in rules} | {r.code for r in flow_rules}
    unknown = wanted - known
    if unknown:
        raise ConfigurationError(
            f"unknown rule code(s) in --select: {sorted(unknown)}"
        )
    return (
        [rule for rule in rules if rule.code in wanted],
        [rule for rule in flow_rules if rule.code in wanted],
    )


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name} [{rule.scope}]")
        lines.append(f"    {rule.summary}")
    for flow_rule in all_flow_rules():
        lines.append(
            f"{flow_rule.code}  {flow_rule.name} [{flow_rule.scope}, flow]"
        )
        lines.append(f"    {flow_rule.summary}")
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    """Execute one lint invocation from parsed *args*."""
    if args.list_rules:
        print(_list_rules())
        return 0
    paths: Sequence[str] = args.paths or _default_paths()
    if not paths:
        print("error: no paths given and no src/tests/scripts directory here")
        return 2
    flow_requested = bool(
        getattr(args, "flow", False)
        or getattr(args, "callgraph_out", None)
        or getattr(args, "callgraph_dot", None)
    )
    flow_result = None
    try:
        rules, flow_rules = _selected_rules(args.select)
        # Parse once: the same loaded modules feed the per-file rules
        # and (under --flow) the whole-program passes and exporters.
        modules = load_modules(paths)
        result = lint_paths(paths, rules=rules, modules=modules)
        if flow_requested:
            from repro.flow import Program, analyze, run_flow
            from repro.flow.export import callgraph_dot, callgraph_json

            program = Program(modules)
            analysis = analyze(program)
            flow_result = run_flow(
                program, rules=flow_rules, analysis=analysis
            )
            result = LintResult(
                sorted(result.violations + flow_result.violations),
                result.files_scanned,
            )
            if args.callgraph_out:
                Path(args.callgraph_out).write_text(
                    callgraph_json(analysis), encoding="utf-8"
                )
            if args.callgraph_dot:
                Path(args.callgraph_dot).write_text(
                    callgraph_dot(analysis), encoding="utf-8"
                )
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2

    if args.update_baseline:
        try:
            baseline = Baseline.from_violations(result.violations)
        except ConfigurationError as exc:
            print(f"error: {exc}")
            return 2
        baseline.dump(args.baseline_file)
        print(
            f"baseline: {len(baseline)} violation(s) grandfathered -> "
            f"{args.baseline_file}"
        )
        return 0

    baselined: List[Violation] = []
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline_file)
        except ConfigurationError as exc:
            print(f"error: {exc}")
            return 2
        fresh, baselined = baseline.split(result.violations)
        result = LintResult(fresh, result.files_scanned)

    if args.format == "json":
        print(render_json(result, baselined))
    else:
        print(render_text(result, baselined))
        if flow_result is not None:
            stats = flow_result.stats
            print(
                f"flow: {stats['modules']} modules, "
                f"{stats['functions']} functions, "
                f"{stats['call_edges']} call edges, "
                f"{stats['unresolved_calls']} unresolved calls, "
                f"{stats['findings']} finding(s)"
            )
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter: determinism, durability, "
        "worker-safety, telemetry hygiene (docs/static-analysis.md)",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    import sys

    sys.exit(main())
