"""Command-line front end: ``repro-cli lint`` and ``scripts/run_lint.py``.

Both entries share :func:`add_arguments` / :func:`run` so the flag
surface cannot drift. Exit codes follow the repo convention: ``0``
clean, ``1`` violations found, ``2`` configuration/usage error.

Baseline semantics:

* ``--baseline`` filters known violations through the committed
  baseline file (``lint-baseline.json`` by default) — CI mode.
* ``--update-baseline`` rewrites that file to grandfather everything
  currently found. Determinism (RPR1xx) violations refuse to baseline:
  the simulation core must be fixed or ``noqa``-ed with justification,
  never grandfathered.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import LintResult, lint_paths
from repro.lint.registry import Rule, all_rules
from repro.lint.report import render_json, render_text
from repro.lint.violation import Violation

__all__ = ["add_arguments", "run", "main"]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flag surface to *parser* (shared by entries)."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: src tests scripts)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="filter known violations through the committed baseline file",
    )
    parser.add_argument(
        "--baseline-file", metavar="FILE", default=DEFAULT_BASELINE_NAME,
        help=f"baseline file path (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file to grandfather current violations "
        "(refuses RPR1xx: determinism must be fixed, not grandfathered)",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _default_paths() -> List[str]:
    return [p for p in ("src", "tests", "scripts") if Path(p).exists()]


def _selected_rules(select: Optional[str]) -> List["Rule"]:
    rules = all_rules()
    if select is None:
        return rules
    wanted = {code.strip() for code in select.split(",") if code.strip()}
    known = {rule.code for rule in rules}
    unknown = wanted - known
    if unknown:
        raise ConfigurationError(
            f"unknown rule code(s) in --select: {sorted(unknown)}"
        )
    return [rule for rule in rules if rule.code in wanted]


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name} [{rule.scope}]")
        lines.append(f"    {rule.summary}")
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    """Execute one lint invocation from parsed *args*."""
    if args.list_rules:
        print(_list_rules())
        return 0
    paths: Sequence[str] = args.paths or _default_paths()
    if not paths:
        print("error: no paths given and no src/tests/scripts directory here")
        return 2
    try:
        rules = _selected_rules(args.select)
        result = lint_paths(paths, rules=rules)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2

    if args.update_baseline:
        try:
            baseline = Baseline.from_violations(result.violations)
        except ConfigurationError as exc:
            print(f"error: {exc}")
            return 2
        baseline.dump(args.baseline_file)
        print(
            f"baseline: {len(baseline)} violation(s) grandfathered -> "
            f"{args.baseline_file}"
        )
        return 0

    baselined: List[Violation] = []
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline_file)
        except ConfigurationError as exc:
            print(f"error: {exc}")
            return 2
        fresh, baselined = baseline.split(result.violations)
        result = LintResult(fresh, result.files_scanned)

    if args.format == "json":
        print(render_json(result, baselined))
    else:
        print(render_text(result, baselined))
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter: determinism, durability, "
        "worker-safety, telemetry hygiene (docs/static-analysis.md)",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    import sys

    sys.exit(main())
