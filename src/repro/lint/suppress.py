"""``# repro: noqa[...]`` suppression comments — line and file scoped.

Two forms, both requiring explicit rule codes so a suppression always
names what it waives (a bare blanket ``noqa`` hides future regressions
of *other* rules on the same line and is rejected):

* ``# repro: noqa[RPR101]`` — suppresses the listed codes on that line
  only. Multiple codes separate with commas: ``noqa[RPR101,RPR104]``.
* ``# repro: noqa-file[RPR202]`` — anywhere in the file, suppresses the
  listed codes for the whole file.

Policy (docs/static-analysis.md): a suppression must sit next to a
comment explaining *why* the invariant does not apply at that site —
the linter cannot check prose, but review can, and the explicit-code
requirement at least pins what is being waived.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.violation import Violation

__all__ = ["SuppressionIndex", "MALFORMED_CODE"]

#: Reported when a ``repro: noqa`` comment has no ``[CODES]`` list —
#: blanket suppressions are a policy violation themselves.
MALFORMED_CODE = "RPR002"

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?"
    r"(?:\[(?P<codes>[A-Z0-9,\s]+)\])?",
)


def _comment_tokens(source: str) -> Iterator[Tuple[int, int, str]]:
    """``(line, col, text)`` of every real comment token in *source*.

    Tokenising (rather than scanning raw lines) means a docstring that
    merely *mentions* ``# repro: noqa[...]`` — as this module's own
    documentation does — is not mistaken for a suppression.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


class SuppressionIndex:
    """Parsed suppression comments of one module."""

    def __init__(self, path: str, lines: List[str], source: str = "") -> None:
        self.path = path
        self.line_codes: Dict[int, Set[str]] = {}
        self.file_codes: Set[str] = set()
        self.malformed: List[Violation] = []
        text = source if source else "\n".join(lines) + "\n"
        for lineno, col, comment in _comment_tokens(text):
            for match in _NOQA.finditer(comment):
                raw = match.group("codes")
                codes = (
                    {c.strip() for c in raw.split(",") if c.strip()}
                    if raw
                    else set()
                )
                if not codes:
                    self.malformed.append(
                        Violation(
                            path=path,
                            line=lineno,
                            col=col + match.start() + 1,
                            code=MALFORMED_CODE,
                            message=(
                                "blanket 'repro: noqa' without rule codes; "
                                "name what you suppress: repro: noqa[RPRxxx]"
                            ),
                            source=comment.strip(),
                        )
                    )
                    continue
                if match.group("file"):
                    self.file_codes |= codes
                else:
                    self.line_codes.setdefault(lineno, set()).update(codes)

    def covers(self, code: str, line: int) -> bool:
        """Whether *code* is waived at *line* (module- or line-scoped).

        The flow analyser calls this directly: whole-program findings
        (and the primitive call sites that seed them) are waived by the
        same ``noqa``/``noqa-file`` comments as per-file findings, with
        ``noqa-file`` acting as the module-level suppression for
        generated or fixture-heavy modules.
        """
        if code in self.file_codes:
            return True
        return code in self.line_codes.get(line, set())

    def is_suppressed(self, violation: Violation) -> bool:
        """Whether *violation* is waived by a line or file suppression."""
        return self.covers(violation.code, violation.line)
