"""Committed baseline of grandfathered violations.

A baseline lets the linter gate *new* violations while known old ones
are paid down incrementally — the standard ratchet. Entries are keyed by
``(path, code, stripped-source-line)`` with a count, **not** by line
number, so edits elsewhere in a file do not churn the baseline; moving
or duplicating the offending construct does.

Policy, enforced here rather than by convention: **determinism rules
(RPR1xx) cannot be baselined.** The simulation core must be fully clean
— a wall-clock or unseeded-RNG leak silently invalidates every
regenerated table, so "we'll fix it later" is not an available state.
:meth:`Baseline.from_violations` raises on any RPR1xx entry.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.errors import ConfigurationError
from repro.lint.violation import Violation

__all__ = ["BASELINE_VERSION", "DEFAULT_BASELINE_NAME", "Baseline"]

BASELINE_VERSION = 1

#: Conventional baseline filename at the repository root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

#: Code prefixes that may never be grandfathered. RPR601 is the flow
#: analyser's *interprocedural* determinism rule — the same "the core
#: must actually be clean" policy as RPR1xx, so it ratchets the same
#: way: the baseline stays empty for it, always.
_UNBASELINABLE_PREFIXES: Tuple[str, ...] = ("RPR1", "RPR601")

_GroupKey = Tuple[str, str, str]  # (path, code, fingerprint source line)


def _key(violation: Violation) -> _GroupKey:
    return (violation.path, violation.code, violation.source)


class Baseline:
    """A multiset of grandfathered violation fingerprints."""

    def __init__(self, counts: Dict[_GroupKey, int]) -> None:
        self.counts: Dict[_GroupKey, int] = dict(counts)

    # -- construction ------------------------------------------------

    @classmethod
    def empty(cls) -> "Baseline":
        """A baseline that grandfathers nothing."""
        return cls({})

    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        """Build a baseline grandfathering exactly *violations*.

        Raises :class:`~repro.errors.ConfigurationError` if any has an
        unbaselinable (determinism) code — fix or ``noqa`` those with an
        explanatory comment instead.
        """
        counts: Counter = Counter()
        forbidden: List[Violation] = []
        for violation in violations:
            if violation.code.startswith(_UNBASELINABLE_PREFIXES):
                forbidden.append(violation)
            counts[_key(violation)] += 1
        if forbidden:
            listing = "\n  ".join(v.format() for v in sorted(forbidden))
            raise ConfigurationError(
                "determinism violations (RPR1xx/RPR601) cannot be baselined "
                "— the simulation core must be clean; fix them or add a "
                f"'# repro: noqa[CODE]' with justification:\n  {listing}"
            )
        return cls(dict(counts))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file_path = Path(path)
        try:
            payload = json.loads(file_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls.empty()
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"unreadable lint baseline {file_path}: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("version") != BASELINE_VERSION
            or not isinstance(payload.get("entries"), list)
        ):
            raise ConfigurationError(
                f"lint baseline {file_path} has an unrecognised schema"
            )
        counts: Dict[_GroupKey, int] = {}
        for entry in payload["entries"]:
            try:
                key = (str(entry["path"]), str(entry["code"]),
                       str(entry["source"]))
                count = int(entry.get("count", 1))
            except (TypeError, KeyError) as exc:
                raise ConfigurationError(
                    f"malformed entry in lint baseline {file_path}: {entry!r}"
                ) from exc
            counts[key] = counts.get(key, 0) + count
        return cls(counts)

    # -- persistence -------------------------------------------------

    def dump(self, path: Union[str, Path]) -> None:
        """Write the baseline as deterministic, diff-friendly JSON."""
        entries = [
            {"path": key[0], "code": key[1], "source": key[2], "count": count}
            for key, count in sorted(self.counts.items())
        ]
        payload = {"version": BASELINE_VERSION, "entries": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # -- filtering ---------------------------------------------------

    def split(
        self, violations: Iterable[Violation]
    ) -> Tuple[List[Violation], List[Violation]]:
        """Partition *violations* into ``(new, baselined)``.

        Within one fingerprint group the earliest occurrences (by line)
        consume the baseline budget; any surplus beyond the recorded
        count is new. Deterministic: the same input always partitions
        the same way.
        """
        budget = dict(self.counts)
        new: List[Violation] = []
        old: List[Violation] = []
        for violation in sorted(violations):
            key = _key(violation)
            remaining = budget.get(key, 0)
            if remaining > 0:
                budget[key] = remaining - 1
                old.append(violation)
            else:
                new.append(violation)
        return new, old

    def codes(self) -> Tuple[str, ...]:
        """Sorted distinct rule codes present in the baseline."""
        return tuple(sorted({code for (_, code, _) in self.counts}))

    def __len__(self) -> int:
        return sum(self.counts.values())
