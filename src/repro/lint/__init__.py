"""repro.lint — AST-based invariant linter for this repository.

The reproduction's credibility rests on invariants that used to be
enforced only by convention; this package encodes them as a static-
analysis pass (the contract catalogue lives in
``docs/static-analysis.md``):

* **RPR1xx determinism** — no wall-clock, unseeded RNG, OS entropy or
  randomised ``hash()`` inside the simulation core packages.
* **RPR2xx durability/robustness** — fsync-before-``os.replace``
  publishes; no bare or silently swallowed broad excepts.
* **RPR3xx worker-safety** — nothing unpicklable handed to the spawn
  pool (lambdas, closures, local classes).
* **RPR4xx telemetry hygiene** — the single-guard ``current() is None``
  fast path is never bypassed; only entry points install contexts.

Run it as ``repro-cli lint`` or ``python scripts/run_lint.py``.
Suppress a waived finding with ``# repro: noqa[CODE]`` (line) or
``# repro: noqa-file[CODE]`` (file); grandfathered violations live in
``lint-baseline.json`` — except determinism findings, which can never
be baselined.
"""

from __future__ import annotations

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.context import SIM_CORE_PACKAGES, ModuleContext
from repro.lint.engine import (
    PARSE_ERROR_CODE,
    LintResult,
    lint_paths,
    lint_source,
)
from repro.lint.registry import Rule, all_rules, get_rule, rule_codes
from repro.lint.violation import Violation

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "PARSE_ERROR_CODE",
    "SIM_CORE_PACKAGES",
    "Baseline",
    "LintResult",
    "ModuleContext",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "rule_codes",
]
