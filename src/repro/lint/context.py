"""Per-module analysis context shared by every rule.

A :class:`ModuleContext` wraps one parsed source file with the services
rules need and should not each reimplement:

* **Name resolution** — a module-wide alias map built from ``import`` /
  ``from … import`` statements lets rules ask "what dotted name does
  this call target?" (:meth:`ModuleContext.resolve_call`). ``import
  numpy as np`` + ``np.random.default_rng(...)`` resolves to
  ``numpy.random.default_rng``; ``from time import perf_counter`` +
  ``perf_counter()`` resolves to ``time.perf_counter``. Resolution is
  intentionally *module-syntactic*: it does not chase assignments or
  runtime values, which keeps rules predictable and fast.
* **Package classification** — the module's dotted name (derived from
  its ``src/`` layout path, or passed explicitly by tests) and the
  :data:`SIM_CORE_PACKAGES` policy list, so scoped rules know whether
  they apply without hard-coding paths.
* **Source access** — raw lines for violation fingerprints.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["SIM_CORE_PACKAGES", "ModuleContext", "module_name_for_path"]

#: Packages whose results must be bit-reproducible from seeds — the
#: paper's two-phase methodology regenerates every table from these, so
#: the determinism rules (RPR1xx) apply here and only here. Wall-clock
#: and OS entropy stay legal elsewhere (``repro.jobs`` measures real
#: wall time for timeouts; ``repro.telemetry`` timestamps spans) — that
#: allowlist is expressed by this package list, not by ``noqa``.
SIM_CORE_PACKAGES: Tuple[str, ...] = (
    "repro.core",
    "repro.cache",
    "repro.perf",
    "repro.sched",
    "repro.alloc",
    "repro.virt",
    "repro.trace",
    "repro.workloads",
    "repro.utils",
    "repro.estimate",
    "repro.adversary",
)


def module_name_for_path(path: Union[str, Path]) -> Optional[str]:
    """Derive a dotted module name from a ``src/``-layout file path.

    ``.../src/repro/perf/simulator.py`` → ``repro.perf.simulator``;
    ``__init__.py`` maps to its package. Paths outside a ``src/`` tree
    (tests, scripts, fixtures) return ``None`` — they belong to no
    package and only package-agnostic rules apply to them.
    """
    parts = Path(path).parts
    try:
        anchor = len(parts) - 1 - parts[::-1].index("src")
    except ValueError:
        return None
    rel = parts[anchor + 1:]
    if not rel or not rel[-1].endswith(".py"):
        return None
    pieces: List[str] = list(rel[:-1])
    stem = rel[-1][: -len(".py")]
    if stem != "__init__":
        pieces.append(stem)
    return ".".join(pieces) if pieces else None


class ModuleContext:
    """One parsed module plus the name/package services rules consume.

    Parameters
    ----------
    path:
        Display path used in violations (kept as given, posix-style).
    source:
        Full module source text.
    module:
        Dotted module name; defaults to deriving it from *path* via
        :func:`module_name_for_path`. Tests pass explicit names to lint
        fixture snippets *as if* they lived in a given package.
    """

    def __init__(
        self,
        path: Union[str, Path],
        source: str,
        module: Optional[str] = None,
    ) -> None:
        self.path = Path(path).as_posix()
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=self.path)
        self.module = (
            module if module is not None else module_name_for_path(self.path)
        )
        self._aliases: Optional[Dict[str, str]] = None
        self._bound_names: Optional[frozenset] = None

    # -- package classification -------------------------------------

    def in_package(self, prefix: str) -> bool:
        """Whether this module is *prefix* or lives under it."""
        if self.module is None:
            return False
        return self.module == prefix or self.module.startswith(prefix + ".")

    @property
    def is_sim_core(self) -> bool:
        """Whether the determinism contract applies to this module."""
        return any(self.in_package(pkg) for pkg in SIM_CORE_PACKAGES)

    # -- name resolution ---------------------------------------------

    @property
    def aliases(self) -> Dict[str, str]:
        """Local name → dotted origin, from every import in the module."""
        if self._aliases is None:
            self._aliases = self._build_aliases()
        return self._aliases

    def _build_aliases(self) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        package = ""
        if self.module is not None:
            package = self.module.rsplit(".", 1)[0] if "." in self.module else ""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    origin = alias.name if alias.asname else local
                    aliases[local] = origin
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: anchor at this module's package.
                    hops = package.split(".") if package else []
                    hops = hops[: max(0, len(hops) - (node.level - 1))]
                    base = ".".join(hops + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = f"{base}.{alias.name}" if base else alias.name
        return aliases

    @property
    def bound_names(self) -> frozenset:
        """Every name the module binds (assignments, defs, imports).

        Used to avoid flagging shadowed builtins — a module that defines
        its own ``hash`` is not calling the randomised builtin.
        """
        if self._bound_names is None:
            bound = set(self.aliases)
            for node in ast.walk(self.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    bound.add(node.name)
                elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    bound.add(node.id)
                elif isinstance(node, ast.arg):
                    bound.add(node.arg)
            self._bound_names = frozenset(bound)
        return self._bound_names

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a ``Name``/``Attribute`` chain, or ``None``.

        ``np.random.default_rng`` (with ``import numpy as np``) resolves
        to ``numpy.random.default_rng``. Chains whose base is not a
        plain imported name (calls, subscripts, locals) resolve to
        ``None`` — rules treat that as "not the thing I ban".
        """
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        origin = self.aliases.get(cursor.id)
        if origin is None:
            # Unimported bare name: resolvable only when unshadowed, as
            # itself (covers builtins such as ``hash``).
            if parts or cursor.id in self.bound_names:
                return None
            return cursor.id
        parts.append(origin)
        return ".".join(reversed(parts))

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        """Dotted origin of a call's target (see :meth:`resolve`)."""
        return self.resolve(node.func)

    # -- source access -----------------------------------------------

    def source_line(self, lineno: int) -> str:
        """The stripped source text of 1-based *lineno* (fingerprint)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""
