"""Text and JSON reporters for lint results.

The text reporter is for humans and CI logs: one ``path:line:col: CODE
message`` line per violation, a per-code tally, and the baseline
accounting (how many known violations were skipped). The JSON reporter
is for tooling: a versioned document with the same information in
machine shape, written to stdout so it can be piped.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.engine import LintResult
from repro.lint.violation import Violation

__all__ = ["REPORT_VERSION", "render_text", "render_json"]

REPORT_VERSION = 1


def _summary(
    result: LintResult, baselined: Sequence[Violation]
) -> Dict[str, Any]:
    return {
        "files_scanned": result.files_scanned,
        "violations": len(result.violations),
        "baselined": len(baselined),
        "by_code": {code: count for code, count in result.by_code()},
    }


def render_text(result: LintResult, baselined: Sequence[Violation]) -> str:
    """Human/CI report: violation lines, tally, baseline accounting."""
    lines: List[str] = [v.format() for v in result.violations]
    if lines:
        lines.append("")
    tally = ", ".join(f"{code}={count}" for code, count in result.by_code())
    status = "FAIL" if result.violations else "OK"
    lines.append(
        f"{status}: {len(result.violations)} violation(s) in "
        f"{result.files_scanned} file(s)"
        + (f" [{tally}]" if tally else "")
        + (f"; {len(baselined)} baselined" if baselined else "")
    )
    return "\n".join(lines)


def render_json(result: LintResult, baselined: Sequence[Violation]) -> str:
    """Machine report: versioned JSON document (stable key order)."""
    payload = {
        "version": REPORT_VERSION,
        "summary": _summary(result, baselined),
        "violations": [v.to_dict() for v in result.violations],
        "baselined": [v.to_dict() for v in baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
