"""The lint engine: file discovery, rule dispatch, suppression filtering.

One :func:`lint_paths` call is one lint run: discover ``.py`` files,
parse each once into a :class:`~repro.lint.context.ModuleContext`, run
every registered rule whose scope covers the module, drop violations
waived by ``# repro: noqa[...]`` comments, and return the sorted
remainder in a :class:`LintResult`. Baseline filtering is deliberately
*not* done here — the CLI layer owns the baseline so programmatic users
(tests, the self-check) always see the full picture.

Unparseable files are reported as ``RPR001`` violations rather than
crashing the run: a syntax error in one file must not hide violations
in the other two hundred.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.lint.context import ModuleContext
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import SuppressionIndex
from repro.lint.violation import Violation

__all__ = ["PARSE_ERROR_CODE", "DEFAULT_EXCLUDED_PARTS", "LintResult",
           "iter_source_files", "lint_source", "lint_paths"]

#: Reported when a file cannot be parsed at all.
PARSE_ERROR_CODE = "RPR001"

#: Path fragments skipped during directory discovery. Fixture snippets
#: contain violations *on purpose* (they are the rule tests' inputs) and
#: must not fail a whole-tree run; explicitly named files still lint.
DEFAULT_EXCLUDED_PARTS: Tuple[str, ...] = (
    "tests/lint/fixtures",
    "__pycache__",
    ".git",
)


class LintResult:
    """Outcome of one lint run."""

    def __init__(
        self, violations: List[Violation], files_scanned: int
    ) -> None:
        self.violations = violations
        self.files_scanned = files_scanned

    @property
    def ok(self) -> bool:
        """True when no violations survived suppression filtering."""
        return not self.violations

    def by_code(self) -> List[Tuple[str, int]]:
        """``(code, count)`` pairs, sorted by code — summary fodder."""
        tally: dict = {}
        for violation in self.violations:
            tally[violation.code] = tally.get(violation.code, 0) + 1
        return sorted(tally.items())


def iter_source_files(
    paths: Sequence[Union[str, Path]],
    excluded_parts: Sequence[str] = DEFAULT_EXCLUDED_PARTS,
) -> Iterator[Path]:
    """Yield the ``.py`` files under *paths*, deterministically sorted.

    Directories are walked recursively; files whose path contains an
    excluded fragment are skipped during the walk but never when named
    explicitly (so fixture tests can lint fixture files directly).
    """
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
            for candidate in candidates:
                posix = candidate.as_posix()
                if any(part in posix for part in excluded_parts):
                    continue
                if candidate not in seen:
                    seen.add(candidate)
                    yield candidate
        elif path.suffix == ".py":
            if path not in seen:
                seen.add(path)
                yield path


def lint_source(
    path: Union[str, Path],
    source: str,
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one in-memory module; the unit every test builds on.

    *module* overrides the package classification (fixtures pretend to
    live in ``repro.perf`` etc.); *rules* restricts the rule set.
    """
    display = Path(path).as_posix()
    try:
        context = ModuleContext(display, source, module=module)
    except SyntaxError as exc:
        return [
            Violation(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
                source="",
            )
        ]
    active = all_rules() if rules is None else list(rules)
    found: List[Violation] = []
    for rule in active:
        if rule.applies_to(context):
            found.extend(rule.check(context))
    suppressions = SuppressionIndex(display, context.lines, source=source)
    kept = [v for v in found if not suppressions.is_suppressed(v)]
    kept.extend(suppressions.malformed)
    return sorted(kept)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    excluded_parts: Sequence[str] = DEFAULT_EXCLUDED_PARTS,
    root: Optional[Union[str, Path]] = None,
) -> LintResult:
    """Lint every source file under *paths*.

    Violation paths are reported relative to *root* (default: the
    current directory) when possible, keeping reports and baselines
    machine-independent.
    """
    base = Path(root) if root is not None else Path.cwd()
    violations: List[Violation] = []
    files = 0
    for file_path in iter_source_files(paths, excluded_parts):
        files += 1
        try:
            display: Union[str, Path] = file_path.resolve().relative_to(
                base.resolve()
            )
        except ValueError:
            display = file_path
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            violations.append(
                Violation(
                    path=Path(display).as_posix(),
                    line=1,
                    col=1,
                    code=PARSE_ERROR_CODE,
                    message=f"file is unreadable: {exc}",
                    source="",
                )
            )
            continue
        violations.extend(lint_source(display, source, rules=rules))
    return LintResult(sorted(violations), files)
