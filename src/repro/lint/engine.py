"""The lint engine: file discovery, rule dispatch, suppression filtering.

One :func:`lint_paths` call is one lint run: discover ``.py`` files,
parse each once into a :class:`~repro.lint.context.ModuleContext`, run
every registered rule whose scope covers the module, drop violations
waived by ``# repro: noqa[...]`` comments, and return the sorted
remainder in a :class:`LintResult`. Baseline filtering is deliberately
*not* done here — the CLI layer owns the baseline so programmatic users
(tests, the self-check) always see the full picture.

Parse-once sharing: :func:`load_modules` materialises the tree as
:class:`LoadedModule` objects (parsed context + lazily built
suppression index) that both this engine (:func:`lint_modules`) and the
whole-program flow analyser (:mod:`repro.flow`) consume, so a combined
``lint --flow`` run parses each file exactly once.

Unparseable files are reported as ``RPR001`` violations rather than
crashing the run: a syntax error in one file must not hide violations
in the other two hundred.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.lint.context import ModuleContext
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import SuppressionIndex
from repro.lint.violation import Violation

__all__ = ["PARSE_ERROR_CODE", "DEFAULT_EXCLUDED_PARTS", "LintResult",
           "LoadedModule", "iter_source_files", "load_modules",
           "lint_modules", "lint_source", "lint_paths"]

#: Reported when a file cannot be parsed at all.
PARSE_ERROR_CODE = "RPR001"

#: Path fragments skipped during directory discovery. Fixture snippets
#: contain violations *on purpose* (they are the rule tests' inputs) and
#: must not fail a whole-tree run; explicitly named files still lint.
DEFAULT_EXCLUDED_PARTS: Tuple[str, ...] = (
    "tests/lint/fixtures",
    "tests/flow/fixtures",
    "__pycache__",
    ".git",
)


class LoadedModule:
    """One discovered file: parsed context, or the parse-error violation.

    The unit of the parse-once contract: a tree is loaded into these
    exactly once per run, then every consumer — the per-file rules, the
    whole-program flow passes, the suppression filter — works off the
    same parsed AST and tokenised suppression index.
    """

    def __init__(
        self,
        display: str,
        source: str,
        context: Optional[ModuleContext],
        error: Optional[Violation] = None,
    ) -> None:
        self.display = display
        self.source = source
        self.context = context
        self.error = error
        self._suppressions: Optional[SuppressionIndex] = None

    @property
    def suppressions(self) -> SuppressionIndex:
        """Lazily built (and cached) suppression index for this file."""
        if self._suppressions is None:
            lines = self.context.lines if self.context is not None else []
            self._suppressions = SuppressionIndex(
                self.display, lines, source=self.source
            )
        return self._suppressions

    @classmethod
    def parse(
        cls, path: Union[str, Path], source: str, module: Optional[str] = None
    ) -> "LoadedModule":
        """Parse one in-memory file into a loaded module (never raises)."""
        display = Path(path).as_posix()
        try:
            context = ModuleContext(display, source, module=module)
        except SyntaxError as exc:
            return cls(
                display,
                source,
                None,
                error=Violation(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {exc.msg}",
                    source="",
                ),
            )
        return cls(display, source, context)


class LintResult:
    """Outcome of one lint run."""

    def __init__(
        self, violations: List[Violation], files_scanned: int
    ) -> None:
        self.violations = violations
        self.files_scanned = files_scanned

    @property
    def ok(self) -> bool:
        """True when no violations survived suppression filtering."""
        return not self.violations

    def by_code(self) -> List[Tuple[str, int]]:
        """``(code, count)`` pairs, sorted by code — summary fodder."""
        tally: dict = {}
        for violation in self.violations:
            tally[violation.code] = tally.get(violation.code, 0) + 1
        return sorted(tally.items())


def iter_source_files(
    paths: Sequence[Union[str, Path]],
    excluded_parts: Sequence[str] = DEFAULT_EXCLUDED_PARTS,
) -> Iterator[Path]:
    """Yield the ``.py`` files under *paths*, deterministically sorted.

    Directories are walked recursively; files whose path contains an
    excluded fragment are skipped during the walk but never when named
    explicitly (so fixture tests can lint fixture files directly).
    """
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
            for candidate in candidates:
                posix = candidate.as_posix()
                if any(part in posix for part in excluded_parts):
                    continue
                if candidate not in seen:
                    seen.add(candidate)
                    yield candidate
        elif path.suffix == ".py":
            if path not in seen:
                seen.add(path)
                yield path


def load_modules(
    paths: Sequence[Union[str, Path]],
    excluded_parts: Sequence[str] = DEFAULT_EXCLUDED_PARTS,
    root: Optional[Union[str, Path]] = None,
) -> List[LoadedModule]:
    """Discover, read, and parse every source file under *paths* once.

    Display paths are made relative to *root* (default: the current
    directory) when possible, keeping reports and baselines
    machine-independent. Unreadable and unparseable files become loaded
    modules carrying an ``RPR001`` error instead of a context.
    """
    base = Path(root) if root is not None else Path.cwd()
    modules: List[LoadedModule] = []
    for file_path in iter_source_files(paths, excluded_parts):
        try:
            display: Union[str, Path] = file_path.resolve().relative_to(
                base.resolve()
            )
        except ValueError:
            display = file_path
        display_posix = Path(display).as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            modules.append(
                LoadedModule(
                    display_posix,
                    "",
                    None,
                    error=Violation(
                        path=display_posix,
                        line=1,
                        col=1,
                        code=PARSE_ERROR_CODE,
                        message=f"file is unreadable: {exc}",
                        source="",
                    ),
                )
            )
            continue
        modules.append(LoadedModule.parse(display, source))
    return modules


def _lint_one(
    module: LoadedModule, rules: Optional[Sequence[Rule]]
) -> List[Violation]:
    """Run the per-file rules over one loaded module."""
    if module.context is None:
        assert module.error is not None
        return [module.error]
    context = module.context
    active = all_rules() if rules is None else list(rules)
    found: List[Violation] = []
    for rule in active:
        if rule.applies_to(context):
            found.extend(rule.check(context))
    suppressions = module.suppressions
    kept = [v for v in found if not suppressions.is_suppressed(v)]
    kept.extend(suppressions.malformed)
    return sorted(kept)


def lint_modules(
    modules: Sequence[LoadedModule],
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Run the per-file rules over already-loaded modules (parse-once)."""
    violations: List[Violation] = []
    for module in modules:
        violations.extend(_lint_one(module, rules))
    return LintResult(sorted(violations), len(modules))


def lint_source(
    path: Union[str, Path],
    source: str,
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one in-memory module; the unit every test builds on.

    *module* overrides the package classification (fixtures pretend to
    live in ``repro.perf`` etc.); *rules* restricts the rule set.
    """
    return _lint_one(LoadedModule.parse(path, source, module=module), rules)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    excluded_parts: Sequence[str] = DEFAULT_EXCLUDED_PARTS,
    root: Optional[Union[str, Path]] = None,
    modules: Optional[Sequence[LoadedModule]] = None,
) -> LintResult:
    """Lint every source file under *paths*.

    Pass *modules* (from :func:`load_modules`) to reuse an existing
    parse — the combined ``lint --flow`` path does, so each file is
    parsed exactly once per run.
    """
    if modules is None:
        modules = load_modules(paths, excluded_parts, root=root)
    return lint_modules(modules, rules=rules)
