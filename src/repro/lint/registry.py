"""Rule registry: codes, metadata, scopes, and the registration decorator.

Every rule is a function ``check(module) -> Iterable[Violation]``
registered under a stable ``RPRxxx`` code. The code's hundreds digit is
the invariant family (the catalogue in ``docs/static-analysis.md``):

* ``RPR1xx`` — determinism (simulation core only)
* ``RPR2xx`` — durability / robustness
* ``RPR3xx`` — worker-safety (spawn-pool picklability)
* ``RPR4xx`` — telemetry hygiene
* ``RPR5xx`` — service responsiveness and durable-state discipline
  (``repro.service`` / ``repro.durable``)

Scopes keep package-level policy out of the rules themselves: a rule
declares *where it applies* (``sim-core``, ``non-telemetry``,
``service``, ``durable``, ``all``)
and the engine consults :class:`~repro.lint.context.ModuleContext` for
the module's package. This is how wall-clock stays legal in
``repro.jobs`` and ``repro.telemetry`` — by package scope, not by
``noqa`` comments sprinkled over the allowlisted files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError
from repro.lint.context import ModuleContext
from repro.lint.violation import Violation

__all__ = [
    "SCOPE_ALL",
    "SCOPE_SIM_CORE",
    "SCOPE_NON_TELEMETRY",
    "SCOPE_SERVICE",
    "SCOPE_DURABLE",
    "SCOPE_ESTIMATE",
    "Rule",
    "FlowRule",
    "register",
    "register_flow",
    "all_rules",
    "all_flow_rules",
    "get_rule",
    "rule_codes",
    "flow_rule_codes",
]

CheckFn = Callable[[ModuleContext], Iterable[Violation]]

#: Rule applies to every linted file.
SCOPE_ALL = "all"
#: Rule applies only inside the deterministic simulation core packages.
SCOPE_SIM_CORE = "sim-core"
#: Rule applies everywhere except inside ``repro.telemetry`` itself.
SCOPE_NON_TELEMETRY = "non-telemetry"
#: Rule applies only inside the online scheduling service package.
SCOPE_SERVICE = "service"
#: Rule applies to the packages that persist scheduler state: the
#: durability layer itself and the service daemon that hosts it.
SCOPE_DURABLE = "durable"
#: Rule applies only inside the estimation backends package.
SCOPE_ESTIMATE = "estimate"

_VALID_SCOPES = (
    SCOPE_ALL, SCOPE_SIM_CORE, SCOPE_NON_TELEMETRY, SCOPE_SERVICE,
    SCOPE_DURABLE, SCOPE_ESTIMATE,
)


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    code: str
    name: str
    summary: str
    scope: str
    check: CheckFn
    #: Short rationale paragraph surfaced by ``--list-rules`` and docs.
    rationale: str = field(default="", compare=False)

    def applies_to(self, module: ModuleContext) -> bool:
        """Whether this rule's scope covers *module*'s package."""
        if self.scope == SCOPE_SIM_CORE:
            return module.is_sim_core
        if self.scope == SCOPE_NON_TELEMETRY:
            return not module.in_package("repro.telemetry")
        if self.scope == SCOPE_SERVICE:
            return module.in_package("repro.service")
        if self.scope == SCOPE_DURABLE:
            return module.in_package("repro.durable") or module.in_package(
                "repro.service"
            )
        if self.scope == SCOPE_ESTIMATE:
            return module.in_package("repro.estimate")
        return True


@dataclass(frozen=True)
class FlowRule:
    """One registered *whole-program* invariant check (RPR6xx family).

    Unlike :class:`Rule`, the check receives a ``FlowAnalysis``
    (:mod:`repro.flow.engine`) — symbol table, call graph, and loaded
    modules — instead of one module context, so it can follow an
    invariant across function and module boundaries. The ``scope``
    string is descriptive (which packages the rule attributes findings
    to); scoping is applied *inside* the pass, where the analysis knows
    each function's package.
    """

    code: str
    name: str
    summary: str
    scope: str
    #: ``check(analysis) -> Iterable[Violation]``; typed loosely because
    #: the analysis type lives above this registry (repro.flow).
    check: Callable[[Any], Iterable[Violation]]
    rationale: str = field(default="", compare=False)


_REGISTRY: Dict[str, Rule] = {}

_FLOW_REGISTRY: Dict[str, FlowRule] = {}


def register(
    code: str,
    name: str,
    summary: str,
    scope: str = SCOPE_ALL,
    rationale: str = "",
) -> Callable[[CheckFn], CheckFn]:
    """Register the decorated check function as rule *code*.

    Codes are unique; double registration is a programming error and
    fails loudly at import time rather than shadowing silently.
    """
    if scope not in _VALID_SCOPES:
        raise ConfigurationError(f"unknown rule scope {scope!r} for {code}")

    def decorator(fn: CheckFn) -> CheckFn:
        if code in _REGISTRY:
            raise ConfigurationError(f"lint rule {code} registered twice")
        _REGISTRY[code] = Rule(
            code=code,
            name=name,
            summary=summary,
            scope=scope,
            check=fn,
            rationale=rationale,
        )
        return fn

    return decorator


def register_flow(
    code: str,
    name: str,
    summary: str,
    scope: str = SCOPE_ALL,
    rationale: str = "",
) -> Callable[[Callable[[Any], Iterable[Violation]]],
              Callable[[Any], Iterable[Violation]]]:
    """Register the decorated whole-program check as flow rule *code*.

    Flow rules share the code namespace with per-file rules — a code
    registered in either registry cannot be reused in the other.
    """
    if scope not in _VALID_SCOPES:
        raise ConfigurationError(f"unknown rule scope {scope!r} for {code}")

    def decorator(
        fn: Callable[[Any], Iterable[Violation]],
    ) -> Callable[[Any], Iterable[Violation]]:
        if code in _FLOW_REGISTRY or code in _REGISTRY:
            raise ConfigurationError(f"lint rule {code} registered twice")
        _FLOW_REGISTRY[code] = FlowRule(
            code=code,
            name=name,
            summary=summary,
            scope=scope,
            check=fn,
            rationale=rationale,
        )
        return fn

    return decorator


def _ensure_loaded() -> None:
    """Import the rule modules (registration happens on import)."""
    from repro.lint import rules  # noqa: F401  (import for side effect)
    from repro.flow import rules as flow_rules  # noqa: F401


def all_rules() -> List[Rule]:
    """Every registered per-file rule, sorted by code."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def all_flow_rules() -> List[FlowRule]:
    """Every registered whole-program flow rule, sorted by code."""
    _ensure_loaded()
    return [_FLOW_REGISTRY[code] for code in sorted(_FLOW_REGISTRY)]


def rule_codes() -> Tuple[str, ...]:
    """The sorted tuple of registered per-file codes."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def flow_rule_codes() -> Tuple[str, ...]:
    """The sorted tuple of registered flow codes."""
    _ensure_loaded()
    return tuple(sorted(_FLOW_REGISTRY))


def get_rule(code: str) -> Rule:
    """Look up one per-file rule; unknown codes raise loudly.

    Flow rules are looked up via :func:`all_flow_rules` — they are not
    interchangeable with per-file rules (different check signature).
    """
    _ensure_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ConfigurationError(f"unknown lint rule code {code!r}") from None
