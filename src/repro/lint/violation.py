"""The one value every layer of the linter exchanges: a violation.

A violation is a *located claim*: rule ``code`` says the construct at
``path:line:col`` breaks an invariant, with a human ``message`` and the
stripped ``source`` line it anchors to. The ``source`` text doubles as
the baseline fingerprint (see :mod:`repro.lint.baseline`): baselines are
keyed on *what the code says*, not on line numbers, so unrelated edits
above a grandfathered violation do not churn the baseline file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Violation"]


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at one source location.

    Ordering is (path, line, col, code) — the natural report order —
    because dataclass ordering uses field declaration order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    source: str = ""

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        return f"{self.path}::{self.code}::{self.source}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-reporter form of this violation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "source": self.source,
        }

    def format(self) -> str:
        """``path:line:col: CODE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
