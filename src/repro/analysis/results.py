"""Result persistence: JSON round-tripping for experiment outputs.

Benchmark harnesses save their measured series so EXPERIMENTS.md numbers
can be regenerated and diffed; everything is plain-JSON (lists/dicts/
numbers) with numpy scalars normalised.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

__all__ = ["to_jsonable", "save_json", "load_json", "mix_result_to_dict"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert *obj* into JSON-serialisable primitives."""
    if isinstance(obj, (str, bool, type(None))):
        return obj
    if isinstance(obj, (np.integer, int)):
        return int(obj)
    if isinstance(obj, (np.floating, float)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if is_dataclass(obj) and not isinstance(obj, type):
        return to_jsonable(asdict(obj))
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(x) for x in obj]
    raise TypeError(f"cannot serialise {type(obj).__name__}")


def save_json(path: Union[str, Path], obj: Any) -> None:
    """Write *obj* (after :func:`to_jsonable`) to *path*."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=2, sort_keys=True))


def load_json(path: Union[str, Path]) -> Any:
    """Load a JSON file."""
    return json.loads(Path(path).read_text())


def mix_result_to_dict(result) -> Dict[str, Any]:
    """Flatten a :class:`~repro.perf.experiment.MixResult` for persistence."""
    return {
        "names": list(result.names),
        "chosen_mapping": str(result.chosen_mapping),
        "default_mapping": str(result.default_mapping),
        "num_decisions": len(result.decisions),
        "mapping_times": {
            str(mapping): {k: float(v) for k, v in times.items()}
            for mapping, times in result.mapping_times.items()
        },
        "improvements": {n: float(result.improvement(n)) for n in result.names},
        "oracle_improvements": {
            n: float(result.oracle_improvement(n)) for n in result.names
        },
    }
