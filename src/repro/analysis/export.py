"""CSV export of figure series (for external plotting).

The harnesses print ASCII tables; anyone wanting real plots (matplotlib,
gnuplot, a spreadsheet) can export the same series as CSV with these
helpers. No plotting dependency is taken.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence, Union

from repro.errors import ConfigurationError

__all__ = ["write_csv", "counter_series_to_csv", "sweep_to_csv"]

PathLike = Union[str, Path]


def write_csv(path: PathLike, header: Sequence[str], rows: Sequence[Sequence]) -> Path:
    """Write rows to *path* as CSV, creating parent directories."""
    for row in rows:
        if len(row) != len(header):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(header)}"
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def counter_series_to_csv(series, path: PathLike) -> Path:
    """Export a Figure 2/5 :class:`CounterSeries` as one row per window."""
    header = [
        "window",
        "true_footprint",
        "resident_lines",
        "l2_misses",
        "tlb_misses",
        "page_faults",
        "occupancy_weight",
        "rbv_occupancy",
    ]
    rows = [
        [
            i,
            series.true_footprint[i],
            series.resident_lines[i],
            series.l2_misses[i],
            series.tlb_misses[i],
            series.page_faults[i],
            series.occupancy_weight[i],
            series.rbv_occupancy[i],
        ]
        for i in range(len(series.true_footprint))
    ]
    return write_csv(path, header, rows)


def sweep_to_csv(sweep, path: PathLike) -> Path:
    """Export a Figure 10/11/12 :class:`SweepResult` (one row/benchmark)."""
    header = ["benchmark", "max_improvement", "avg_improvement", "mixes"]
    rows = [
        [
            name,
            sweep.max_improvement(name),
            sweep.avg_improvement(name),
            len(sweep.improvements[name]),
        ]
        for name in sweep.benchmarks()
    ]
    return write_csv(path, header, rows)
