"""Series builders for every table and figure in the paper's evaluation.

Each ``figureNN_*`` function computes exactly the data the corresponding
paper figure plots, at a configurable scale; the benchmark harnesses under
``benchmarks/`` call these and print the paper-style rows. Keeping the
logic here makes the figures scriptable from examples and tests too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.alloc import (
    InterferenceGraphPolicy,
    UserLevelMonitor,
    WeightedInterferenceGraphPolicy,
    WeightSortPolicy,
)
from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, CacheGeometry, tiny_cache
from repro.cache.tlb import TLB, PageFaultTracker
from repro.core.signature import SignatureConfig, SignatureUnit
from repro.jobs.spec import WorkloadSpec
from repro.perf.experiment import (
    MixResult,
    SweepResult,
    mix_sweep,
    pairwise_private_timeshare,
    pairwise_shared,
    parsec_two_phase,
    run_all_mappings,
    stratified_mixes,
    two_phase,
)
from repro.perf.machine import MachineConfig, core2duo, p4xeon
from repro.perf.runner import (
    DEFAULT_INSTRUCTIONS,
    build_tasks,
    default_signature_config,
    run_mix,
)
from repro.sched.affinity import canonical_mapping
from repro.sched.os_model import SchedulerConfig
from repro.workloads.aim9 import aim9_phases, make_aim9_generator
from repro.workloads.base import BLOCK_BYTES
from repro.workloads.patterns import StreamGenerator, StridedGenerator
from repro.workloads.spec import spec_profile_names

__all__ = [
    "figure1_concept",
    "CounterSeries",
    "figure2_counters_vs_footprint",
    "figure3a_private_pairs",
    "figure3b_shared_pairs",
    "figure5_occupancy_tracking",
    "table1_mapping_runtimes",
    "figure10_native_sweep",
    "figure12_parsec_sweep",
    "figure13_algorithm_comparison",
    "figure14_hash_comparison",
    "Fig14Entry",
    "POLICIES",
]

#: The three paper policies, keyed as in Figure 13.
POLICIES = {
    "weight_sort": WeightSortPolicy,
    "interference_graph": InterferenceGraphPolicy,
    "weighted_interference_graph": WeightedInterferenceGraphPolicy,
}


# ---------------------------------------------------------------------------
# Figure 1 — same miss rate, different footprint (conceptual)
# ---------------------------------------------------------------------------
def figure1_concept(accesses: int = 64) -> Dict[str, Dict[str, float]]:
    """Two strided patterns on an 8-set direct-mapped cache (Figure 1).

    Application A conflicts within a single set (footprint 1 line);
    application B cycles over four sets (footprint 4 lines); both miss on
    every access.
    """
    out: Dict[str, Dict[str, float]] = {}
    for label, stride, sets_touched in [("A", 8, 1), ("B", 1, 4)]:
        cache = SetAssociativeCache(tiny_cache(sets=8, ways=1))
        if label == "A":
            gen = StridedGenerator(accesses * 8, 8, seed=0)  # all set 0
        else:
            # Distinct tags per lap over sets 0..3.
            blocks = np.asarray(
                [8 * lap + s for lap in range(accesses // 4) for s in range(4)],
                dtype=np.int64,
            )
            gen = None
        if gen is not None:
            blocks = gen.next_batch(accesses)
        result = cache.access_batch(0, blocks)
        out[label] = {
            "miss_rate": result.misses / result.accesses,
            "footprint_lines": float(cache.footprint_lines()),
            "expected_footprint": float(sets_touched),
        }
    return out


# ---------------------------------------------------------------------------
# Figures 2 & 5 — counters vs footprint over time
# ---------------------------------------------------------------------------
@dataclass
class CounterSeries:
    """Windowed time series for the aim9-like workload (Figures 2 and 5).

    ``occupancy_weight`` is the Section 2.4 metric — the number of set bits
    in the (counter-backed) Bloom filter, i.e. the tracked resident
    footprint; ``resident_lines`` is the exact resident-line ground truth it
    should follow (Figure 5); ``true_footprint`` is the program's live
    working set, which the Figure 2 counters fail to reveal;
    ``rbv_occupancy`` is the per-window RBV popcount used by the scheduling
    algorithms.
    """

    window_accesses: int
    true_footprint: List[int] = field(default_factory=list)
    resident_lines: List[int] = field(default_factory=list)
    l2_misses: List[int] = field(default_factory=list)
    tlb_misses: List[int] = field(default_factory=list)
    page_faults: List[int] = field(default_factory=list)
    occupancy_weight: List[int] = field(default_factory=list)
    rbv_occupancy: List[int] = field(default_factory=list)

    def correlation(self, series: str, reference: str = "true_footprint") -> float:
        """Pearson correlation of a named series with a reference series.

        Figure 2's claim is low ``correlation(counter)`` against the true
        working set; Figure 5's claim is high
        ``correlation("occupancy_weight", "resident_lines")`` — the CBF
        tracks the process's *cache footprint*.
        """
        y = np.asarray(getattr(self, series), dtype=np.float64)
        x = np.asarray(getattr(self, reference), dtype=np.float64)
        if x.std() == 0 or y.std() == 0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])

    def tracking_error(self) -> float:
        """Mean relative error of the occupancy weight vs resident lines.

        The Figure 5 fidelity number: how closely the CBF follows the true
        cache footprint. Nonzero error comes from hash aliasing at the
        paper's load factor (filter entries == cache lines) plus the
        documented stale-bit clearing lag.
        """
        occ = np.asarray(self.occupancy_weight, dtype=np.float64)
        res = np.asarray(self.resident_lines, dtype=np.float64)
        return float(np.mean(np.abs(occ - res) / np.maximum(res, 1.0)))


def figure2_counters_vs_footprint(
    window_accesses: int = 2500,
    laps: int = 2,
    seed: int = 0,
    machine_l2=None,
    scrubber_accesses_per_window: int = 4000,
) -> CounterSeries:
    """Drive the aim9-like workload and record the Figure 2/5 series.

    Per window: the phase's true live working set, the L2 miss count, TLB
    miss count, page-fault count, the CBF occupancy weight (the monitored
    core's filter popcount, Section 2.4) and the per-window RBV popcount.

    Two environment choices mirror the paper's measurement conditions:

    * the cache is shared with a streaming *scrubber* on the second core —
      a cache with no other occupants never evicts a process's dead lines,
      so no occupancy metric could track a footprint *decrease*; in the
      paper's runs the co-scheduled processes provide that pressure;
    * the measurement cache defaults to 1 MB, matching the scaled-down
      footprints (32–768 KB) of the aim9 phases.
    """
    l2_config = machine_l2 or CacheConfig(
        name="fig2-l2",
        geometry=CacheGeometry(size_bytes=1024 * 1024, line_bytes=64, ways=16),
    )
    cache = SetAssociativeCache(l2_config, num_cores=2)
    geometry = l2_config.geometry
    sig = SignatureUnit(
        SignatureConfig(
            num_cores=2, num_sets=geometry.num_sets, ways=geometry.ways
        )
    )
    tlb = TLB(entries=64, page_bytes=4096)
    faults = PageFaultTracker(page_bytes=4096)
    gen = make_aim9_generator(seed=seed)
    scrubber = StreamGenerator(1 << 26, base_block=1 << 30, seed=seed + 1)
    schedule = aim9_phases()
    series = CounterSeries(window_accesses=window_accesses)

    position = 0
    total_accesses = laps * sum(n for _, _, n in schedule)
    phase_bounds: List[Tuple[int, int]] = []
    cursor = 0
    for _ in range(laps):
        for window_kb, _churn, n in schedule:
            phase_bounds.append((cursor + n, window_kb * 1024 // BLOCK_BYTES))
            cursor += n

    def feed(core: int, blocks) -> int:
        result = cache.access_batch(core, blocks)
        sig.record_events(
            core,
            result.fills,
            result.fill_slots,
            result.evictions,
            result.evict_slots,
            result.evict_fill_pos,
        )
        return result.misses

    bound_idx = 0
    chunk = 500
    while position < total_accesses:
        take = min(window_accesses, total_accesses - position)
        tlb_before, pf_before = tlb.misses, faults.faults
        window_misses = 0
        done = 0
        scrub_done = 0
        # Interleave aim9 and scrubber chunks to approximate concurrency.
        while done < take:
            piece = min(chunk, take - done)
            blocks = gen.next_batch(piece)
            window_misses += feed(0, blocks)
            addresses = blocks * BLOCK_BYTES
            tlb.access_addresses(addresses)
            faults.touch_addresses(addresses)
            done += piece
            scrub_target = int(
                scrubber_accesses_per_window * done / take
            )
            if scrub_target > scrub_done:
                feed(1, scrubber.next_batch(scrub_target - scrub_done))
                scrub_done = scrub_target
        sample = sig.on_context_switch(0)
        position += take
        while bound_idx < len(phase_bounds) - 1 and position > phase_bounds[bound_idx][0]:
            bound_idx += 1
        series.true_footprint.append(phase_bounds[bound_idx][1])
        series.resident_lines.append(int(cache.occupancy_by_core()[0]))
        series.l2_misses.append(window_misses)
        series.tlb_misses.append(tlb.misses - tlb_before)
        series.page_faults.append(faults.faults - pf_before)
        series.occupancy_weight.append(sig.core_occupancy(0))
        series.rbv_occupancy.append(sample.occupancy)
    return series


def figure5_occupancy_tracking(**kwargs) -> CounterSeries:
    """Figure 5 uses the same run; alias kept for the figure index."""
    return figure2_counters_vs_footprint(**kwargs)


# ---------------------------------------------------------------------------
# Figure 3 — pairwise worst-case degradations
# ---------------------------------------------------------------------------
def figure3a_private_pairs(
    names: Optional[Sequence[str]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
    orchestrator=None,
):
    """Figure 3(a): worst-case degradation, pairs timesharing a private L2."""
    pool = list(names) if names else spec_profile_names()
    return pairwise_private_timeshare(
        p4xeon(), pool, instructions=instructions, seed=seed,
        batch_accesses=batch_accesses, orchestrator=orchestrator,
    )


def figure3b_shared_pairs(
    names: Optional[Sequence[str]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
    orchestrator=None,
):
    """Figure 3(b): worst-case degradation, pairs sharing the Core 2 L2."""
    pool = list(names) if names else spec_profile_names()
    return pairwise_shared(
        core2duo(), pool, instructions=instructions, seed=seed,
        batch_accesses=batch_accesses, orchestrator=orchestrator,
    )


# ---------------------------------------------------------------------------
# Table 1 — the four-benchmark mapping example
# ---------------------------------------------------------------------------
def table1_mapping_runtimes(
    machine: Optional[MachineConfig] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    batch_accesses: int = 256,
    orchestrator=None,
    backend: str = "exact",
    estimator=None,
) -> Tuple[List[str], Dict]:
    """Table 1: povray/gobmk/libquantum/hmmer under all three mappings.

    *backend* routes every mapping measurement through the selected
    simulation backend (see :mod:`repro.estimate`).
    """
    machine = machine or core2duo()
    names = ["povray", "gobmk", "libquantum", "hmmer"]
    tasks = build_tasks(names, instructions=instructions, seed=seed)
    workload = None
    if orchestrator is not None:
        workload = WorkloadSpec(
            kind="spec", names=tuple(names), instructions=instructions,
            seed=seed,
        )
    times = run_all_mappings(
        machine, tasks, seed=seed, batch_accesses=batch_accesses,
        orchestrator=orchestrator, workload=workload,
        backend=backend, estimator=estimator,
    )
    return names, times


# ---------------------------------------------------------------------------
# Figures 10-12 — improvement sweeps
# ---------------------------------------------------------------------------
#: One mix per cache-sensitive benchmark pairing it with a single polluter
#: and light partners — the mixes where the paper's per-benchmark maxima
#: arise. The full C(12,4) sweep contains them; the default subset must
#: too, or the reported maxima are artefacts of subsampling.
SHOWCASE_MIXES: Tuple[Tuple[str, ...], ...] = (
    ("mcf", "libquantum", "povray", "gobmk"),
    ("omnetpp", "libquantum", "povray", "sjeng"),
    ("astar", "hmmer", "povray", "perlbench"),
    ("milc", "libquantum", "povray", "gobmk"),
)


def figure10_native_sweep(
    mixes: Optional[Sequence[Sequence[str]]] = None,
    policy=None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    mixes_per_benchmark: int = 4,
    orchestrator=None,
    **two_phase_kwargs,
) -> SweepResult:
    """Figure 10: per-benchmark max/avg improvement, native execution.

    Pass an *orchestrator* to fan the whole sweep out in parallel with
    result caching (see :mod:`repro.jobs`).
    """
    if mixes is None:
        sampled = stratified_mixes(
            spec_profile_names(), mixes_per_benchmark=mixes_per_benchmark, seed=seed
        )
        seen = set(SHOWCASE_MIXES)
        mixes = list(SHOWCASE_MIXES) + [
            m for m in sampled if tuple(sorted(m)) not in
            {tuple(sorted(s)) for s in seen}
        ]
    policy = policy or WeightedInterferenceGraphPolicy()
    return mix_sweep(
        core2duo(), mixes, policy, instructions=instructions, seed=seed,
        orchestrator=orchestrator, **two_phase_kwargs,
    )


def figure12_parsec_sweep(
    app_mixes: Sequence[Sequence[str]],
    instructions_per_thread: int = DEFAULT_INSTRUCTIONS // 4,
    seed: int = 0,
    orchestrator=None,
    **kwargs,
) -> SweepResult:
    """Figure 12: multithreaded PARSEC mixes under the two-phase policy.

    With an *orchestrator*, each mix's phase batch runs through the job
    subsystem (mix-level results remain sequential because each mix seeds
    its own policy).
    """
    sweep = SweepResult()
    for i, mix in enumerate(app_mixes):
        sweep.add(
            parsec_two_phase(
                core2duo(),
                list(mix),
                instructions_per_thread=instructions_per_thread,
                seed=seed + i,
                orchestrator=orchestrator,
                **kwargs,
            )
        )
    return sweep


# ---------------------------------------------------------------------------
# Figures 13 & 14 — algorithm and hash-function comparisons
# ---------------------------------------------------------------------------
def figure13_algorithm_comparison(
    mixes: Sequence[Sequence[str]],
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    **two_phase_kwargs,
) -> Dict[str, List[MixResult]]:
    """Figure 13: the three policies on representative mixes."""
    out: Dict[str, List[MixResult]] = {}
    for key, policy_cls in POLICIES.items():
        results = []
        for i, mix in enumerate(mixes):
            results.append(
                two_phase(
                    core2duo(),
                    list(mix),
                    policy_cls(),
                    instructions=instructions,
                    seed=seed + i,
                    **two_phase_kwargs,
                )
            )
        out[key] = results
    return out


def figure14_hash_comparison(
    mixes: Sequence[Sequence[str]],
    hash_kinds: Sequence[str] = (
        "xor",
        "xor_inverse_reverse",
        "modulo",
        "presence",
        "presence_sticky",
    ),
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    policy_seeds: Sequence[int] = (5, 17, 23),
    phase1_min_wall: float = 400_000_000.0,
    **two_phase_kwargs,
) -> "Dict[str, Fig14Entry]":
    """Figure 14: the weighted policy under each hash scheme.

    Measured as decision *robustness*: each scheme's phase 1 is run with
    several tie-break seeds, and every resulting majority schedule is
    scored against a per-mix phase-2 table computed once. An informative
    signature picks the good schedule regardless of the tie-break seed; a
    saturated one (``presence_sticky``, or ``k>1`` on a line-count-sized
    filter) degenerates to near-uniform votes whose winner flips with the
    seed — the paper's "conveys little information". The long
    ``phase1_min_wall`` matters: it pushes the run well past the sticky
    filters' saturation point, matching the paper's 2B-instruction
    emulation; a short phase 1 would let the pre-saturation transient
    carry even the degenerate schemes.
    """
    machine = core2duo()
    out: Dict[str, Fig14Entry] = {
        kind: Fig14Entry(results=[], late_occupancies=[]) for kind in hash_kinds
    }
    for i, mix in enumerate(mixes):
        # Phase-2 mapping times are signature-independent: compute once.
        tasks = build_tasks(list(mix), instructions=instructions, seed=seed + i)
        mapping_times = run_all_mappings(machine, tasks, seed=seed + i)
        default = canonical_mapping(
            [
                [t.tid for j, t in enumerate(tasks) if j % machine.num_cores == c]
                for c in range(machine.num_cores)
            ]
        )
        for kind in hash_kinds:
            for pseed in policy_seeds:
                monitor = _OccupancyRecordingMonitor(
                    WeightedInterferenceGraphPolicy(seed=pseed),
                    interval_cycles=8_000_000.0,
                )
                phase1 = run_mix(
                    machine,
                    tasks,
                    monitor=monitor,
                    signature_config=default_signature_config(
                        machine, hash_kind=kind
                    ),
                    seed=seed + i,
                    scheduler_config=SchedulerConfig(
                        num_cores=machine.num_cores,
                        timeslice_cycles=8_000_000.0,
                        context_smoothing=0.6,
                    ),
                    min_wall_cycles=phase1_min_wall,
                )
                chosen = (phase1.majority_mapping or default).canonical()
                out[kind].results.append(
                    MixResult(
                        names=tuple(mix),
                        mapping_times=mapping_times,
                        chosen_mapping=chosen,
                        default_mapping=default,
                        decisions=tuple(phase1.decisions),
                    )
                )
                # The saturation discriminator: the maximum occupancy weight
                # any task shows late in the run. A sticky (saturated)
                # vector yields near-zero RBVs -> no scheduling signal.
                trace = monitor.occupancy_trace
                tail = trace[len(trace) * 2 // 3 :] or trace
                out[kind].late_occupancies.append(
                    float(np.mean([max(o) for o in tail])) if tail else 0.0
                )
    return out


@dataclass
class Fig14Entry:
    """Per-hash-scheme Figure 14 measurements."""

    #: one MixResult per (mix, policy seed)
    results: List[MixResult]
    #: per run: mean over the final third of invocations of the *largest*
    #: per-task occupancy weight — the signal the policies feed on
    late_occupancies: List[float]

    def mean_improvement(self) -> float:
        """Mean improvement across mixes, seeds and benchmarks."""
        return float(
            np.mean(
                [r.improvement(n) for r in self.results for n in r.names]
            )
        )

    def worst_seed_improvement(self) -> float:
        """The weakest tie-break seed's mean improvement (robustness)."""
        return min(
            float(np.mean([r.improvement(n) for n in r.names]))
            for r in self.results
        )

    def late_signal(self) -> float:
        """Mean post-saturation occupancy signal across runs."""
        return float(np.mean(self.late_occupancies))


class _OccupancyRecordingMonitor(UserLevelMonitor):
    """Monitor that records the per-task occupancies it decided from."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.occupancy_trace: List[List[float]] = []

    def invoke(self, syscall):
        tasks = syscall.query_tasks()
        if tasks and all(t.valid for t in tasks):
            self.occupancy_trace.append([float(t.occupancy) for t in tasks])
        return super().invoke(syscall)
