"""Fairness metrics.

The paper lists fairness among its keywords and argues its scheme provides
fairness across workloads (Section 1); unlike prior work it does not define
a bespoke metric, so we provide the standard ones used to evaluate
contention-aware schedulers: Jain's fairness index over normalised
progress, and the max/min slowdown spread.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["jain_index", "slowdowns", "unfairness", "fairness_report"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)``; 1.0 = perfectly fair."""
    x = np.asarray(values, dtype=np.float64)
    if len(x) == 0:
        raise ConfigurationError("jain_index needs at least one value")
    if (x < 0).any():
        raise ConfigurationError("values must be non-negative")
    denom = len(x) * float((x**2).sum())
    if denom == 0:
        return 1.0
    return float(x.sum()) ** 2 / denom


def slowdowns(
    shared_times: Mapping[str, float], solo_times: Mapping[str, float]
) -> Dict[str, float]:
    """Per-benchmark slowdown: shared time / solo time (>= ~1)."""
    missing = set(shared_times) - set(solo_times)
    if missing:
        raise ConfigurationError(f"missing solo baselines for {sorted(missing)}")
    out = {}
    for name, shared in shared_times.items():
        solo = solo_times[name]
        if solo <= 0:
            raise ConfigurationError(f"non-positive solo time for {name}")
        out[name] = shared / solo
    return out


def unfairness(slowdown_map: Mapping[str, float]) -> float:
    """Max/min slowdown ratio: 1.0 = all benchmarks suffer equally."""
    values = list(slowdown_map.values())
    if not values:
        raise ConfigurationError("unfairness needs at least one slowdown")
    low = min(values)
    if low <= 0:
        raise ConfigurationError("slowdowns must be positive")
    return max(values) / low


def fairness_report(
    shared_times: Mapping[str, float], solo_times: Mapping[str, float]
) -> Dict[str, float]:
    """Bundle: Jain index over normalised progress + unfairness spread."""
    sd = slowdowns(shared_times, solo_times)
    progress = [1.0 / v for v in sd.values()]  # normalised progress rates
    return {
        "jain_index": jain_index(progress),
        "unfairness": unfairness(sd),
        "max_slowdown": max(sd.values()),
        "min_slowdown": min(sd.values()),
    }
