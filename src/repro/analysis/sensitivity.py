"""Sensitivity of the headline result to timing-model assumptions.

The reproduction's timing model has four load-bearing parameters (memory
latency, bus-queueing strength, L2 hit latency, CPI). A reviewer's first
question for any simulator-based result is whether the conclusion — the
chosen schedule's improvement for a cache-sensitive benchmark — survives
perturbing them. This module sweeps one parameter at a time around the
defaults and re-measures a reference mix, separating:

* the **oracle** improvement (does the *phenomenon* survive?), and
* the **chosen** improvement (does the *policy* still find it?).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.alloc import WeightedInterferenceGraphPolicy
from repro.perf.experiment import MixResult, two_phase
from repro.perf.machine import core2duo
from repro.perf.timing import TimingModel
from repro.sched.os_model import SchedulerConfig

__all__ = ["SensitivityPoint", "sweep_timing_parameter", "TIMING_PARAMETERS"]

#: Parameters the sweep knows how to perturb, with their default spans
#: (multipliers applied to the baseline TimingModel value).
TIMING_PARAMETERS: Dict[str, Sequence[float]] = {
    "mem_cycles": (0.5, 0.75, 1.0, 1.5, 2.0),
    "queue_coeff": (0.0, 0.5, 1.0, 2.0),
    "l2_hit_cycles": (0.5, 1.0, 2.0),
    "cpi_base": (0.67, 1.0, 1.5),
}


@dataclass(frozen=True)
class SensitivityPoint:
    """One sweep point: a perturbed parameter and the measured outcome."""

    parameter: str
    multiplier: float
    value: float
    chosen_improvement: float
    oracle_improvement: float
    result: MixResult

    @property
    def policy_found_it(self) -> bool:
        """Did the policy capture most of the available headroom?"""
        if self.oracle_improvement < 0.02:
            return True  # nothing to find
        return self.chosen_improvement >= 0.5 * self.oracle_improvement


def sweep_timing_parameter(
    parameter: str,
    multipliers: Sequence[float] = None,
    mix: Sequence[str] = ("mcf", "povray", "libquantum", "gobmk"),
    benchmark: str = "mcf",
    instructions: int = 6_000_000,
    seed: int = 5,
    **two_phase_kwargs,
) -> List[SensitivityPoint]:
    """Sweep one timing parameter and measure the reference mix.

    Returns one :class:`SensitivityPoint` per multiplier, in order.
    """
    if parameter not in TIMING_PARAMETERS:
        raise KeyError(
            f"unknown parameter {parameter!r}; "
            f"choose from {sorted(TIMING_PARAMETERS)}"
        )
    if multipliers is None:
        multipliers = TIMING_PARAMETERS[parameter]
    baseline = TimingModel()
    points: List[SensitivityPoint] = []
    for multiplier in multipliers:
        value = getattr(baseline, parameter) * multiplier
        machine = replace(
            core2duo(),
            name=f"core2duo[{parameter}x{multiplier}]",
            timing=replace(baseline, **{parameter: value}),
        )
        # Phase-1 scaling must track the timing change: the quantum exists
        # to cover a working-set re-fault, whose cycle cost scales with the
        # memory latency (DESIGN.md §5.3); and the majority vote needs
        # enough samples to beat its own variance at off-default points.
        quantum_scale = multiplier if parameter == "mem_cycles" else 1.0
        phase1 = SchedulerConfig(
            num_cores=machine.num_cores,
            timeslice_cycles=8_000_000.0 * max(quantum_scale, 0.5),
            context_smoothing=0.6,
        )
        kwargs = dict(
            phase1_scheduler=phase1, phase1_min_wall=240_000_000.0
        )
        kwargs.update(two_phase_kwargs)
        result = two_phase(
            machine,
            list(mix),
            WeightedInterferenceGraphPolicy(seed=seed),
            instructions=instructions,
            seed=seed,
            **kwargs,
        )
        points.append(
            SensitivityPoint(
                parameter=parameter,
                multiplier=float(multiplier),
                value=float(value),
                chosen_improvement=result.improvement(benchmark),
                oracle_improvement=result.oracle_improvement(benchmark),
                result=result,
            )
        )
    return points
