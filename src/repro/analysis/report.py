"""Paper-style rendering of experiment outputs.

These functions turn the :mod:`repro.analysis.figures` series into the
rows/series the paper's tables and figures report, as aligned text. The
benchmark harnesses print these so ``bench_output.txt`` reads like the
paper's evaluation section.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.perf.experiment import MixResult, PairwiseResult, SweepResult
from repro.utils.tables import format_bar_chart, format_percent, format_table

__all__ = [
    "render_pairwise",
    "render_table1",
    "render_sweep",
    "render_mix_comparison",
    "render_counter_series",
    "render_metrics",
]


def render_pairwise(result: PairwiseResult, title: str) -> str:
    """Figure 3-style rows: worst-case degradation per benchmark."""
    rows = []
    for name in result.names:
        partner, worst = result.worst_degradation(name)
        rows.append([name, partner, format_percent(worst)])
    return format_table(
        ["benchmark", "worst partner", "worst-case degradation"],
        rows,
        title=title,
    )


def render_table1(
    names: Sequence[str],
    mapping_times: Mapping,
    clock_hz: float,
    float_digits: int = 4,
) -> str:
    """Table 1: per-benchmark user times (seconds) under each mapping.

    The absolute values are simulated seconds under the scaled-down
    instruction budgets — only the relative ordering across mappings is
    meaningful (see EXPERIMENTS.md).
    """
    mappings = list(mapping_times)
    headers = ["benchmark"] + [str(m) for m in mappings]
    rows = []
    for name in names:
        rows.append(
            [name]
            + [mapping_times[m][name] / clock_hz for m in mappings]
        )
    return format_table(
        headers,
        rows,
        title="Table 1: user run times (s) per mapping",
        float_digits=float_digits,
    )


def render_sweep(sweep: SweepResult, title: str) -> str:
    """Figure 10/11/12-style rows: per-benchmark max and avg improvement.

    The extra oracle column (best achievable over the measured mappings)
    separates how much headroom the mixes offered from how much the
    policy captured.
    """

    def oracle_max(name: str) -> float:
        return max(
            r.oracle_improvement(name)
            for r in sweep.mix_results
            if name in r.names
        )

    rows = []
    for name in sweep.benchmarks():
        rows.append(
            [
                name,
                format_percent(sweep.max_improvement(name)),
                format_percent(sweep.avg_improvement(name)),
                format_percent(oracle_max(name)),
                len(sweep.improvements[name]),
            ]
        )
    table = format_table(
        ["benchmark", "max improvement", "avg improvement", "oracle max", "mixes"],
        rows,
        title=title,
    )
    bars = format_bar_chart(
        {n: 100.0 * sweep.max_improvement(n) for n in sweep.benchmarks()},
        title="max improvement (%)",
        unit="%",
    )
    return table + "\n\n" + bars


def render_mix_comparison(
    results_by_variant: Mapping[str, List[MixResult]], title: str
) -> str:
    """Figure 13/14-style rows: mean improvement per variant per mix."""
    variants = list(results_by_variant)
    any_results = results_by_variant[variants[0]]
    headers = ["mix"] + variants
    rows = []
    for i, base in enumerate(any_results):
        mix_label = "+".join(base.names)
        row: List = [mix_label]
        for variant in variants:
            r = results_by_variant[variant][i]
            mean_improvement = sum(r.improvement(n) for n in r.names) / len(r.names)
            row.append(format_percent(mean_improvement))
        rows.append(row)
    return format_table(headers, rows, title=title)


def render_counter_series(series, max_rows: int = 20) -> str:
    """Figure 2/5-style time series plus the headline statistics.

    Figure 2's claim: no event counter correlates well with the program's
    working set. Figure 5's claim: the CBF occupancy weight follows the
    process's true cache footprint (resident lines) closely.
    """
    n = len(series.true_footprint)
    step = max(1, n // max_rows)
    rows = []
    for i in range(0, n, step):
        rows.append(
            [
                i,
                series.true_footprint[i],
                series.resident_lines[i],
                series.occupancy_weight[i],
                series.l2_misses[i],
                series.tlb_misses[i],
                series.page_faults[i],
            ]
        )
    table = format_table(
        [
            "window",
            "true WS (lines)",
            "resident (lines)",
            "occupancy wt",
            "L2 miss",
            "TLB miss",
            "pg fault",
        ],
        rows,
        title="aim9-like workload: counters vs footprint over time",
    )
    corr = format_table(
        ["series", "corr. with working set"],
        [
            ["l2_misses", series.correlation("l2_misses")],
            ["tlb_misses", series.correlation("tlb_misses")],
            ["page_faults", series.correlation("page_faults")],
        ],
        title="Figure 2: counters vs true working set",
        float_digits=3,
    )
    fig5 = format_table(
        ["metric", "value"],
        [
            [
                "corr(occupancy, resident lines)",
                series.correlation("occupancy_weight", "resident_lines"),
            ],
            ["mean relative tracking error", series.tracking_error()],
        ],
        title="Figure 5: CBF occupancy vs true cache footprint",
        float_digits=3,
    )
    return table + "\n\n" + corr + "\n\n" + fig5


def render_metrics(
    snapshot: Mapping, title: str = "telemetry metrics"
) -> str:
    """Human summary table of a telemetry metrics snapshot.

    *snapshot* is :meth:`repro.telemetry.metrics.MetricsRegistry.snapshot`
    output. Counters and gauges render their value; histograms render
    count, sum and the busiest bucket, keeping the table scannable (the
    full bucket detail lives in the Prometheus/JSON exports).
    """

    def describe(metric: Mapping) -> str:
        if metric["type"] in ("counter", "gauge"):
            value = metric["value"]
            return f"{value:g}" if isinstance(value, float) else str(value)
        buckets = metric["buckets"]
        busiest, previous = "+Inf", 0
        top = -1
        for le, cumulative in buckets:
            width = cumulative - previous
            previous = cumulative
            if width > top:
                busiest, top = le, width
        return (
            f"n={metric['count']} sum={metric['sum']:.6g} "
            f"mode<={busiest}"
        )

    rows = [
        [name, snapshot[name]["type"], describe(snapshot[name])]
        for name in snapshot
    ]
    return format_table(["metric", "type", "value"], rows, title=title)
