"""Result handling: figure series builders, fairness metrics, persistence,
paper-style report rendering."""

from repro.analysis.export import counter_series_to_csv, sweep_to_csv, write_csv
from repro.analysis.fairness import (
    fairness_report,
    jain_index,
    slowdowns,
    unfairness,
)
from repro.analysis.figures import (
    POLICIES,
    CounterSeries,
    figure1_concept,
    figure2_counters_vs_footprint,
    figure3a_private_pairs,
    figure3b_shared_pairs,
    figure5_occupancy_tracking,
    figure10_native_sweep,
    figure12_parsec_sweep,
    figure13_algorithm_comparison,
    figure14_hash_comparison,
    table1_mapping_runtimes,
)
from repro.analysis.report import (
    render_counter_series,
    render_mix_comparison,
    render_pairwise,
    render_sweep,
    render_table1,
)
from repro.analysis.results import (
    load_json,
    mix_result_to_dict,
    save_json,
    to_jsonable,
)

__all__ = [
    "counter_series_to_csv",
    "sweep_to_csv",
    "write_csv",
    "fairness_report",
    "jain_index",
    "slowdowns",
    "unfairness",
    "POLICIES",
    "CounterSeries",
    "figure1_concept",
    "figure2_counters_vs_footprint",
    "figure3a_private_pairs",
    "figure3b_shared_pairs",
    "figure5_occupancy_tracking",
    "figure10_native_sweep",
    "figure12_parsec_sweep",
    "figure13_algorithm_comparison",
    "figure14_hash_comparison",
    "table1_mapping_runtimes",
    "render_counter_series",
    "render_mix_comparison",
    "render_pairwise",
    "render_sweep",
    "render_table1",
    "load_json",
    "mix_result_to_dict",
    "save_json",
    "to_jsonable",
]
