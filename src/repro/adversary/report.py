"""The adversarial fairness/robustness harness: :class:`AdversaryReport`.

For each adversary class (see :mod:`repro.adversary.generators`) the
harness builds a mixed workload — adversarial processes co-scheduled
with benign cache-sensitive victims — and scores an allocation policy
through the paper's own two-phase methodology at miniature scale (the
integration-test machine, where a few thousand references exercise the
whole cache):

* **phase 1**: the mix runs under the
  :class:`~repro.alloc.monitor.UserLevelMonitor` with real signature
  hardware attached; the majority decision is the chosen schedule.
* **phase 2**: every balanced mapping is measured exactly; the chosen
  schedule is scored against the per-task best and worst cases.

The *hardened* variant arms the full degradation stack: monitor
confidence thresholds (suspect/unusable verdicts with round-robin
fallback), a tighter saturation fraction, and the
:class:`~repro.estimate.gate.EstimateGate` probe — a mix whose address
streams are signature-aliased (collapsed hash-image ratio) is caught by
the gate, and the harness falls back to the safe round-robin placement
instead of trusting a signature the adversary controls. The
*unhardened* variant is yesterday's stack: it believes whatever the
filter says.

``worst_slowdown`` — the worst per-task ratio of chosen-schedule time
to best-achievable time — is the headline robustness metric: 1.0 means
the schedule is per-task optimal, and the hardened-minus-unhardened
delta is what ``benchmarks/bench_adversary_suite.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.adversary.generators import (
    AliasingGenerator,
    PhaseFlapGenerator,
    SaturatingGenerator,
    ThrashingGenerator,
)
from repro.alloc.monitor import UserLevelMonitor
from repro.errors import ConfigurationError
from repro.estimate.gate import EstimateGate
from repro.perf.experiment import (
    default_mapping_for,
    run_all_mappings,
    _phase1_scheduler_default,
)
from repro.cache.config import CacheConfig, CacheGeometry
from repro.perf.machine import MachineConfig
from repro.perf.runner import default_signature_config, run_mix
from repro.perf.timing import TimingModel
from repro.sched.process import SimTask
from repro.workloads.patterns import HotColdGenerator, PointerChaseGenerator

__all__ = [
    "ADVERSARY_KINDS",
    "HARDENED_DEFAULTS",
    "MixScore",
    "AdversaryReport",
    "VICTIM_NAMES",
    "adversary_machine",
    "adversary_mix",
    "score_adversary_mix",
    "run_adversary_suite",
]

#: Adversary classes the suite scores (``benign`` is the control).
ADVERSARY_KINDS: Tuple[str, ...] = (
    "benign",
    "aliasing",
    "saturating",
    "thrashing",
    "phase_flap",
)

#: The hardened monitor/gate configuration the suite evaluates. One
#: place, so benches, CLI and tests harden identically. The gate is
#: configured alias-only here: a static footprint cannot distinguish a
#: bomb from a large benign working set (mcf's natural region dwarfs any
#: filter), so saturation is left to the monitor's *runtime* confidence
#: path and the gate contributes the one check only it can do — the
#: hash-image collapse of a constructed aliasing stream.
HARDENED_DEFAULTS: Dict[str, float] = {
    # A mini-scale RBV refill ratio above ~0.22 of capacity means the
    # task is churning the filter far faster than any benign resident
    # working set (benign mixes peak near 0.07): flag it suspect.
    "confident_threshold": 0.78,
    # Full degradation only when the filter is effectively opaque.
    "unusable_threshold": 0.2,
    "saturation_fraction": 0.95,
    "gate_min_alias_ratio": 0.05,
}

#: Disjoint block-address slices for mix members (mirrors the runner's
#: per-task stride; adversarial generators with absolute addressing use
#: lanes instead).
_STRIDE_BLOCKS = 1 << 23

#: Names of the benign victims (the fairness metric keys on these).
VICTIM_NAMES: Tuple[str, ...] = ("victim-hot", "victim-chase")


def adversary_machine(cores: int = 2) -> MachineConfig:
    """The suite's miniature target: a 64 KB shared L2 'Core 2 Duo'.

    The same shrunken geometry the integration tests use — small enough
    that a mix of a few thousand references sweeps the whole cache (so
    thrashing, saturation and aliasing are *reachable*), with the real
    timing model so slowdowns are meaningful.
    """
    return MachineConfig(
        name="adversary-mini",
        num_cores=cores,
        l2=CacheConfig(
            name="mini-l2",
            geometry=CacheGeometry(
                size_bytes=64 * 1024, line_bytes=64, ways=8
            ),
        ),
        shared_l2=True,
        timing=TimingModel(),
    )


def _victim_tasks(machine: MachineConfig, instructions: int, seed: int) -> List[SimTask]:
    """The benign cache-sensitive co-runners every adversarial mix preys on.

    One hot/cold process (hot set a quarter of the cache, heavy reuse)
    and one pointer chaser (dependent accesses over a cache-resident
    region) — both run fast with their share of the cache and collapse
    when an attacker evicts it.
    """
    lines = machine.l2.geometry.num_lines
    accesses = max(1, int(instructions * 40.0 / 1000.0))
    return [
        SimTask(
            name=VICTIM_NAMES[0],
            generator=HotColdGenerator(
                max(8, lines // 2),
                max(4, lines // 4),
                hot_fraction=0.9,
                base_block=4 * _STRIDE_BLOCKS,
                seed=seed + 1,
            ),
            total_accesses=accesses,
            accesses_per_kinstr=40.0,
        ),
        SimTask(
            name=VICTIM_NAMES[1],
            generator=PointerChaseGenerator(
                max(8, lines // 4),
                base_block=5 * _STRIDE_BLOCKS,
                seed=seed + 2,
            ),
            total_accesses=accesses,
            accesses_per_kinstr=40.0,
        ),
    ]


def adversary_mix(
    kind: str,
    machine: MachineConfig,
    *,
    instructions: int = 150_000,
    seed: int = 0,
    signature_overrides: Optional[dict] = None,
) -> List[SimTask]:
    """Build one 4-task mix of *kind*: two attackers + two benign victims.

    Attack geometry is constructed against the machine's actual
    signature configuration (filter entry count) and shared-cache size,
    so the same mix definition scales with the target.
    """
    if kind not in ADVERSARY_KINDS:
        raise ConfigurationError(
            f"unknown adversary kind {kind!r}; expected one of {ADVERSARY_KINDS}"
        )
    sig = default_signature_config(machine, **(signature_overrides or {}))
    entries = sig.num_entries
    cache_lines = machine.l2.geometry.num_lines
    apki = 30.0
    accesses = max(1, int(instructions * apki / 1000.0))
    if kind == "benign":
        # Well-behaved co-runners: hot/cold reuse at two different
        # scales, comfortably inside the cache. No detector should fire.
        extras = [
            SimTask(
                name=f"benign-{i}",
                generator=HotColdGenerator(
                    max(8, cache_lines // (2 + 2 * i)),
                    max(4, cache_lines // (8 + 8 * i)),
                    hot_fraction=0.9,
                    base_block=(i + 1) * _STRIDE_BLOCKS,
                    seed=seed + 10 + i,
                ),
                total_accesses=accesses,
                accesses_per_kinstr=apki,
            )
            for i in range(2)
        ]
    elif kind == "aliasing":
        # Both twins fold onto one filter index, so after the first
        # observation window their RBV refill weight reads ~zero. In
        # truth the scan twin is a streaming thrasher sweeping most of
        # the cache. A weight-ranking policy files both twins as the
        # lightest tasks, groups the two genuinely-heavy victims
        # together on one core — and the thrasher then co-executes
        # against a victim at every instant (the victim-worst
        # schedule). The hot twin's lane starts where the scan twin's
        # r-range ends (no shared blocks).
        hot_region = min(64, entries // 2)
        scan_region = max(
            hot_region,
            min(entries - hot_region, (7 * cache_lines) // 8),
        )
        hot_lane = -(-scan_region // hot_region)
        extras = [
            SimTask(
                name="alias-scan",
                generator=AliasingGenerator(
                    entries, 37, scan_region, reuse="scan", lane=0,
                    seed=seed + 20,
                ),
                total_accesses=accesses,
                accesses_per_kinstr=apki,
                mlp=4.0,
            ),
            SimTask(
                name="alias-hot",
                generator=AliasingGenerator(
                    entries, 37, hot_region, reuse="hot", lane=hot_lane,
                    seed=seed + 21,
                ),
                total_accesses=accesses,
                accesses_per_kinstr=apki,
            ),
        ]
    elif kind == "saturating":
        extras = [
            SimTask(
                name=f"bomb-{i}",
                generator=SaturatingGenerator(
                    entries,
                    pressure=4.0,
                    base_block=(i + 1) * _STRIDE_BLOCKS,
                    seed=seed + 30 + i,
                ),
                total_accesses=accesses,
                accesses_per_kinstr=apki,
                mlp=4.0,
            )
            for i in range(2)
        ]
    elif kind == "thrashing":
        extras = [
            SimTask(
                name=f"thrash-{i}",
                generator=ThrashingGenerator(
                    cache_lines,
                    overshoot=1.25,
                    base_block=(i + 1) * _STRIDE_BLOCKS,
                    seed=seed + 40 + i,
                ),
                total_accesses=accesses,
                accesses_per_kinstr=apki,
                mlp=4.0,
            )
            for i in range(2)
        ]
    else:  # phase_flap
        extras = [
            SimTask(
                name=f"flapper-{i}",
                generator=PhaseFlapGenerator(
                    region_blocks=max(64, cache_lines // 4),
                    period=max(64, accesses // 16),
                    base_block=(i + 1) * _STRIDE_BLOCKS,
                    seed=seed + 50 + i,
                ),
                total_accesses=accesses,
                accesses_per_kinstr=apki,
            )
            for i in range(2)
        ]
    # Attackers first, victims last: the task-order round-robin default
    # (the degradation fallback) then pairs each attacker with one
    # victim. Group-mates *timeshare* — they never execute at the same
    # instant — so this placement caps every attacker's co-execution
    # time against the victims. It is the protective schedule the
    # hardened stack falls back to when it stops trusting signatures.
    return extras + _victim_tasks(machine, instructions, seed)


@dataclass(frozen=True)
class MixScore:
    """One (adversary class, policy, hardening) scoring outcome."""

    adversary: str
    policy: str
    hardened: bool
    #: Worst chosen/best time ratio over ALL tasks (attackers included).
    worst_slowdown: float
    #: Worst chosen/best time ratio over the benign victims only — the
    #: fairness headline: how badly does the schedule punish the
    #: innocent? An attacker slowing *itself* down is not a regression.
    victim_worst_slowdown: float
    avg_improvement: float
    degraded_invocations: int
    suspect_invocations: int
    gate_tripped: bool
    #: Chosen schedule as groups of mix-order task indices (attackers
    #: are 0..1, victims 2..3) — ``SimTask.tid`` values come from a
    #: process-global counter and would differ between runs.
    chosen_groups: Tuple[Tuple[int, ...], ...]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form for bench artifacts."""
        return {
            "adversary": self.adversary,
            "policy": self.policy,
            "hardened": self.hardened,
            "worst_slowdown": self.worst_slowdown,
            "victim_worst_slowdown": self.victim_worst_slowdown,
            "avg_improvement": self.avg_improvement,
            "degraded_invocations": self.degraded_invocations,
            "suspect_invocations": self.suspect_invocations,
            "gate_tripped": self.gate_tripped,
            "chosen_groups": [list(g) for g in self.chosen_groups],
        }


def score_adversary_mix(
    machine: MachineConfig,
    kind: str,
    policy,
    policy_name: str,
    *,
    hardened: bool,
    instructions: int = 150_000,
    seed: int = 0,
    monitor_interval: float = 4_000_000.0,
    phase1_min_wall: float = 40_000_000.0,
    signature_overrides: Optional[dict] = None,
    max_mappings: Optional[int] = None,
) -> MixScore:
    """Score one policy on one adversary class (see module docstring)."""
    tasks = adversary_mix(
        kind,
        machine,
        instructions=instructions,
        seed=seed,
        signature_overrides=signature_overrides,
    )
    sig = default_signature_config(machine, **(signature_overrides or {}))
    gate_tripped = False
    if hardened:
        monitor = UserLevelMonitor(
            policy,
            interval_cycles=monitor_interval,
            apply=True,
            signature_capacity=sig.num_entries,
            saturation_fraction=HARDENED_DEFAULTS["saturation_fraction"],
            num_hashes=sig.num_hashes,
            confident_threshold=HARDENED_DEFAULTS["confident_threshold"],
            unusable_threshold=HARDENED_DEFAULTS["unusable_threshold"],
        )
        # Alias-only configuration (see HARDENED_DEFAULTS): pressure
        # and confidence floors are left open because benign working
        # sets legitimately exceed any static footprint envelope.
        gate = EstimateGate(
            min_confidence=0.0,
            max_pressure=float("inf"),
            min_alias_ratio=HARDENED_DEFAULTS["gate_min_alias_ratio"],
            capacity=sig.num_entries,
            num_hashes=sig.num_hashes,
        )
        gate_tripped = gate.evaluate(machine, tasks) is not None
    else:
        monitor = UserLevelMonitor(
            policy,
            interval_cycles=monitor_interval,
            apply=True,
            signature_capacity=sig.num_entries,
        )
    run_mix(
        machine,
        tasks,
        monitor=monitor,
        signature_config=sig,
        scheduler_config=_phase1_scheduler_default(machine),
        seed=seed,
        min_wall_cycles=phase1_min_wall,
    )
    chosen = monitor.majority_mapping()
    if chosen is None or gate_tripped:
        # Degraded (or gate-rejected) mixes fall back to the safe
        # round-robin default — never a signature-derived schedule.
        chosen = default_mapping_for(tasks, machine.num_cores)
    times = run_all_mappings(
        machine, tasks, seed=seed, max_mappings=max_mappings
    )
    if chosen.canonical() not in times:
        # Lopsided phase-1 decisions fall outside the balanced reference
        # set; measure them explicitly (mirrors two_phase).
        result = run_mix(machine, tasks, mapping=chosen, seed=seed)
        times[chosen.canonical()] = {
            t.name: result.user_time(t.name) for t in tasks
        }
    chosen_times = times[chosen.canonical()]
    index_of = {task.tid: i for i, task in enumerate(tasks)}
    victims = set(VICTIM_NAMES)
    worst_slowdown = 1.0
    victim_worst_slowdown = 1.0
    improvements = []
    for task in tasks:
        best = min(t[task.name] for t in times.values())
        worst = max(t[task.name] for t in times.values())
        chosen_t = chosen_times[task.name]
        if best > 0:
            worst_slowdown = max(worst_slowdown, chosen_t / best)
            if task.name in victims:
                victim_worst_slowdown = max(
                    victim_worst_slowdown, chosen_t / best
                )
        if worst > 0:
            improvements.append((worst - chosen_t) / worst)
    suspects = sum(
        1
        for event in monitor.degradations
        if event["action"] == "proceed-suspect-signature"
    )
    return MixScore(
        adversary=kind,
        policy=policy_name,
        hardened=hardened,
        worst_slowdown=worst_slowdown,
        victim_worst_slowdown=victim_worst_slowdown,
        avg_improvement=(
            sum(improvements) / len(improvements) if improvements else 0.0
        ),
        degraded_invocations=len(monitor.degradations) - suspects,
        suspect_invocations=suspects,
        gate_tripped=gate_tripped,
        chosen_groups=tuple(
            tuple(index_of[t] for t in g)
            for g in chosen.canonical().groups
        ),
    )


@dataclass
class AdversaryReport:
    """All scores of one suite run, with the hardening deltas derived."""

    machine: str
    seed: int
    scores: List[MixScore] = field(default_factory=list)

    def add(self, score: MixScore) -> None:
        """Record one mix score."""
        self.scores.append(score)

    def _select(self, adversary: str, hardened: bool) -> List[MixScore]:
        return [
            s
            for s in self.scores
            if s.adversary == adversary and s.hardened == hardened
        ]

    def victim_worst_slowdown(self, adversary: str, hardened: bool) -> float:
        """Worst benign-victim slowdown across policies for one class."""
        selected = self._select(adversary, hardened)
        if not selected:
            raise ConfigurationError(
                f"no scores recorded for {adversary!r} hardened={hardened}"
            )
        return max(s.victim_worst_slowdown for s in selected)

    def delta(self, adversary: str) -> float:
        """Unhardened minus hardened victim slowdown (positive = win)."""
        return self.victim_worst_slowdown(
            adversary, False
        ) - self.victim_worst_slowdown(adversary, True)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form for ``BENCH_adversary_suite.json``."""
        adversaries = sorted({s.adversary for s in self.scores})
        return {
            "machine": self.machine,
            "seed": self.seed,
            "scores": [s.to_dict() for s in self.scores],
            "deltas": {
                adv: {
                    "unhardened_victim_worst_slowdown": (
                        self.victim_worst_slowdown(adv, False)
                    ),
                    "hardened_victim_worst_slowdown": (
                        self.victim_worst_slowdown(adv, True)
                    ),
                    "delta": self.delta(adv),
                }
                for adv in adversaries
                if self._select(adv, False) and self._select(adv, True)
            },
        }


def run_adversary_suite(
    machine: MachineConfig,
    policies: Sequence[Tuple[str, Callable[[], Any]]],
    *,
    kinds: Sequence[str] = ADVERSARY_KINDS,
    instructions: int = 150_000,
    seed: int = 0,
    signature_overrides: Optional[dict] = None,
    monitor_interval: float = 4_000_000.0,
    phase1_min_wall: float = 40_000_000.0,
) -> AdversaryReport:
    """Score every (adversary class, policy) cell, hardened and not.

    *policies* is a sequence of ``(name, factory)`` pairs; a fresh
    policy instance is built per cell so decision history never leaks
    between cells.
    """
    report = AdversaryReport(machine=machine.name, seed=seed)
    for kind in kinds:
        for name, factory in policies:
            for hardened in (False, True):
                report.add(
                    score_adversary_mix(
                        machine,
                        kind,
                        factory(),
                        name,
                        hardened=hardened,
                        instructions=instructions,
                        seed=seed,
                        monitor_interval=monitor_interval,
                        phase1_min_wall=phase1_min_wall,
                        signature_overrides=signature_overrides,
                    )
                )
    return report
