"""repro.adversary — adversarial workloads and the robustness harness.

The attack side of the robustness story: seeded generators constructed
against the stack's actual mechanisms (:mod:`repro.adversary.generators`
— signature aliasing, footprint bombs, LRU thrashers, phase flappers),
arrival traces that storm the online daemon
(:mod:`repro.adversary.arrivals`), and the scoring harness that measures
how gracefully the hardened scheduling stack degrades under each
(:mod:`repro.adversary.report`).

The defence side lives where the defended mechanisms live:
:func:`repro.core.signature.signature_confidence` and the
``assess_signature`` confidence verdicts, the
:class:`~repro.service.mapper.IncrementalMapper` flap guard, and the
:class:`~repro.estimate.gate.EstimateGate` backend-fallback valve.

Everything here is inside the simulation core's determinism scope:
generators draw exclusively from their seeded base-class rng, and two
suite runs with equal parameters produce identical reports.
"""

from repro.adversary.arrivals import admission_storm_trace, flap_storm_trace
from repro.adversary.generators import (
    AliasingGenerator,
    PhaseFlapGenerator,
    SaturatingGenerator,
    ThrashingGenerator,
    alias_preimages,
)
from repro.adversary.report import (
    ADVERSARY_KINDS,
    HARDENED_DEFAULTS,
    VICTIM_NAMES,
    AdversaryReport,
    MixScore,
    adversary_machine,
    adversary_mix,
    run_adversary_suite,
    score_adversary_mix,
)

__all__ = [
    "alias_preimages",
    "AliasingGenerator",
    "SaturatingGenerator",
    "ThrashingGenerator",
    "PhaseFlapGenerator",
    "flap_storm_trace",
    "admission_storm_trace",
    "ADVERSARY_KINDS",
    "HARDENED_DEFAULTS",
    "VICTIM_NAMES",
    "MixScore",
    "AdversaryReport",
    "adversary_machine",
    "adversary_mix",
    "score_adversary_mix",
    "run_adversary_suite",
]
