"""Adversarial arrival traces for the online scheduling service.

The benign arrival processes (:mod:`repro.workloads.arrivals`) model
open-system churn. These two model *attacks* on the daemon's adaptation
machinery:

* :func:`flap_storm_trace` — a stable population in which a few victim
  pids flip their workload profile on almost every event, far faster
  than the registry's EWMA window. Against an unguarded
  :class:`~repro.service.mapper.IncrementalMapper` every flip forces a
  full remap (a remap storm); the flap guard dampens exactly this shape.
* :func:`admission_storm_trace` — a sawtooth of admit-to-the-ceiling
  bursts followed by drain-to-the-floor retirements with near-zero
  gaps, the worst case for the admission queue and the drift counter.

Both return ordinary :class:`~repro.workloads.arrivals.ArrivalTrace`
values, replayable through :func:`repro.service.replay.run_replay`
exactly like the benign traces.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import WorkloadError
from repro.utils.rng import make_rng
from repro.workloads.arrivals import ArrivalTrace, _TraceBuilder, _validate
from repro.workloads.spec import spec_profile_names

__all__ = ["flap_storm_trace", "admission_storm_trace"]


class _AdversaryBuilder(_TraceBuilder):
    """Trace builder with *targeted* phase changes (victim pids)."""

    def flap(self, pid: int) -> None:
        """Flip *pid* to the next profile in pool order (deterministic)."""
        current = self.live[pid]
        candidates = [n for n in self.pool if n != current]
        if not candidates:
            raise WorkloadError("flapping needs at least two profiles")
        name = candidates[self.events[-1].seq % len(candidates)] if self.events else candidates[0]
        self.live[pid] = name
        self._emit("phase_change", pid, name)


def flap_storm_trace(
    num_events: int,
    seed: int,
    *,
    pool: Optional[Sequence[str]] = None,
    population: int = 6,
    flappers: int = 2,
    flap_fraction: float = 0.9,
    mean_interarrival: float = 0.01,
) -> ArrivalTrace:
    """A phase-flap attack: victim pids flip profiles on ~every event.

    The trace admits ``population`` processes, then emits
    ``flap_fraction`` of the remaining events as phase changes of the
    ``flappers`` lowest pids (round-robin over them) with tiny gaps —
    oscillation far faster than the EWMA/drift windows. The rest is
    light background churn so the population never goes fully static.
    """
    names = list(pool) if pool is not None else list(spec_profile_names())
    _validate(num_events, names, 1, max(population, 1), 0.0)
    if len(names) < 2:
        raise WorkloadError("flap storm needs at least two profiles")
    if population < 2:
        raise WorkloadError(f"population must be >= 2, got {population}")
    if not 1 <= flappers <= population:
        raise WorkloadError(
            f"flappers must be in [1, {population}], got {flappers}"
        )
    if not 0.0 < flap_fraction <= 1.0:
        raise WorkloadError(
            f"flap_fraction must be in (0, 1], got {flap_fraction}"
        )
    if mean_interarrival <= 0:
        raise WorkloadError(
            f"mean_interarrival must be > 0, got {mean_interarrival}"
        )
    builder = _AdversaryBuilder(make_rng(seed), names, 1, population)
    for _ in range(min(population, num_events)):
        builder.advance(mean_interarrival)
        builder.admit()
    victims = sorted(builder.live)[:flappers]
    turn = 0
    while len(builder.events) < num_events:
        builder.advance(mean_interarrival)
        if builder.rng.random() < flap_fraction:
            builder.flap(victims[turn % len(victims)])
            turn += 1
        else:
            # Background churn: replace one non-victim so the population
            # stays at the ceiling without ever retiring a victim.
            bystanders = [p for p in sorted(builder.live) if p not in victims]
            if bystanders and len(builder.live) >= population:
                pid = bystanders[int(builder.rng.integers(len(bystanders)))]
                name = builder.live.pop(pid)
                builder._emit("retire", pid, name)
            else:
                builder.admit()
    return ArrivalTrace(
        kind="flap_storm", seed=seed, events=tuple(builder.events)
    )


def admission_storm_trace(
    num_events: int,
    seed: int,
    *,
    pool: Optional[Sequence[str]] = None,
    min_live: int = 2,
    max_live: int = 12,
    burst_interarrival: float = 0.001,
) -> ArrivalTrace:
    """A sawtooth admission storm: fill to the ceiling, drain to the floor.

    Unlike :func:`repro.workloads.arrivals.bursty_trace` (probabilistic
    bursts), this is the deterministic worst case: every burst admits
    straight to ``max_live`` and every drain retires straight to
    ``min_live``, with near-zero gaps throughout — maximum queue
    pressure and maximum drift accumulation per full remap.
    """
    names = list(pool) if pool is not None else list(spec_profile_names())
    _validate(num_events, names, min_live, max_live, 0.0)
    if burst_interarrival <= 0:
        raise WorkloadError(
            f"burst_interarrival must be > 0, got {burst_interarrival}"
        )
    builder = _TraceBuilder(make_rng(seed), names, min_live, max_live)
    filling = True
    while len(builder.events) < num_events:
        builder.advance(burst_interarrival)
        if filling:
            builder.admit()
            if len(builder.live) >= max_live:
                filling = False
        else:
            builder.retire()
            if len(builder.live) <= min_live:
                filling = True
    return ArrivalTrace(
        kind="admission_storm", seed=seed, events=tuple(builder.events)
    )
