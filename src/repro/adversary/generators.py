"""Adversarial trace generators (the attack side of the robustness suite).

Each generator is a seeded, deterministic
:class:`~repro.workloads.base.TraceGenerator` constructed to violate one
assumption the scheduling stack rests on:

* :class:`AliasingGenerator` — attacks the **signature**: every address
  it emits XOR-folds to the *same* filter index (a constructed preimage
  family of :class:`~repro.core.hashes.XorFoldHash`), so processes with
  wildly different true reuse present identical CBF images and the
  symbiosis estimate carries no signal.
* :class:`SaturatingGenerator` — attacks the **filter capacity**: a
  footprint bomb touching far more distinct blocks than the filter has
  entries, driving occupancy to saturation where popcount stops
  discriminating.
* :class:`ThrashingGenerator` — attacks the **cache**: a cyclic
  sequential sweep over a region just larger than the shared cache, the
  textbook LRU worst case (every access misses, co-runners are evicted
  wholesale).
* :class:`PhaseFlapGenerator` — attacks the **adaptation windows**: its
  reference stream oscillates between two disjoint hot regions faster
  than the registry's EWMA can converge, so every observation window
  sees a different footprint.

All generators derive their randomness exclusively from the seeded base
class — they are part of the simulation core's determinism scope
(``SIM_CORE_PACKAGES``), and two constructions with equal parameters
produce byte-identical streams.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.utils.validation import require_positive, require_power_of_two
from repro.workloads.base import TraceGenerator

__all__ = [
    "alias_preimages",
    "AliasingGenerator",
    "SaturatingGenerator",
    "ThrashingGenerator",
    "PhaseFlapGenerator",
]


def alias_preimages(
    num_entries: int,
    target_index: int,
    count: int,
    *,
    lane: int = 0,
    spread: int = 1,
) -> np.ndarray:
    """*count* distinct block addresses folding into a tiny index band.

    With ``b = log2(num_entries)`` the XOR fold of an address is the XOR
    of its ``b``-bit chunks. For any ``r < num_entries`` and target
    ``t``, the address ``(r << b) | (t ^ r)`` has exactly two non-zero
    chunks — ``r`` and ``t ^ r`` — whose XOR is ``t``. Distinct ``r``
    values give distinct addresses, so the family yields up to
    ``num_entries`` colliding blocks per target index.

    ``spread`` widens the attack from one index to the band
    ``[target_index, target_index + spread)``: block *i* folds to
    ``target_index + (i % spread)``. A spread-``s`` stream presents at
    most ``s`` filter indices no matter how many distinct blocks it
    touches — the under-reported-footprint disguise.

    ``lane`` partitions the ``r`` space: lane *k* draws ``r`` from
    ``[k*count, (k+1)*count)``, so several co-scheduled aliasing
    processes collide on the same index band without ever sharing a
    block. Requires ``(lane + 1) * count <= num_entries``.
    """
    require_power_of_two(num_entries, "num_entries")
    require_positive(count, "count")
    require_positive(spread, "spread")
    bits = num_entries.bit_length() - 1
    if bits == 0:
        raise WorkloadError("aliasing needs num_entries >= 2")
    if bits > 24:
        raise WorkloadError(
            "preimage construction needs 2*log2(num_entries) <= 48 fold bits"
        )
    if not 0 <= target_index < num_entries:
        raise WorkloadError(
            f"target_index {target_index} out of range for {num_entries} entries"
        )
    if target_index + spread > num_entries:
        raise WorkloadError(
            f"index band [{target_index}, {target_index + spread}) exceeds "
            f"{num_entries} entries"
        )
    if lane < 0:
        raise WorkloadError(f"lane must be >= 0, got {lane}")
    if (lane + 1) * count > num_entries:
        raise WorkloadError(
            f"lane {lane} with {count} preimages exceeds the {num_entries} "
            "distinct r values available"
        )
    r = lane * count + np.arange(count, dtype=np.int64)
    targets = np.int64(target_index) + (
        np.arange(count, dtype=np.int64) % spread
    )
    return (r << bits) | (targets ^ r)


class AliasingGenerator(TraceGenerator):
    """Signature-aliasing stream: one CBF index, configurable true reuse.

    Two instances with the same ``num_entries``/``target_index`` but
    different ``reuse`` behave identically to the signature unit (one
    filter index, indistinguishable occupancy) while imposing completely
    different cache pressure — the construction that breaks
    signature-based symbiosis estimation.

    Parameters
    ----------
    num_entries:
        Filter size the attack is constructed against (power of two, the
        target machine's ``SignatureConfig.num_entries``).
    target_index:
        Filter index every emitted block folds to.
    region_blocks:
        Distinct colliding blocks in the stream's working set.
    reuse:
        ``'scan'`` — cyclic sequential sweep over the region (streaming,
        zero temporal reuse); ``'hot'`` — most accesses hit a small hot
        subset (strong reuse). Both present the same signature.
    hot_fraction:
        Fraction of the region forming the hot subset (``'hot'`` only).
    lane:
        Address-space lane (see :func:`alias_preimages`); give each
        co-scheduled aliasing process its own lane.
    spread:
        Width of the filter-index band the stream folds into (see
        :func:`alias_preimages`); the stream's apparent footprint.
    """

    REUSE_KINDS = ("scan", "hot")

    def __init__(
        self,
        num_entries: int,
        target_index: int = 0,
        region_blocks: int = 256,
        reuse: str = "scan",
        hot_fraction: float = 0.125,
        lane: int = 0,
        spread: int = 1,
        base_block: int = 0,
        seed: int = 0,
    ):
        if base_block != 0:
            raise WorkloadError(
                "AliasingGenerator constructs absolute addresses; "
                "base_block must stay 0 (use lane for disjoint slices)"
            )
        if reuse not in self.REUSE_KINDS:
            raise WorkloadError(
                f"reuse must be one of {self.REUSE_KINDS}, got {reuse!r}"
            )
        if not 0.0 < hot_fraction <= 1.0:
            raise WorkloadError(
                f"hot_fraction must be in (0, 1], got {hot_fraction}"
            )
        super().__init__(base_block=base_block, seed=seed)
        self.num_entries = num_entries
        self.target_index = target_index
        self.region_blocks = require_positive(region_blocks, "region_blocks")
        self.reuse = reuse
        self.hot_fraction = hot_fraction
        self.lane = lane
        self.spread = spread
        self._blocks = alias_preimages(
            num_entries, target_index, region_blocks, lane=lane, spread=spread
        )
        self._hot_count = max(1, int(region_blocks * hot_fraction))
        self._pos = 0

    def _restart(self) -> None:
        self._pos = 0

    def _generate(self, n: int) -> np.ndarray:
        if self.reuse == "scan":
            idx = (self._pos + np.arange(n, dtype=np.int64)) % self.region_blocks
            self._pos = (self._pos + n) % self.region_blocks
            return self._blocks[idx]
        # 'hot': ~90% of accesses in the hot subset, rest cold uniform.
        hot = self._rng.random(n) < 0.9
        idx = np.where(
            hot,
            self._rng.integers(0, self._hot_count, n),
            self._rng.integers(0, self.region_blocks, n),
        )
        return self._blocks[idx]


class SaturatingGenerator(TraceGenerator):
    """CBF footprint bomb: touches vastly more blocks than filter entries.

    A uniform stream over a region sized as a multiple of the target
    filter drives nearly every counter non-zero, saturating occupancy —
    after which the signature's popcount conveys nothing about the
    process's true working set.

    Parameters
    ----------
    filter_entries:
        Filter size the bomb is sized against.
    pressure:
        Region size as a multiple of ``filter_entries``.
    """

    def __init__(
        self,
        filter_entries: int,
        pressure: float = 4.0,
        base_block: int = 0,
        seed: int = 0,
    ):
        super().__init__(base_block=base_block, seed=seed)
        require_positive(filter_entries, "filter_entries")
        if pressure <= 0:
            raise WorkloadError(f"pressure must be > 0, got {pressure}")
        self.filter_entries = filter_entries
        self.pressure = pressure
        self.region_blocks = max(1, int(filter_entries * pressure))

    def _generate(self, n: int) -> np.ndarray:
        return self._rng.integers(0, self.region_blocks, n, dtype=np.int64)


class ThrashingGenerator(TraceGenerator):
    """LRU worst case: cyclic sequential sweep just wider than the cache.

    Every access misses (the line it needs was evicted exactly
    ``region_blocks`` accesses ago) and each miss evicts a co-runner's
    line — maximum interference per reference.

    Parameters
    ----------
    cache_lines:
        Shared-cache capacity in lines the sweep is sized against.
    overshoot:
        Region size as a multiple of ``cache_lines`` (> 1 guarantees the
        reuse distance exceeds capacity).
    """

    def __init__(
        self,
        cache_lines: int,
        overshoot: float = 1.25,
        base_block: int = 0,
        seed: int = 0,
    ):
        super().__init__(base_block=base_block, seed=seed)
        require_positive(cache_lines, "cache_lines")
        if overshoot <= 1.0:
            raise WorkloadError(
                f"overshoot must be > 1.0 to defeat LRU, got {overshoot}"
            )
        self.cache_lines = cache_lines
        self.overshoot = overshoot
        self.region_blocks = max(2, int(cache_lines * overshoot))
        self._pos = 0

    def _restart(self) -> None:
        self._pos = 0

    def _generate(self, n: int) -> np.ndarray:
        rel = (self._pos + np.arange(n, dtype=np.int64)) % self.region_blocks
        self._pos = (self._pos + n) % self.region_blocks
        return rel


class PhaseFlapGenerator(TraceGenerator):
    """Oscillates between two disjoint hot regions faster than the EWMA.

    The stream alternates every ``period`` accesses between region A and
    region B (disjoint, each ``region_blocks`` wide). An observation
    window longer than ``period`` sees a blend of both regions and the
    EWMA never converges; a mapper trusting each sample chases a moving
    target (the flap-attack input for the
    :class:`~repro.service.mapper.IncrementalMapper` guard).

    Parameters
    ----------
    region_blocks:
        Width of each hot region.
    period:
        Accesses spent in one region before flipping.
    """

    def __init__(
        self,
        region_blocks: int = 512,
        period: int = 256,
        base_block: int = 0,
        seed: int = 0,
    ):
        super().__init__(base_block=base_block, seed=seed)
        self.region_blocks = require_positive(region_blocks, "region_blocks")
        self.period = require_positive(period, "period")
        self._pos = 0

    def _restart(self) -> None:
        self._pos = 0

    def _generate(self, n: int) -> np.ndarray:
        offsets = self._rng.integers(0, self.region_blocks, n, dtype=np.int64)
        ticks = self._pos + np.arange(n, dtype=np.int64)
        phase = (ticks // self.period) % 2
        self._pos += n
        # Region B sits one full region above A (disjoint hot sets).
        return offsets + phase * self.region_blocks
