"""Write-ahead journal of completed run specs (checkpoint/resume).

An hours-long sweep interrupted at 90% should re-execute 10%, not 100%.
The journal is the crash-safe record that makes that possible: one
append-only file where every *completed* spec is recorded as a single
JSON line *before* its outcome is reported to the caller::

    {"version": 1, "key": "<sha256>", "outcome": {...}}\n

Recovery rules (what makes it a WAL rather than a log):

* every record is written as one ``write()`` of a full line, flushed and
  ``fsync``-ed before :meth:`RunJournal.record` returns — a completed
  spec survives a power loss;
* :meth:`RunJournal.load` tolerates a torn tail: a final line without a
  newline terminator, or any line that does not parse as a valid record,
  is skipped (and counted in :attr:`RunJournal.corrupt_lines`) — an
  interrupted append never poisons the journal;
* duplicate keys are benign (last record wins) — re-running a batch that
  partially journaled is idempotent.

The journal is *per sweep run* and self-contained (outcomes inline), so
resuming needs neither the result cache nor re-execution of finished
specs; the orchestrator consults it before the cache.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

from repro.errors import ConfigurationError
from repro.jobs.keys import canonical_json

__all__ = ["JOURNAL_SCHEMA_VERSION", "RunJournal"]

#: Version of the journal line schema; bump to orphan old journals.
JOURNAL_SCHEMA_VERSION = 1


class RunJournal:
    """Append-only record of completed spec keys and their outcomes.

    Parameters
    ----------
    path:
        Journal file; created (with parents) on the first record. An
        existing directory at this path is rejected immediately.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        if self.path.exists() and self.path.is_dir():
            raise ConfigurationError(
                f"journal path {self.path} is a directory"
            )
        self.corrupt_lines = 0
        self.records_written = 0

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Replay the journal: key -> outcome for every intact record.

        Torn or garbled lines (interrupted appends, disk corruption) are
        skipped and counted — never raised — so a crashed sweep's journal
        always loads.
        """
        replayed: Dict[str, Dict[str, Any]] = {}
        self.corrupt_lines = 0
        try:
            text = self.path.read_text(encoding="ascii")
        except FileNotFoundError:
            return replayed
        except (OSError, UnicodeDecodeError):
            self.corrupt_lines += 1
            return replayed
        for line in text.split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if record["version"] != JOURNAL_SCHEMA_VERSION:
                    raise ValueError("journal schema mismatch")
                key = record["key"]
                outcome = record["outcome"]
                if not isinstance(key, str) or not isinstance(outcome, dict):
                    raise ValueError("malformed journal record")
            except (ValueError, KeyError, TypeError):
                self.corrupt_lines += 1
                continue
            replayed[key] = outcome
        return replayed

    def record(self, key: str, outcome: Dict[str, Any]) -> None:
        """Durably append one completed spec (single line, fsynced).

        The line is fully serialised before the file is touched, written
        with one ``write`` call, flushed and fsynced — so a crash leaves
        at worst one torn *trailing* line, which :meth:`load` skips. If
        the file already ends in a torn line (a previous run died
        mid-append), a newline is prefixed first so the fragment stays
        isolated instead of corrupting this record too.
        """
        line = (
            canonical_json(
                {
                    "version": JOURNAL_SCHEMA_VERSION,
                    "key": key,
                    "outcome": outcome,
                }
            )
            + "\n"
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._tail_is_torn():
            line = "\n" + line
        with open(self.path, "a", encoding="ascii") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self.records_written += 1

    def _tail_is_torn(self) -> bool:
        """True when the journal exists, is non-empty, and lacks a final
        newline — the signature of an append interrupted mid-write."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (FileNotFoundError, OSError):
            return False

    def __len__(self) -> int:
        """Number of intact records currently in the journal file."""
        return len(self.load())

    def __repr__(self) -> str:
        return f"RunJournal({str(self.path)!r})"
