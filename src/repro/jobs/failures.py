"""Structured failure and degradation reporting for keep-going sweeps.

A fail-fast sweep aborts on the first bad mix; a *keep-going* sweep
finishes everything it can and salvages the rest into data. Three records
carry that salvage:

* :class:`JobFailure` — one spec that gave up (deterministic error, retry
  budget exhausted, or timeout), with its attempt count and wall time. In
  keep-going mode the pool/orchestrator return these **in the result
  slot** of the failed job instead of raising.
* :class:`MixFailure` — a whole mix that could not produce a result
  (a phase-2 measurement failed), with the underlying error.
* :class:`MixDegradation` — a mix that completed *degraded*: its phase-1
  signature was unhealthy or crashed, so it fell back to the default
  schedule; the events name what went wrong.

:class:`FailureReport` aggregates them per sweep and renders the one-line
summary the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

__all__ = ["JobFailure", "MixFailure", "MixDegradation", "FailureReport"]


@dataclass(frozen=True)
class JobFailure:
    """One spec's terminal failure (returned in its result slot).

    Parameters
    ----------
    error:
        Human-readable cause (exception text, 'worker crashed', ...).
    attempts:
        Execution attempts charged before giving up.
    wall_time:
        Seconds attributable to the failed attempts (best effort).
    index:
        Position in the submitted batch (-1 when not applicable).
    key:
        Content-addressed spec key ('' at pool level, filled by the
        orchestrator).
    kind:
        Failure classification: ``'error'`` (deterministic exception),
        ``'crash'``, ``'timeout'``, ``'hung'``, ``'over_budget'``,
        ``'short_circuited'`` (open circuit breaker) or
        ``'quarantined'`` (persisted poison denylist).
    """

    error: str
    attempts: int = 1
    wall_time: float = 0.0
    index: int = -1
    key: str = ""
    kind: str = "error"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form (for reports and logs)."""
        return {
            "error": self.error,
            "attempts": self.attempts,
            "wall_time": self.wall_time,
            "index": self.index,
            "key": self.key,
            "kind": self.kind,
        }


@dataclass(frozen=True)
class MixFailure:
    """One mix that produced no usable result in a keep-going sweep."""

    mix: Tuple[str, ...]
    error: str
    attempts: int = 1
    wall_time: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form."""
        return {
            "mix": list(self.mix),
            "error": self.error,
            "attempts": self.attempts,
            "wall_time": self.wall_time,
        }


@dataclass(frozen=True)
class MixDegradation:
    """One mix that completed on the default-schedule fallback.

    ``events`` carries the monitor's structured degradation events (or a
    synthesized one when phase 1 itself crashed) so the report names the
    failing signature, not just the mix.
    """

    mix: Tuple[str, ...]
    events: Tuple[Dict[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form."""
        return {"mix": list(self.mix), "events": list(self.events)}


@dataclass
class FailureReport:
    """Everything a keep-going sweep salvaged about its failures."""

    failures: List[MixFailure] = field(default_factory=list)
    degradations: List[MixDegradation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the sweep saw neither failures nor degradations."""
        return not self.failures and not self.degradations

    def failed_mixes(self) -> List[Tuple[str, ...]]:
        """Mixes that produced no result."""
        return [f.mix for f in self.failures]

    def degraded_mixes(self) -> List[Tuple[str, ...]]:
        """Mixes that fell back to the default schedule."""
        return [d.mix for d in self.degradations]

    def add_failure(self, failure: MixFailure) -> None:
        """Record one failed mix."""
        self.failures.append(failure)

    def add_degradation(self, degradation: MixDegradation) -> None:
        """Record one degraded mix."""
        self.degradations.append(degradation)

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        if self.ok:
            return "failures: none"
        parts = []
        if self.failures:
            names = ", ".join("+".join(m) for m in self.failed_mixes())
            parts.append(f"{len(self.failures)} failed mix(es): {names}")
        if self.degradations:
            names = ", ".join("+".join(m) for m in self.degraded_mixes())
            parts.append(
                f"{len(self.degradations)} degraded mix(es): {names}"
            )
        return "failures: " + "; ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form."""
        return {
            "failures": [f.to_dict() for f in self.failures],
            "degradations": [d.to_dict() for d in self.degradations],
        }
