"""Parallel experiment orchestration with content-addressed caching.

The paper's evaluation is thousands of independent simulations (every
balanced mapping of every mix, twice over for the VM experiments). This
subpackage turns each simulation into a declarative, picklable
:class:`~repro.jobs.spec.RunSpec` — pure data with a stable SHA-256 key —
and provides the machinery to execute batches of them:

* :mod:`repro.jobs.spec` — run specifications, their executor, and the
  JSON-safe :class:`~repro.jobs.spec.RunOutcome` summaries;
* :mod:`repro.jobs.keys` — canonical JSON and content-addressed keys;
* :mod:`repro.jobs.cache` — an atomic, corruption-tolerant on-disk
  result cache keyed by spec hash;
* :mod:`repro.jobs.pool` — a crash-recovering process pool with
  deterministic result ordering, per-job-start timeouts and an optional
  keep-going mode;
* :mod:`repro.jobs.journal` — a write-ahead journal of completed specs
  (checkpoint/resume for interrupted sweeps);
* :mod:`repro.jobs.failures` — structured failure/degradation records
  (:class:`~repro.jobs.failures.FailureReport`) for keep-going sweeps;
* :mod:`repro.jobs.events` — structured progress/telemetry events;
* :mod:`repro.jobs.orchestrator` — the facade tying it together:
  dedupe, journal replay, cache check, fan-out, event reporting.

The experiment drivers (:mod:`repro.perf.experiment`,
:mod:`repro.virt.dom0`) accept an optional ``orchestrator=`` argument;
passing one routes their simulations through this subsystem (parallel
and cached), while the default ``None`` preserves the serial in-process
code path exactly.
"""

from __future__ import annotations

from repro.jobs.cache import CACHE_SCHEMA_VERSION, CacheStats, ResultCache
from repro.jobs.events import EVENT_KINDS, EventCounters, EventLog, JobEvent
from repro.jobs.failures import (
    FailureReport,
    JobFailure,
    MixDegradation,
    MixFailure,
)
from repro.jobs.journal import JOURNAL_SCHEMA_VERSION, RunJournal
from repro.jobs.keys import SPEC_SCHEMA_VERSION, canonical_json, spec_key
from repro.jobs.orchestrator import Orchestrator
from repro.jobs.pool import WorkerPool
from repro.jobs.spec import (
    MonitorSpec,
    RunOutcome,
    RunSpec,
    TaskOutcome,
    WorkloadSpec,
    execute_spec,
    make_run_spec,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "SPEC_SCHEMA_VERSION",
    "JOURNAL_SCHEMA_VERSION",
    "EVENT_KINDS",
    "CacheStats",
    "ResultCache",
    "RunJournal",
    "FailureReport",
    "JobFailure",
    "MixDegradation",
    "MixFailure",
    "EventCounters",
    "EventLog",
    "JobEvent",
    "canonical_json",
    "spec_key",
    "Orchestrator",
    "WorkerPool",
    "MonitorSpec",
    "RunOutcome",
    "RunSpec",
    "TaskOutcome",
    "WorkloadSpec",
    "execute_spec",
    "make_run_spec",
]
