"""Content-addressed keys for run specifications.

A :class:`~repro.jobs.spec.RunSpec` is pure data, so two specs describing
the same simulation serialise to the same canonical JSON document and
therefore hash to the same SHA-256 key — across processes, machines and
Python hash-randomisation seeds. The key is what the result cache and the
batch deduplication are addressed by, which makes the determinism
guarantee load-bearing:

* dictionaries are serialised with sorted keys and no whitespace;
* floats use ``repr``-style shortest round-trip formatting (the CPython
  ``json`` default), so bit-identical floats produce identical text;
* NaN/Infinity are rejected (``allow_nan=False``) — a spec containing
  them has no canonical form;
* the digest is domain-separated with a versioned prefix so a schema bump
  invalidates every old key at once.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import JobError

__all__ = ["SPEC_SCHEMA_VERSION", "canonical_json", "spec_key"]

#: Version of the RunSpec wire schema; bumping it invalidates all keys.
SPEC_SCHEMA_VERSION = 1

#: Domain-separation prefix folded into every digest.
_KEY_DOMAIN = b"repro.jobs.spec/v%d\x00" % SPEC_SCHEMA_VERSION


def canonical_json(obj: Any) -> str:
    """Serialise *obj* to its unique canonical JSON text.

    Only JSON-native types (dict/list/str/int/float/bool/None) are
    accepted; anything else — including NaN and Infinity — raises
    :class:`~repro.errors.JobError`, because such values have no stable
    canonical encoding.
    """
    try:
        return json.dumps(
            obj,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise JobError(f"object has no canonical JSON form: {exc}") from exc


def spec_key(spec: Any) -> str:
    """SHA-256 hex key of a run spec (or any canonical-JSON-able dict).

    Accepts either a :class:`~repro.jobs.spec.RunSpec` (anything with a
    ``to_dict`` method) or a plain dictionary.
    """
    payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
    digest = hashlib.sha256()
    digest.update(_KEY_DOMAIN)
    digest.update(canonical_json(payload).encode("ascii"))
    return digest.hexdigest()
