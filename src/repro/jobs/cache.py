"""On-disk, content-addressed result cache for simulation runs.

Layout: ``<root>/<key[:2]>/<key>.json`` — two-character fan-out keeps
directories small for large sweeps. Each file is a versioned envelope::

    {"version": 1, "key": "<sha256>", "spec": {...}, "outcome": {...}}

Guarantees:

* **Atomic writes** — results are written to a temporary file in the
  destination directory and published with ``os.replace``, so readers
  never observe a torn file and concurrent writers of the same key
  simply race to install identical bytes.
* **Corruption tolerance** — unreadable, truncated, mis-keyed or
  wrong-version entries are treated as misses (and counted), never
  raised; the next ``put`` overwrites them.
* **Versioned schema** — :data:`CACHE_SCHEMA_VERSION` is embedded in the
  envelope; bumping it orphans old entries instead of misreading them.

The cache stores *summaries* (the picklable/JSON outcome of a run), not
simulator objects, so entries are stable across refactors of the live
code paths as long as the spec schema holds.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.jobs.keys import canonical_json

__all__ = ["CACHE_SCHEMA_VERSION", "CacheStats", "ResultCache"]

#: Version of the on-disk envelope; bump to orphan incompatible entries.
CACHE_SCHEMA_VERSION = 1


@dataclass
class CacheStats:
    """Read/write tallies of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0


class ResultCache:
    """Content-addressed store of run outcomes under one root directory.

    Parameters
    ----------
    root:
        Cache directory; created on first write. An existing
        non-directory path is rejected immediately rather than failing
        with an opaque error on the first write mid-sweep.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ConfigurationError(
                f"cache root {self.root} exists and is not a directory"
            )
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Filesystem path of a key's envelope."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached outcome for *key*, or ``None`` on a miss.

        Every failure mode — missing file, unreadable bytes, invalid
        JSON, version or key mismatch, missing outcome field — is a miss;
        corrupt entries additionally bump ``stats.corrupt``.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="ascii")
        except (FileNotFoundError, NotADirectoryError):
            self.stats.misses += 1
            return None
        except (OSError, UnicodeDecodeError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        try:
            envelope = json.loads(text)
            if envelope["version"] != CACHE_SCHEMA_VERSION:
                raise ValueError("schema version mismatch")
            if envelope["key"] != key:
                raise ValueError("key mismatch")
            outcome = envelope["outcome"]
            if not isinstance(outcome, dict):
                raise ValueError("outcome is not an object")
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return outcome

    def put(self, key: str, spec: Dict[str, Any], outcome: Dict[str, Any]) -> Path:
        """Atomically store *outcome* (and its spec, for auditing).

        The envelope is staged in a temporary file within the target
        directory and installed with ``os.replace`` so a crash mid-write
        never leaves a partially written entry under the final name.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "version": CACHE_SCHEMA_VERSION,
            "key": key,
            "spec": spec,
            "outcome": outcome,
        }
        text = canonical_json(envelope)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="ascii") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path
