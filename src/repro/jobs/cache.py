"""On-disk, content-addressed result cache for simulation runs.

Layout: ``<root>/<key[:2]>/<key>.json`` — two-character fan-out keeps
directories small for large sweeps. Each file is a versioned envelope::

    {"version": 1, "key": "<sha256>", "spec": {...}, "outcome": {...}}

Guarantees:

* **Atomic, durable writes** — results are written to a temporary file
  in the destination directory, ``fsync``-ed, and published with
  ``os.replace``, so readers never observe a torn file, a power loss
  cannot leave a zero-length "committed" entry, and concurrent writers
  of the same key simply race to install identical bytes.
* **Corruption tolerance with quarantine** — unreadable, truncated,
  mis-keyed or wrong-version entries are treated as misses (and
  counted), never raised; the offending file is renamed to
  ``<name>.json.corrupt`` so the evidence survives for post-mortems
  while the entry is transparently recomputed. The first quarantine per
  cache instance is logged at warning level, the rest at debug — one
  loud signal, no log spam.
* **Versioned schema** — :data:`CACHE_SCHEMA_VERSION` is embedded in the
  envelope; bumping it orphans old entries instead of misreading them.

The cache stores *summaries* (the picklable/JSON outcome of a run), not
simulator objects, so entries are stable across refactors of the live
code paths as long as the spec schema holds.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.jobs.keys import canonical_json

__all__ = ["CACHE_SCHEMA_VERSION", "CacheStats", "ResultCache"]

logger = logging.getLogger(__name__)

#: Version of the on-disk envelope; bump to orphan incompatible entries.
CACHE_SCHEMA_VERSION = 1


@dataclass
class CacheStats:
    """Read/write tallies of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    quarantined: int = 0
    writes: int = 0


class ResultCache:
    """Content-addressed store of run outcomes under one root directory.

    Parameters
    ----------
    root:
        Cache directory; created on first write. An existing
        non-directory path is rejected immediately rather than failing
        with an opaque error on the first write mid-sweep.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ConfigurationError(
                f"cache root {self.root} exists and is not a directory"
            )
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Filesystem path of a key's envelope."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached outcome for *key*, or ``None`` on a miss.

        Every failure mode — missing file, unreadable bytes, invalid
        JSON, version or key mismatch, missing outcome field — is a miss;
        corrupt entries additionally bump ``stats.corrupt`` and are
        quarantined (renamed to ``<name>.json.corrupt``) so the evidence
        survives while the next ``put`` reinstalls a clean entry.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="ascii")
        except (FileNotFoundError, NotADirectoryError):
            self.stats.misses += 1
            return None
        except (OSError, UnicodeDecodeError) as exc:
            self.stats.misses += 1
            self._quarantine(path, f"unreadable: {exc}")
            return None
        try:
            envelope = json.loads(text)
            if envelope["version"] != CACHE_SCHEMA_VERSION:
                raise ValueError("schema version mismatch")
            if envelope["key"] != key:
                raise ValueError("key mismatch")
            outcome = envelope["outcome"]
            if not isinstance(outcome, dict):
                raise ValueError("outcome is not an object")
        except (ValueError, KeyError, TypeError) as exc:
            self.stats.misses += 1
            self._quarantine(path, str(exc))
            return None
        self.stats.hits += 1
        return outcome

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside (``.corrupt`` suffix) and count it.

        The destination name is collision-proof: a key corrupted twice
        (recomputed after the first quarantine, then corrupted again)
        lands in ``<name>.corrupt.1``, ``.corrupt.2``, … instead of
        ``os.replace`` silently overwriting the earlier evidence.

        The first quarantine per cache instance logs at warning level so
        the operator sees one loud signal; subsequent ones log at debug.
        Rename failures (e.g. the file vanished under us) are swallowed —
        quarantine is best-effort evidence preservation, never an error.
        """
        self.stats.corrupt += 1
        level = logging.WARNING if self.stats.quarantined == 0 else logging.DEBUG
        target = path.with_name(path.name + ".corrupt")
        counter = 0
        while target.exists():
            counter += 1
            target = path.with_name(f"{path.name}.corrupt.{counter}")
        try:
            # Quarantine is best-effort evidence preservation: the entry is
            # already corrupt, so losing the rename in a crash costs nothing
            # — the durable fsync-then-replace protocol (RPR201) is only
            # required on the publish path in put().
            os.replace(path, target)  # repro: noqa[RPR201]
        except OSError:
            return
        self.stats.quarantined += 1
        logger.log(
            level,
            "quarantined corrupt cache entry %s (%s)",
            path,
            reason,
        )

    def put(self, key: str, spec: Dict[str, Any], outcome: Dict[str, Any]) -> Path:
        """Atomically store *outcome* (and its spec, for auditing).

        The envelope is staged in a temporary file within the target
        directory, flushed and ``fsync``-ed, then installed with
        ``os.replace`` — so a crash mid-write never leaves a partially
        written entry under the final name, and a power loss immediately
        after the replace cannot surface a committed-but-empty file.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "version": CACHE_SCHEMA_VERSION,
            "key": key,
            "spec": spec,
            "outcome": outcome,
        }
        text = canonical_json(envelope)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="ascii") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path
