"""Structured progress/telemetry events for the job orchestrator.

The orchestrator and the worker pool narrate a batch's life cycle as
:class:`JobEvent` records — submitted, deduplicated, cache hit, started,
completed, retried, timed out, failed — collected by an :class:`EventLog`
that keeps rolling counters (:class:`EventCounters`) plus a bounded tail
of recent events. Callers (the CLI, benches, tests) can attach ``sink``
callables to observe events as they happen; the counters are what the
acceptance criteria assert against (e.g. "a warm-cache re-run performs
zero new simulations" is ``counters.executed == 0``).

Sinks are **isolated**: a raising sink cannot abort an orchestration
batch. The first exception from each sink is logged (with traceback);
later exceptions from the same sink are swallowed silently, and the sink
keeps receiving events in case it recovers. The telemetry exporters
(:class:`~repro.telemetry.metrics.EventCounterSink`) attach through the
same contract.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable, Deque, Dict, List, Optional

__all__ = ["EVENT_KINDS", "JobEvent", "EventCounters", "EventLog"]

logger = logging.getLogger(__name__)

#: Every event kind the orchestrator/pool may emit.
EVENT_KINDS = (
    "batch_start",   # a run_specs() batch was accepted
    "submitted",     # one spec entered the batch
    "deduped",       # spec was identical to an earlier one in the batch
    "cache_hit",     # result served from the on-disk cache
    "journal_hit",   # result replayed from the write-ahead run journal
    "quarantined",   # corrupt cache entry moved aside (.corrupt) on read
    "started",       # simulation began executing (in-process or worker)
    "completed",     # simulation finished; wall_time carries the duration
    "retried",       # job resubmitted after a worker crash / timeout
    "timeout",       # job exceeded its per-job wall-clock budget
    "hung",          # heartbeat silence: worker killed by the watchdog
    "over_budget",   # worker RSS budget exceeded: killed by the watchdog
    "short_circuited",  # submission refused by an open circuit breaker
    "poisoned",      # spec found on the persisted poison quarantine
    "failed",        # job gave up (deterministic error or retries spent)
    "batch_end",     # the batch resolved; wall_time carries batch duration
)


@dataclass(frozen=True)
class JobEvent:
    """One orchestration event.

    Parameters
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    key:
        Content-addressed spec key the event refers to ('' for batch-level
        events).
    label:
        Human-readable tag (e.g. ``'mix:mcf+povray/mapping 2'``).
    attempt:
        1-based execution attempt (0 when not applicable).
    wall_time:
        Seconds attributable to the event (job duration on ``completed``,
        batch duration on ``batch_end``).
    detail:
        Free-form context (error text, counts).
    """

    kind: str
    key: str = ""
    label: str = ""
    attempt: int = 0
    wall_time: float = 0.0
    detail: str = ""


@dataclass
class EventCounters:
    """Rolling tallies over every event seen by one :class:`EventLog`."""

    submitted: int = 0
    deduped: int = 0
    cache_hits: int = 0
    journal_hits: int = 0
    quarantined: int = 0
    executed: int = 0
    retried: int = 0
    timeouts: int = 0
    hung: int = 0
    over_budget: int = 0
    short_circuited: int = 0
    poisoned: int = 0
    failed: int = 0
    completed: int = 0
    batches: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (for reports and assertions)."""
        return asdict(self)

    def summary(self) -> str:
        """One-line human summary of the tallies."""
        return (
            f"jobs: {self.submitted} submitted, {self.deduped} deduped, "
            f"{self.cache_hits} cached, {self.executed} executed, "
            f"{self.retried} retried, {self.failed} failed"
        )


class EventLog:
    """Collects :class:`JobEvent` records and maintains counters.

    Parameters
    ----------
    sink:
        Optional callable invoked with every event as it is emitted
        (CLI progress printing, test instrumentation).
    keep:
        Number of most-recent events retained in :attr:`events`.
    """

    def __init__(
        self,
        sink: Optional[Callable[[JobEvent], None]] = None,
        keep: int = 1024,
    ):
        self.sink = sink
        self.counters = EventCounters()
        self.events: Deque[JobEvent] = deque(maxlen=keep)
        self._extra_sinks: List[Callable[[JobEvent], None]] = []
        self._sinks_warned: set = set()

    def add_sink(self, sink: Callable[[JobEvent], None]) -> None:
        """Attach an additional sink (same isolation contract as `sink`)."""
        self._extra_sinks.append(sink)

    def _dispatch(self, sink: Callable[[JobEvent], None], event: JobEvent) -> None:
        """Deliver one event to one sink, isolating sink failures.

        A sink raising must not abort the orchestration batch that
        emitted the event: the first failure per sink is logged with its
        traceback, subsequent ones are dropped quietly, and delivery to
        the sink continues (it may be stateful and recover).
        """
        try:
            sink(event)
        except Exception:
            key = id(sink)
            if key not in self._sinks_warned:
                self._sinks_warned.add(key)
                logger.warning(
                    "event sink %r raised on %r; continuing without it "
                    "(further failures of this sink are silenced)",
                    sink, event.kind, exc_info=True,
                )

    _COUNTER_OF = {
        "submitted": "submitted",
        "deduped": "deduped",
        "cache_hit": "cache_hits",
        "journal_hit": "journal_hits",
        "quarantined": "quarantined",
        "completed": "executed",
        "retried": "retried",
        "timeout": "timeouts",
        "hung": "hung",
        "over_budget": "over_budget",
        "short_circuited": "short_circuited",
        "poisoned": "poisoned",
        "failed": "failed",
        "batch_start": "batches",
    }

    def emit(self, kind: str, **fields) -> JobEvent:
        """Record one event (and forward it to the sink, if any)."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = JobEvent(kind=kind, **fields)
        self.events.append(event)
        counter = self._COUNTER_OF.get(kind)
        if counter is not None:
            setattr(self.counters, counter, getattr(self.counters, counter) + 1)
        if self.sink is not None:
            self._dispatch(self.sink, event)
        for sink in self._extra_sinks:
            self._dispatch(sink, event)
        return event
