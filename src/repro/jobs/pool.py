"""Process-pool execution of run specs with crash recovery and supervision.

:class:`WorkerPool` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the semantics the orchestrator needs:

* **Deterministic ordering** — results come back in submission order
  regardless of completion order, so parallel batches are drop-in
  replacements for serial loops.
* **Crash recovery** — when a worker dies (segfault, ``os._exit``, OOM
  kill) the executor reports :class:`~concurrent.futures.process.\
BrokenProcessPool` for *every* in-flight future without identifying the
  culprit. The pool rebuilds the executor, charges one attempt to every
  unfinished job that had actually *started* (innocent queued jobs are
  refunded), sleeps a capped, jittered backoff drawn from its
  :class:`~repro.supervise.retry.RetryPolicy`, and resubmits — so a
  single crashing job fails alone after its retry budget while innocent
  bystanders complete on a later wave.
* **Timeouts measured from the job's own start** — every job records a
  worker-side start timestamp the moment a worker picks it up, and its
  wall-clock budget runs from *that* instant. Queue wait does **not**
  count against the budget: with more jobs than workers, a job that sat
  queued behind a slow wave is not charged for time it never ran.
* **Heartbeat supervision** (optional) — with ``hang_timeout`` and/or
  ``max_rss_mb`` set, workers tick a shared heartbeat board
  (:mod:`repro.supervise.heartbeat`) and a parent-side
  :class:`~repro.supervise.watchdog.Watchdog` kills jobs that stop
  proving liveness (*hung*, distinct from *slow* — a slow job keeps
  ticking) or blow their RSS budget, well before the per-job timeout.
  Condemned jobs are charged an attempt and retried on a fresh executor;
  the verdict kind (``'hung'`` / ``'over_budget'``) flows into events
  and :class:`~repro.jobs.failures.JobFailure.kind`.
* **Deterministic failures fail fast** — a job that raises an ordinary
  exception inside the worker is not retried; the traceback is wrapped in
  :class:`~repro.errors.JobError` and raised immediately, because re-running
  a deterministic simulation cannot change the outcome.
* **Keep-going mode** — with ``keep_going=True``, a job that fails
  terminally (deterministic error or exhausted retry/timeout budget)
  returns a :class:`~repro.jobs.failures.JobFailure` **in its result
  slot** instead of aborting the batch; every other job still completes.

With supervision disabled (the default) the pool never creates a
heartbeat board and workers run the exact pre-supervision code path —
the no-fault baseline test pins that arming supervision over a healthy
batch changes nothing about its results either.
"""

from __future__ import annotations

import queue as queue_module
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, JobError
from repro.jobs.failures import JobFailure
from repro.supervise.config import DEFAULT_HEARTBEAT_INTERVAL
from repro.supervise.heartbeat import (
    HeartbeatTicker,
    bind,
    read_beats,
    tick,
    unbind,
)
from repro.supervise.retry import RetryPolicy
from repro.supervise.watchdog import Watchdog, WatchdogVerdict
from repro.telemetry.context import current as telemetry_current
from repro.telemetry.metrics import BACKOFF_BUCKETS

__all__ = ["WorkerPool"]

#: Default multiprocessing start method: 'spawn' gives workers a clean
#: interpreter (no inherited global task-id counters, no fork/thread
#: hazards) at the cost of a slower start-up.
DEFAULT_MP_CONTEXT = "spawn"

#: How often the parent wakes to collect worker-side start timestamps
#: (and heartbeat board snapshots) while jobs are running (seconds).
_POLL_INTERVAL = 0.05


def _traced_call(start_queue, wave: int, index: int, fn, payload):
    """Worker-side wrapper: record the actual job start, then run.

    Module-level (picklable by reference) so it survives the trip into a
    spawn-started worker. The ``(wave, index, time.time())`` record is
    posted to the manager queue *before* the job body runs — the manager
    proxy call returns only once the record is enqueued, so by the time
    the job's future resolves the parent can observe its start. Wall
    timestamps (``time.time()``) are used because monotonic clocks are
    not comparable across processes.
    """
    start_queue.put((wave, index, time.time()))
    return fn(payload)


def _supervised_call(
    start_queue, board, interval: float, wave: int, index: int, fn, payload
):
    """Worker-side wrapper with heartbeats: bind, tick, run, unbind.

    Same start-record contract as :func:`_traced_call`, plus the
    heartbeat protocol: the worker binds its process-global heartbeat
    slot to ``(wave, index)`` on *board*, posts an immediate ``start``
    beat, and runs a background :class:`HeartbeatTicker` for the
    duration of the job so even a job body that never crosses an
    instrumented phase boundary keeps proving liveness. The ticker is
    stopped and the slot unbound before the result travels back.
    """
    start_queue.put((wave, index, time.time()))
    bind(board, (wave, index))
    tick("start")
    ticker = HeartbeatTicker(interval)
    ticker.start()
    try:
        return fn(payload)
    finally:
        ticker.stop()
        unbind()


class WorkerPool:
    """Bounded pool of worker processes executing picklable jobs.

    Parameters
    ----------
    jobs:
        Worker process count (must be >= 1; 1 still uses a subprocess —
        callers wanting in-process execution should bypass the pool).
    mp_context:
        Multiprocessing start method ('spawn', 'fork', 'forkserver').
    timeout:
        Optional per-job wall-clock budget in seconds, measured from the
        moment a worker actually starts the job (queue wait is free).
    retries:
        How many *additional* attempts a job gets after a worker crash,
        watchdog kill or timeout (deterministic exceptions are never
        retried).
    backoff:
        Base of the crash-recovery backoff in seconds. Used to build the
        default :class:`~repro.supervise.retry.RetryPolicy` when none is
        given explicitly.
    retry_policy:
        The full backoff policy (capped, seeded jitter). Overrides
        ``backoff`` when provided.
    hang_timeout:
        Kill a started job after this many seconds of heartbeat silence
        (``None`` disables hang detection).
    heartbeat_interval:
        Worker-side ticker period (only used when supervision is armed).
    max_rss_mb:
        Per-worker RSS high-water budget in MB (``None`` disables).
    """

    def __init__(
        self,
        jobs: int,
        mp_context: str = DEFAULT_MP_CONTEXT,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.5,
        retry_policy: Optional[RetryPolicy] = None,
        hang_timeout: Optional[float] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        max_rss_mb: Optional[float] = None,
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be > 0")
        self.jobs = jobs
        self.mp_context = mp_context
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.retry_policy = (
            retry_policy if retry_policy is not None
            else RetryPolicy(base=backoff)
        )
        self.heartbeat_interval = heartbeat_interval
        self.watchdog = Watchdog(
            hang_timeout=hang_timeout, max_rss_mb=max_rss_mb
        )

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=get_context(self.mp_context)
        )

    @staticmethod
    def _stop_executor(executor: ProcessPoolExecutor) -> None:
        """Abandon *executor*, terminating its worker processes.

        ``shutdown(wait=False)`` alone leaves in-flight jobs running in
        the old workers, and the interpreter joins every worker at exit —
        a single runaway (timed-out or hung) job would then hang the
        process forever. The worker table is a private attribute, hence
        the defensive ``getattr``.
        """
        workers = list((getattr(executor, "_processes", None) or {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in workers:
            process.terminate()

    @staticmethod
    def _drain_starts(start_queue, wave: int, starts: Dict[int, float]) -> None:
        """Collect pending start records for *wave* into *starts*.

        Records tagged with an older wave (posted by a worker of an
        already-killed executor) are discarded — they must not start the
        clock on this wave's resubmission of the same job.
        """
        while True:
            try:
                record_wave, index, stamp = start_queue.get_nowait()
            except queue_module.Empty:
                return
            except (EOFError, BrokenPipeError, OSError):
                return
            if record_wave == wave:
                starts.setdefault(index, stamp)

    def run(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        on_event: Optional[Callable[..., Any]] = None,
        keep_going: bool = False,
    ) -> List[Any]:
        """Execute ``fn(payload)`` for every payload; results in order.

        *fn* must be a module-level (picklable) callable. *on_event*, if
        given, is called as ``on_event(kind, index=..., attempt=...,
        detail=...)`` for the lifecycle points the pool can observe:
        ``'retried'``, ``'timeout'``, ``'hung'``, ``'over_budget'`` and
        ``'failed'``.

        With ``keep_going=False`` (default) any terminal job failure
        raises :class:`~repro.errors.JobError` and abandons the rest of
        the batch. With ``keep_going=True`` the batch always returns a
        full result list in which each terminally failed job's slot holds
        a :class:`~repro.jobs.failures.JobFailure` instead of a result.
        """

        def notify(kind: str, **fields: Any) -> None:
            if on_event is not None:
                on_event(kind, **fields)

        count = len(payloads)
        results: List[Any] = [None] * count
        done = [False] * count
        attempts = [0] * count
        wall = [0.0] * count
        pending = list(range(count))
        wave_number = 0
        session = self.retry_policy.session()
        supervised = self.watchdog.enabled

        tel = telemetry_current()
        tracer = tel.tracer if tel is not None else None
        metrics = tel.metrics if tel is not None else None
        ctx = get_context(self.mp_context)
        manager = ctx.Manager()
        start_queue = manager.Queue()
        board = manager.dict() if supervised else None
        executor = self._make_executor()
        try:
            while pending:
                wave_number += 1
                if metrics is not None:
                    metrics.counter(
                        "pool_waves_total",
                        help="submission waves run by the worker pool",
                    ).inc()
                wave_span = (
                    tracer.begin(
                        "pool.wave", wave=wave_number, pending=len(pending)
                    )
                    if tracer is not None
                    else None
                )
                wave_started = time.time()
                starts: Dict[int, float] = {}
                futures: Dict[Any, int] = {}
                expired: List[int] = []
                killed: List[WatchdogVerdict] = []
                crashed = False
                try:
                    for index in pending:
                        attempts[index] += 1
                        if supervised:
                            future = executor.submit(
                                _supervised_call, start_queue, board,
                                self.heartbeat_interval, wave_number,
                                index, fn, payloads[index],
                            )
                        else:
                            future = executor.submit(
                                _traced_call, start_queue, wave_number,
                                index, fn, payloads[index],
                            )
                        futures[future] = index
                    not_done = set(futures)
                    while not_done:
                        self._drain_starts(start_queue, wave_number, starts)
                        now = time.time()
                        if supervised:
                            beats = read_beats(board)
                            running = [futures[f] for f in not_done]
                            killed = self.watchdog.inspect(
                                wave_number, running, starts, beats, now
                            )
                            if killed:
                                break  # watchdog condemned someone
                            if metrics is not None:
                                metrics.gauge(
                                    "pool_heartbeat_age_seconds",
                                    help=(
                                        "oldest heartbeat age among "
                                        "running jobs"
                                    ),
                                ).set(
                                    self.watchdog.max_heartbeat_age(
                                        wave_number, running, starts,
                                        beats, now,
                                    )
                                )
                        budget = None
                        if self.timeout is not None:
                            expired = [
                                futures[f] for f in not_done
                                if futures[f] in starts
                                and now - starts[futures[f]] >= self.timeout
                            ]
                            if expired:
                                break  # someone overran their own budget
                            remaining = [
                                starts[futures[f]] + self.timeout - now
                                for f in not_done if futures[f] in starts
                            ]
                            # Wake at the earliest deadline, but at least
                            # every poll interval to pick up new starts.
                            budget = min(remaining + [_POLL_INTERVAL])
                        elif supervised:
                            # No wall-clock timeout, but the watchdog
                            # still needs regular board snapshots.
                            budget = _POLL_INTERVAL
                        finished, not_done = wait(
                            not_done, timeout=budget,
                            return_when=FIRST_COMPLETED,
                        )
                        for future in finished:
                            index = futures[future]
                            try:
                                results[index] = future.result()
                            except BrokenProcessPool:
                                raise
                            except Exception as exc:
                                # Deterministic in-job failure: retrying a
                                # deterministic simulation cannot help.
                                detail = f"{type(exc).__name__}: {exc}"
                                notify(
                                    "failed", index=index,
                                    attempt=attempts[index], detail=detail,
                                )
                                if keep_going:
                                    self._drain_starts(
                                        start_queue, wave_number, starts
                                    )
                                    elapsed = time.time() - starts.get(
                                        index, wave_started
                                    )
                                    results[index] = JobFailure(
                                        error=detail,
                                        attempts=attempts[index],
                                        wall_time=wall[index] + elapsed,
                                        index=index,
                                    )
                                    done[index] = True
                                    continue
                                for other in futures:
                                    other.cancel()
                                raise JobError(
                                    f"job {index} failed: {detail}"
                                ) from exc
                            done[index] = True
                except BrokenProcessPool:
                    crashed = True
                if wave_span is not None:
                    wave_span.attrs["crashed"] = crashed
                    tracer.end(wave_span)

                pending = [i for i in range(count) if not done[i]]
                if not pending:
                    break

                # Charge attempts only to the plausible culprits: on a
                # crash, jobs that had actually started (the culprit is
                # among them — a queued job cannot kill a worker); on a
                # watchdog kill or timeout, exactly the condemned jobs.
                # Everyone else gets this wave's attempt refunded.
                self._drain_starts(start_queue, wave_number, starts)
                retry_kind: Dict[int, str] = {}
                fail_kind: Dict[int, str] = {}
                detail_of: Dict[int, str] = {}
                if crashed:
                    charged = (
                        [i for i in pending if i in starts] or list(pending)
                    )
                    for i in charged:
                        retry_kind[i] = "retried"
                        fail_kind[i] = "crash"
                        detail_of[i] = "worker crashed"
                elif killed:
                    charged = [v.index for v in killed]
                    if metrics is not None:
                        metrics.counter(
                            "pool_watchdog_kills_total",
                            help="jobs condemned by the watchdog",
                        ).inc(len(killed))
                    for verdict in killed:
                        retry_kind[verdict.index] = verdict.kind
                        fail_kind[verdict.index] = verdict.kind
                        detail_of[verdict.index] = verdict.detail
                else:
                    charged = (
                        [i for i in pending if i in expired] or list(pending)
                    )
                    for i in charged:
                        retry_kind[i] = "timeout"
                        fail_kind[i] = "timeout"
                        detail_of[i] = "timed out"
                charged_set = set(charged)
                for i in pending:
                    if i not in charged_set:
                        attempts[i] -= 1
                for i in charged:
                    wall[i] += time.time() - starts.get(i, wave_started)

                exhausted = [i for i in charged if attempts[i] > self.retries]
                if exhausted:
                    if not keep_going:
                        for i in charged:
                            notify(
                                "failed", index=i, attempt=attempts[i],
                                detail=detail_of[i],
                            )
                        raise JobError(
                            f"jobs {exhausted} gave up after "
                            f"{attempts[exhausted[0]]} attempts "
                            f"({fail_kind[exhausted[0]]}: "
                            f"{detail_of[exhausted[0]]})"
                        )
                    for i in exhausted:
                        notify(
                            "failed", index=i, attempt=attempts[i],
                            detail=detail_of[i],
                        )
                        results[i] = JobFailure(
                            error=detail_of[i], attempts=attempts[i],
                            wall_time=wall[i], index=i, kind=fail_kind[i],
                        )
                        done[i] = True
                for i in charged:
                    if not done[i]:
                        notify(
                            retry_kind[i], index=i, attempt=attempts[i],
                            detail=detail_of[i],
                        )

                pending = [i for i in range(count) if not done[i]]
                if not pending:
                    break
                # Crashed executors are unusable; timed-out, hung or
                # over-budget jobs are still running in the old workers —
                # either way, start the next wave on a fresh executor.
                self._stop_executor(executor)
                executor = self._make_executor()
                if crashed:
                    # Capped, jittered, deterministic (seeded) backoff —
                    # see repro.supervise.retry for why raw exponential
                    # sleeps are banned here (lint rule RPR303).
                    delay = session.sleep()
                    if metrics is not None:
                        metrics.histogram(
                            "pool_backoff_seconds", BACKOFF_BUCKETS,
                            help="crash-recovery backoff sleeps",
                        ).observe(delay)
        finally:
            self._stop_executor(executor)
            manager.shutdown()
        return results
