"""Process-pool execution of run specs with crash recovery.

:class:`WorkerPool` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the semantics the orchestrator needs:

* **Deterministic ordering** — results come back in submission order
  regardless of completion order, so parallel batches are drop-in
  replacements for serial loops.
* **Crash recovery** — when a worker dies (segfault, ``os._exit``, OOM
  kill) the executor reports :class:`~concurrent.futures.process.\
BrokenProcessPool` for *every* in-flight future without identifying the
  culprit. The pool rebuilds the executor, charges one attempt to every
  unfinished job, sleeps an exponential backoff, and resubmits — so a
  single crashing job fails alone after its retry budget while innocent
  bystanders complete on a later wave.
* **Timeouts** — an optional per-job wall-clock budget, measured from the
  wave's submission (a conservative approximation: queue wait counts
  against the budget).
* **Deterministic failures fail fast** — a job that raises an ordinary
  exception inside the worker is not retried; the traceback is wrapped in
  :class:`~repro.errors.JobError` and raised immediately, because re-running
  a deterministic simulation cannot change the outcome.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, JobError

__all__ = ["WorkerPool"]

#: Default multiprocessing start method: 'spawn' gives workers a clean
#: interpreter (no inherited global task-id counters, no fork/thread
#: hazards) at the cost of a slower start-up.
DEFAULT_MP_CONTEXT = "spawn"


class WorkerPool:
    """Bounded pool of worker processes executing picklable jobs.

    Parameters
    ----------
    jobs:
        Worker process count (must be >= 1; 1 still uses a subprocess —
        callers wanting in-process execution should bypass the pool).
    mp_context:
        Multiprocessing start method ('spawn', 'fork', 'forkserver').
    timeout:
        Optional per-job wall-clock budget in seconds, measured from the
        submission of the job's wave.
    retries:
        How many *additional* attempts a job gets after a worker crash or
        timeout (deterministic exceptions are never retried).
    backoff:
        Base of the exponential crash-recovery sleep:
        ``backoff * 2**(attempt-1)`` seconds after the attempt-th crash.
    """

    def __init__(
        self,
        jobs: int,
        mp_context: str = DEFAULT_MP_CONTEXT,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.5,
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        self.jobs = jobs
        self.mp_context = mp_context
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=get_context(self.mp_context)
        )

    @staticmethod
    def _stop_executor(executor: ProcessPoolExecutor) -> None:
        """Abandon *executor*, terminating its worker processes.

        ``shutdown(wait=False)`` alone leaves in-flight jobs running in
        the old workers, and the interpreter joins every worker at exit —
        a single runaway (timed-out) job would then hang the process
        forever. The worker table is a private attribute, hence the
        defensive ``getattr``.
        """
        workers = list((getattr(executor, "_processes", None) or {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in workers:
            process.terminate()

    def run(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        on_event: Optional[Callable[..., Any]] = None,
    ) -> List[Any]:
        """Execute ``fn(payload)`` for every payload; results in order.

        *fn* must be a module-level (picklable) callable. *on_event*, if
        given, is called as ``on_event(kind, index=..., attempt=...,
        detail=...)`` for ``'started'``-less lifecycle points the pool can
        observe: ``'retried'``, ``'timeout'`` and ``'failed'``.

        Raises :class:`~repro.errors.JobError` when any job fails
        deterministically or exhausts its retry budget; remaining jobs of
        the batch are abandoned (their futures cancelled).
        """

        def notify(kind: str, **fields: Any) -> None:
            if on_event is not None:
                on_event(kind, **fields)

        results: List[Any] = [None] * len(payloads)
        done = [False] * len(payloads)
        attempts = [0] * len(payloads)
        pending = list(range(len(payloads)))
        executor = self._make_executor()
        try:
            while pending:
                wave_started = time.monotonic()
                futures: Dict[Any, int] = {}
                crashed = False
                try:
                    for index in pending:
                        attempts[index] += 1
                        futures[executor.submit(fn, payloads[index])] = index
                    not_done = set(futures)
                    while not_done:
                        budget = None
                        if self.timeout is not None:
                            budget = self.timeout - (
                                time.monotonic() - wave_started
                            )
                            if budget <= 0:
                                break
                        finished, not_done = wait(
                            not_done, timeout=budget,
                            return_when=FIRST_COMPLETED,
                        )
                        if not finished:
                            break  # timed out with jobs still running
                        for future in finished:
                            index = futures[future]
                            try:
                                results[index] = future.result()
                            except BrokenProcessPool:
                                raise
                            except Exception as exc:
                                # Deterministic in-job failure: retrying a
                                # deterministic simulation cannot help.
                                notify(
                                    "failed", index=index,
                                    attempt=attempts[index],
                                    detail=f"{type(exc).__name__}: {exc}",
                                )
                                for other in futures:
                                    other.cancel()
                                raise JobError(
                                    f"job {index} failed: "
                                    f"{type(exc).__name__}: {exc}"
                                ) from exc
                            done[index] = True
                except BrokenProcessPool:
                    crashed = True

                pending = [i for i in range(len(payloads)) if not done[i]]
                if not pending:
                    break
                # Crash or timeout: the culprit is unknowable (a broken
                # pool poisons every in-flight future), so every
                # unfinished job is charged one attempt.
                kind = "retried" if crashed else "timeout"
                exhausted = [
                    i for i in pending if attempts[i] > self.retries
                ]
                if exhausted:
                    for i in pending:
                        notify(
                            "failed", index=i, attempt=attempts[i],
                            detail="worker crashed" if crashed else "timed out",
                        )
                    raise JobError(
                        f"jobs {exhausted} gave up after "
                        f"{attempts[exhausted[0]]} attempts "
                        f"({'worker crash' if crashed else 'timeout'})"
                    )
                for i in pending:
                    notify(kind, index=i, attempt=attempts[i])
                if crashed:
                    self._stop_executor(executor)
                    executor = self._make_executor()
                    wave = max(attempts[i] for i in pending)
                    time.sleep(self.backoff * (2 ** (wave - 1)))
                else:
                    # Timed-out jobs are still running in the old pool;
                    # kill it so resubmissions start on fresh workers.
                    self._stop_executor(executor)
                    executor = self._make_executor()
        finally:
            self._stop_executor(executor)
        return results
