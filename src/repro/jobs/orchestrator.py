"""The orchestration facade: dedupe, cache, fan out, report.

:class:`Orchestrator` is the single entry point the experiment drivers
talk to. Given a batch of :class:`~repro.jobs.spec.RunSpec` objects it:

1. **dedupes** — identical specs (by content-addressed key) are executed
   once and their outcome shared;
2. **checks the cache** — previously computed outcomes are served from
   the on-disk :class:`~repro.jobs.cache.ResultCache` (when configured);
3. **fans out** — remaining misses run on a
   :class:`~repro.jobs.pool.WorkerPool` (``jobs > 1``) or in-process
   (``jobs == 1``), always producing results in submission order;
4. **reports** — every step is narrated through an
   :class:`~repro.jobs.events.EventLog` whose counters back the
   acceptance assertions (e.g. a warm-cache batch must show
   ``counters.executed == 0``).

Because outcomes are pure data keyed by pure data, a batch's results are
independent of worker count: ``jobs=4`` and ``jobs=1`` produce identical
outcomes for identical specs.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.jobs.cache import ResultCache
from repro.jobs.events import EventLog, JobEvent
from repro.jobs.keys import spec_key
from repro.jobs.pool import DEFAULT_MP_CONTEXT, WorkerPool
from repro.jobs.spec import RunOutcome, RunSpec, execute_spec

__all__ = ["Orchestrator"]


class Orchestrator:
    """Runs batches of run specs with dedup, caching and parallelism.

    Parameters
    ----------
    jobs:
        Parallel worker processes. ``1`` (default) executes in-process —
        no subprocesses, no pickling — while keeping dedup and caching.
    cache_dir:
        Optional directory for the on-disk result cache; ``None``
        disables persistent caching (batch-level dedup still applies).
    timeout:
        Optional per-job wall-clock budget in seconds (pooled mode only).
    retries:
        Extra attempts after a worker crash or timeout.
    backoff:
        Crash-recovery backoff base in seconds.
    mp_context:
        Multiprocessing start method; defaults to ``'spawn'``.
    on_event:
        Optional sink receiving every :class:`~repro.jobs.events.JobEvent`.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.5,
        mp_context: Optional[str] = None,
        on_event: Optional[Callable[[JobEvent], None]] = None,
    ):
        self.jobs = jobs
        self.cache = None if cache_dir is None else ResultCache(cache_dir)
        self.log = EventLog(sink=on_event)
        self._pool = (
            None
            if jobs <= 1
            else WorkerPool(
                jobs,
                mp_context=mp_context or DEFAULT_MP_CONTEXT,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
            )
        )

    @property
    def counters(self):
        """The rolling :class:`~repro.jobs.events.EventCounters`."""
        return self.log.counters

    # ------------------------------------------------------------------
    def run_spec(self, spec: RunSpec) -> RunOutcome:
        """Execute a single spec (a one-element batch)."""
        return self.run_specs([spec])[0]

    def run_specs(self, specs: Sequence[RunSpec]) -> List[RunOutcome]:
        """Execute a batch; outcomes align index-for-index with *specs*.

        Identical specs are executed once; cached specs are not executed
        at all. The returned outcomes carry ``cached=True`` when served
        from the on-disk cache.
        """
        batch_started = time.monotonic()
        self.log.emit("batch_start", detail=f"{len(specs)} specs")

        keys: List[str] = []
        unique: Dict[str, RunSpec] = {}
        for spec in specs:
            key = spec_key(spec)
            keys.append(key)
            if key in unique:
                self.log.emit("deduped", key=key)
            else:
                unique[key] = spec
                self.log.emit("submitted", key=key)

        outcomes: Dict[str, RunOutcome] = {}
        misses: List[str] = []
        for key, spec in unique.items():
            cached = None if self.cache is None else self.cache.get(key)
            if cached is not None:
                outcomes[key] = RunOutcome.from_dict(cached, cached=True)
                self.log.emit("cache_hit", key=key)
            else:
                misses.append(key)

        if misses:
            payloads = [unique[key].to_dict() for key in misses]
            if self._pool is None:
                raw = []
                for key, payload in zip(misses, payloads):
                    self.log.emit("started", key=key, attempt=1)
                    job_started = time.monotonic()
                    raw.append(execute_spec(payload))
                    self.log.emit(
                        "completed", key=key, attempt=1,
                        wall_time=time.monotonic() - job_started,
                    )
            else:
                def forward(kind: str, index: int = 0, **fields) -> None:
                    fields.pop("wall_time", None)
                    self.log.emit(
                        kind, key=misses[index],
                        attempt=fields.get("attempt", 0),
                        detail=fields.get("detail", ""),
                    )

                wave_started = time.monotonic()
                raw = self._pool.run(
                    execute_spec, payloads, on_event=forward
                )
                elapsed = time.monotonic() - wave_started
                for key in misses:
                    self.log.emit(
                        "completed", key=key,
                        wall_time=elapsed / len(misses),
                    )
            for key, outcome_dict in zip(misses, raw):
                outcomes[key] = RunOutcome.from_dict(outcome_dict)
                if self.cache is not None:
                    self.cache.put(
                        key, unique[key].to_dict(), outcome_dict
                    )

        self.counters.completed += len(specs)
        self.log.emit(
            "batch_end",
            wall_time=time.monotonic() - batch_started,
            detail=self.counters.summary(),
        )
        return [outcomes[key] for key in keys]
