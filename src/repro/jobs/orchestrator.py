"""The orchestration facade: dedupe, journal, cache, fan out, report.

:class:`Orchestrator` is the single entry point the experiment drivers
talk to. Given a batch of :class:`~repro.jobs.spec.RunSpec` objects it:

1. **dedupes** — identical specs (by content-addressed key) are executed
   once and their outcome shared;
2. **replays the journal** — when a write-ahead
   :class:`~repro.jobs.journal.RunJournal` is attached, specs recorded as
   completed by an earlier (possibly crashed) run are served from the
   journal without touching the cache or a worker;
3. **checks the cache** — previously computed outcomes are served from
   the on-disk :class:`~repro.jobs.cache.ResultCache` (when configured),
   which quarantines any corrupt entry it trips over;
4. **fans out** — remaining misses run on a
   :class:`~repro.jobs.pool.WorkerPool` (``jobs > 1``) or in-process
   (``jobs == 1``), always producing results in submission order; with
   ``keep_going=True`` a terminally failed spec yields a
   :class:`~repro.jobs.failures.JobFailure` in its result slot instead of
   aborting the batch;
5. **reports** — every step is narrated through an
   :class:`~repro.jobs.events.EventLog` whose counters back the
   acceptance assertions (e.g. a warm-cache batch must show
   ``counters.executed == 0``).

Because outcomes are pure data keyed by pure data, a batch's results are
independent of worker count: ``jobs=4`` and ``jobs=1`` produce identical
outcomes for identical specs.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import JobError
from repro.jobs.cache import ResultCache
from repro.jobs.events import EventLog, JobEvent
from repro.jobs.failures import JobFailure
from repro.jobs.journal import RunJournal
from repro.jobs.keys import spec_key
from repro.jobs.pool import DEFAULT_MP_CONTEXT, WorkerPool
from repro.jobs.spec import RunOutcome, RunSpec, execute_spec
from repro.supervise.config import SupervisionConfig
from repro.telemetry.context import current as telemetry_current
from repro.telemetry.metrics import EventCounterSink

__all__ = ["Orchestrator"]

#: What one result slot may hold in keep-going mode.
BatchResult = Union[RunOutcome, JobFailure]


class Orchestrator:
    """Runs batches of run specs with dedup, caching and parallelism.

    Parameters
    ----------
    jobs:
        Parallel worker processes. ``1`` (default) executes in-process —
        no subprocesses, no pickling — while keeping dedup and caching.
    cache_dir:
        Optional directory for the on-disk result cache; ``None``
        disables persistent caching (batch-level dedup still applies).
    timeout:
        Optional per-job wall-clock budget in seconds (pooled mode only),
        measured from the job's actual worker-side start.
    retries:
        Extra attempts after a worker crash or timeout.
    backoff:
        Crash-recovery backoff base in seconds.
    mp_context:
        Multiprocessing start method; defaults to ``'spawn'``.
    on_event:
        Optional sink receiving every :class:`~repro.jobs.events.JobEvent`.
    journal:
        Optional write-ahead journal — a :class:`RunJournal` or a path to
        one. Completed specs are durably recorded as they finish, and
        specs already journaled (by this run or a crashed predecessor)
        are replayed instead of re-executed.
    keep_going:
        When True, a terminally failed spec does not abort the batch:
        its result slot holds a :class:`JobFailure` and everything else
        still completes. Default False preserves fail-fast semantics.
    executor:
        The spec executor fanned out to workers; defaults to
        :func:`~repro.jobs.spec.execute_spec`. Must be a picklable
        callable taking the spec's dict payload (the chaos harness passes
        :meth:`~repro.faults.chaos.ChaosConfig.executor` here).
    supervision:
        Optional :class:`~repro.supervise.config.SupervisionConfig`
        arming the supervision subsystem: heartbeat/hang/RSS watchdog
        knobs flow into the worker pool, the retry policy replaces the
        plain ``backoff`` base, and the per-spec-key circuit breaker plus
        the persisted poison quarantine gate submissions *before* they
        reach a worker. ``None`` (default) runs the exact unsupervised
        code paths. The watchdog needs workers, so it applies in pooled
        mode only; breaker and quarantine also gate serial execution.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.5,
        mp_context: Optional[str] = None,
        on_event: Optional[Callable[[JobEvent], None]] = None,
        journal=None,
        keep_going: bool = False,
        executor: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
        supervision: Optional[SupervisionConfig] = None,
    ):
        self.jobs = jobs
        self.cache = None if cache_dir is None else ResultCache(cache_dir)
        self.log = EventLog(sink=on_event)
        self.keep_going = keep_going
        self.executor = execute_spec if executor is None else executor
        if journal is None or isinstance(journal, RunJournal):
            self.journal = journal
        else:
            self.journal = RunJournal(journal)
        self._metrics_sink = None
        self.supervision = supervision
        self.breaker = (
            None
            if supervision is None
            else supervision.make_breaker(
                on_transition=self._on_breaker_transition
            )
        )
        self.quarantine = (
            None if supervision is None else supervision.make_quarantine()
        )
        pool_kwargs: Dict[str, Any] = {}
        if supervision is not None:
            pool_kwargs = dict(
                retry_policy=supervision.retry,
                hang_timeout=supervision.hang_timeout,
                heartbeat_interval=supervision.heartbeat_interval,
                max_rss_mb=supervision.max_rss_mb,
            )
        self._pool = (
            None
            if jobs <= 1
            else WorkerPool(
                jobs,
                mp_context=mp_context or DEFAULT_MP_CONTEXT,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                **pool_kwargs,
            )
        )

    def _on_breaker_transition(self, key: str, old: str, new: str) -> None:
        """Mirror circuit state changes into the metrics registry."""
        tel = telemetry_current()
        if tel is not None and tel.metrics is not None:
            tel.metrics.counter(
                f"breaker_to_{new}_total",
                help=f"circuit-breaker transitions into state {new!r}",
            ).inc()

    @property
    def counters(self):
        """The rolling :class:`~repro.jobs.events.EventCounters`."""
        return self.log.counters

    # ------------------------------------------------------------------
    def run_spec(self, spec: RunSpec) -> BatchResult:
        """Execute a single spec (a one-element batch)."""
        return self.run_specs([spec])[0]

    def _lookup(self, key: str, replayed: Dict[str, Dict[str, Any]]):
        """Serve one key from the journal or cache; ``None`` on a miss."""
        if key in replayed:
            self.log.emit("journal_hit", key=key)
            return RunOutcome.from_dict(replayed[key], cached=True)
        if self.cache is None:
            return None
        quarantined_before = self.cache.stats.quarantined
        cached = self.cache.get(key)
        if self.cache.stats.quarantined > quarantined_before:
            self.log.emit("quarantined", key=key)
        if cached is None:
            return None
        self.log.emit("cache_hit", key=key)
        return RunOutcome.from_dict(cached, cached=True)

    def _gate_misses(
        self, misses: List[str], outcomes: Dict[str, "BatchResult"]
    ) -> List[str]:
        """Apply the quarantine and circuit breaker to the batch's misses.

        Keys on the persisted poison quarantine, and keys whose circuit
        is open, never reach a worker: their result slot is filled with a
        structured :class:`JobFailure` (``kind='quarantined'`` /
        ``'short_circuited'``) carrying zero attempts — in keep-going
        mode these flow into ``SweepResult.failures`` as named exclusions
        rather than silently rerun poison. In fail-fast mode a blocked
        key aborts the batch with :class:`~repro.errors.JobError`.

        One breaker *wave* elapses per gated batch — the cool-down an
        open circuit waits out is counted here, not on the wall clock.
        """
        if self.quarantine is None and self.breaker is None:
            return misses
        if self.breaker is not None:
            self.breaker.advance_wave()
        allowed: List[str] = []
        for key in misses:
            if self.quarantine is not None and key in self.quarantine:
                reason = self.quarantine.reason(key) or "poison spec"
                self.log.emit("poisoned", key=key, detail=reason)
                blocked = JobFailure(
                    error=f"quarantined poison spec: {reason}",
                    attempts=0, key=key, kind="quarantined",
                )
            elif self.breaker is not None and not self.breaker.allow(key):
                last = self.breaker.last_error(key) or "repeated failures"
                self.log.emit("short_circuited", key=key, detail=last)
                blocked = JobFailure(
                    error=(
                        f"circuit open after "
                        f"{self.breaker.failures(key)} failure(s): {last}"
                    ),
                    attempts=0, key=key, kind="short_circuited",
                )
            else:
                allowed.append(key)
                continue
            if not self.keep_going:
                raise JobError(f"spec {key[:12]}…: {blocked.error}")
            outcomes[key] = blocked
        return allowed

    def _record_terminal_failure(self, key: str, failure: JobFailure) -> None:
        """Feed one terminal failure to the breaker (and the quarantine).

        When this failure trips the key's circuit and a quarantine file
        is configured, the key is durably denylisted — a resumed
        campaign consults the file before submitting anything.
        """
        if self.breaker is None:
            return
        tripped = self.breaker.record_failure(key, error=failure.error)
        if tripped and self.quarantine is not None:
            self.quarantine.add(
                key,
                reason=f"{failure.kind}: {failure.error}",
                failures=self.breaker.failures(key),
            )

    def _execute_serial(self, misses, payloads) -> List[Any]:
        """In-process execution of the batch's misses (jobs == 1)."""
        tel = telemetry_current()
        tracer = tel.tracer if tel is not None else None
        raw: List[Any] = []
        for index, (key, payload) in enumerate(zip(misses, payloads)):
            self.log.emit("started", key=key, attempt=1)
            job_started = time.monotonic()
            job_span = (
                tracer.begin("job.execute", key=key, index=index)
                if tracer is not None
                else None
            )
            try:
                raw.append(self.executor(payload))
            except Exception as exc:
                detail = f"{type(exc).__name__}: {exc}"
                self.log.emit(
                    "failed", key=key, attempt=1, detail=detail
                )
                if not self.keep_going:
                    raise
                raw.append(
                    JobFailure(
                        error=detail, attempts=1,
                        wall_time=time.monotonic() - job_started,
                        index=index, key=key,
                    )
                )
                continue
            finally:
                if job_span is not None:
                    tracer.end(job_span)
            self.log.emit(
                "completed", key=key, attempt=1,
                wall_time=time.monotonic() - job_started,
            )
        return raw

    def _execute_pooled(self, misses, payloads) -> List[Any]:
        """Fan the batch's misses out to the worker pool."""
        def forward(kind: str, index: int = 0, **fields) -> None:
            fields.pop("wall_time", None)
            self.log.emit(
                kind, key=misses[index],
                attempt=fields.get("attempt", 0),
                detail=fields.get("detail", ""),
            )

        tel = telemetry_current()
        tracer = tel.tracer if tel is not None else None
        fan_span = (
            tracer.begin("pool.fan_out", jobs=self._pool.jobs, misses=len(misses))
            if tracer is not None
            else None
        )
        wave_started = time.monotonic()
        try:
            raw = self._pool.run(
                self.executor, payloads, on_event=forward,
                keep_going=self.keep_going,
            )
        finally:
            if fan_span is not None:
                tracer.end(fan_span)
        elapsed = time.monotonic() - wave_started
        completed = [
            key for key, r in zip(misses, raw)
            if not isinstance(r, JobFailure)
        ]
        for key in completed:
            self.log.emit(
                "completed", key=key, wall_time=elapsed / len(completed),
            )
        return raw

    def run_specs(self, specs: Sequence[RunSpec]) -> List[BatchResult]:
        """Execute a batch; outcomes align index-for-index with *specs*.

        Identical specs are executed once; journaled or cached specs are
        not executed at all. The returned outcomes carry ``cached=True``
        when served from the journal or the on-disk cache. In keep-going
        mode a slot may hold a :class:`JobFailure` instead of a
        :class:`~repro.jobs.spec.RunOutcome` — callers opting in must
        check each slot.
        """
        tel = telemetry_current()
        if (
            tel is not None
            and tel.metrics is not None
            and self._metrics_sink is None
        ):
            # Absorb the rolling EventCounters into the metrics registry:
            # every event also increments a jobs_events_* counter there.
            self._metrics_sink = EventCounterSink(tel.metrics)
            self.log.add_sink(self._metrics_sink)
        batch_span = (
            tel.tracer.begin("orchestrator.run_specs", specs=len(specs))
            if tel is not None and tel.tracer is not None
            else None
        )
        try:
            return self._run_specs_inner(specs)
        finally:
            if batch_span is not None:
                tel.tracer.end(batch_span)

    def _run_specs_inner(self, specs: Sequence[RunSpec]) -> List[BatchResult]:
        """The body of :meth:`run_specs` (separated for span scoping)."""
        batch_started = time.monotonic()
        self.log.emit("batch_start", detail=f"{len(specs)} specs")

        keys: List[str] = []
        unique: Dict[str, RunSpec] = {}
        for spec in specs:
            key = spec_key(spec)
            keys.append(key)
            if key in unique:
                self.log.emit("deduped", key=key)
            else:
                unique[key] = spec
                self.log.emit("submitted", key=key)

        replayed = {} if self.journal is None else self.journal.load()
        outcomes: Dict[str, BatchResult] = {}
        misses: List[str] = []
        for key in unique:
            found = self._lookup(key, replayed)
            if found is not None:
                outcomes[key] = found
            else:
                misses.append(key)

        misses = self._gate_misses(misses, outcomes)

        if misses:
            payloads = [unique[key].to_dict() for key in misses]
            if self._pool is None:
                raw = self._execute_serial(misses, payloads)
            else:
                raw = self._execute_pooled(misses, payloads)
            for index, (key, result) in enumerate(zip(misses, raw)):
                if isinstance(result, JobFailure):
                    outcomes[key] = JobFailure(
                        error=result.error, attempts=result.attempts,
                        wall_time=result.wall_time, index=index, key=key,
                        kind=result.kind,
                    )
                    self._record_terminal_failure(key, result)
                    continue
                outcomes[key] = RunOutcome.from_dict(result)
                if self.breaker is not None:
                    self.breaker.record_success(key)
                if self.cache is not None:
                    self.cache.put(key, unique[key].to_dict(), result)
                if self.journal is not None:
                    self.journal.record(key, result)

        self.counters.completed += len(specs)
        self.log.emit(
            "batch_end",
            wall_time=time.monotonic() - batch_started,
            detail=self.counters.summary(),
        )
        return [outcomes[key] for key in keys]
