"""Declarative, picklable run specifications and their executor.

A :class:`RunSpec` is the unit of work of the orchestration subsystem:
pure data (machine description, workload names, mapping, monitor/policy
configuration, seeds) that fully determines one simulation. Because it is
data, it can be hashed (:func:`repro.jobs.keys.spec_key`), cached,
pickled to a worker process, and re-executed bit-for-bit anywhere.

**Determinism and task-id normalisation.** Simulated task ids are drawn
from a process-global counter, and several code paths iterate frozensets
of tids whose ordering depends on the *absolute* id values — so the same
logical mix can interleave (slightly) differently depending on how many
tasks were ever built in the host process. :func:`execute_spec` therefore
renumbers tasks to the stable namespace ``0..n-1`` (in workload order)
before running: every mapping in a spec is expressed in these *task
indices*, group position meaning core number, and every outcome reports
decisions/majorities in the same namespace. This is what makes a spec's
result identical no matter which process — parent or any worker —
executes it.

Workload kinds:

* ``"spec"`` — single-threaded SPEC-like benchmarks (one task per name);
* ``"parsec"`` — multithreaded PARSEC-like apps (task index runs over the
  flattened thread list, process index over the apps);
* ``"vm"`` — single-vcpu Xen-like VMs plus the Dom0 background task
  (vcpus take indices ``0..n-1``; Dom0 takes index ``n``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

from repro.alloc.interference import InterferenceGraphPolicy
from repro.alloc.monitor import UserLevelMonitor
from repro.alloc.multithreaded import TwoPhasePolicy
from repro.alloc.weight_sort import WeightSortPolicy
from repro.alloc.weighted import WeightedInterferenceGraphPolicy
from repro.cache.config import CacheConfig, CacheGeometry
from repro.core.signature import SignatureConfig
from repro.errors import ConfigurationError, JobError, SimulationError
from repro.estimate.dispatch import BACKENDS
from repro.estimate.options import EstimatorOptions
from repro.jobs.keys import SPEC_SCHEMA_VERSION
from repro.perf.machine import MachineConfig
from repro.supervise.heartbeat import tick as heartbeat_tick
from repro.perf.timing import TimingModel
from repro.sched.affinity import Mapping
from repro.sched.os_model import SchedulerConfig

__all__ = [
    "WORKLOAD_KINDS",
    "POLICY_REGISTRY",
    "build_policy",
    "policy_to_spec",
    "machine_to_dict",
    "machine_from_dict",
    "WorkloadSpec",
    "MonitorSpec",
    "RunSpec",
    "make_run_spec",
    "TaskOutcome",
    "RunOutcome",
    "execute_spec",
]

#: Workload families a spec can describe.
WORKLOAD_KINDS = ("spec", "parsec", "vm")

#: Allocation policies constructible from a spec, by registry name.
POLICY_REGISTRY = {
    "weight_sort": WeightSortPolicy,
    "interference_graph": InterferenceGraphPolicy,
    "weighted_interference_graph": WeightedInterferenceGraphPolicy,
    "two_phase": TwoPhasePolicy,
}


def build_policy(name: str, kwargs: Optional[TMapping[str, Any]] = None):
    """Instantiate a registered allocation policy from its spec form."""
    try:
        cls = POLICY_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; registered: {sorted(POLICY_REGISTRY)}"
        ) from None
    return cls(**dict(kwargs or {}))


def policy_to_spec(policy) -> Tuple[str, Dict[str, Any]]:
    """Extract the (registry name, constructor kwargs) of a policy instance.

    Only registry policies can be described declaratively; anything else
    raises :class:`~repro.errors.ConfigurationError` — run such policies
    through the serial (orchestrator-less) code path instead.
    """
    if isinstance(policy, TwoPhasePolicy):
        return "two_phase", {"method": policy.method, "seed": policy.seed}
    if isinstance(policy, WeightedInterferenceGraphPolicy):
        return "weighted_interference_graph", {
            "method": policy.method, "seed": policy.seed,
        }
    if isinstance(policy, InterferenceGraphPolicy):
        return "interference_graph", {
            "method": policy.method, "seed": policy.seed,
        }
    if isinstance(policy, WeightSortPolicy):
        return "weight_sort", {}
    raise ConfigurationError(
        f"policy {type(policy).__name__} is not spec-describable; "
        "use the serial code path or register it in POLICY_REGISTRY"
    )


# ---------------------------------------------------------------------------
# Machine (de)serialisation
# ---------------------------------------------------------------------------
def machine_to_dict(machine: MachineConfig) -> Dict[str, Any]:
    """Full, order-stable dict form of a machine configuration."""
    return asdict(machine)


def _cache_from_dict(d: Optional[TMapping[str, Any]]) -> Optional[CacheConfig]:
    if d is None:
        return None
    return CacheConfig(
        name=d["name"],
        geometry=CacheGeometry(**d["geometry"]),
        replacement=d["replacement"],
    )


def machine_from_dict(d: TMapping[str, Any]) -> MachineConfig:
    """Rebuild a :class:`~repro.perf.machine.MachineConfig` from its dict."""
    return MachineConfig(
        name=d["name"],
        num_cores=d["num_cores"],
        l2=_cache_from_dict(d["l2"]),
        shared_l2=d["shared_l2"],
        l1=_cache_from_dict(d.get("l1")),
        timing=TimingModel(**d["timing"]),
        clock_hz=d["clock_hz"],
    )


# ---------------------------------------------------------------------------
# Spec dataclasses
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Which workload to build, declaratively.

    Parameters
    ----------
    kind:
        One of :data:`WORKLOAD_KINDS`.
    names:
        Benchmark / application / VM profile names, in build order.
    instructions:
        Per-run instruction budget (per *thread* for ``parsec``).
    seed:
        Build seed fed to the task/VM builders (generator seeds derive
        from it per name and position).
    """

    kind: str
    names: Tuple[str, ...]
    instructions: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; expected {WORKLOAD_KINDS}"
            )
        if not self.names:
            raise ConfigurationError("workload needs at least one name")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form."""
        return {
            "kind": self.kind,
            "names": list(self.names),
            "instructions": self.instructions,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: TMapping[str, Any]) -> "WorkloadSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            kind=d["kind"],
            names=tuple(d["names"]),
            instructions=d["instructions"],
            seed=d["seed"],
        )


@dataclass(frozen=True)
class MonitorSpec:
    """Phase-1 monitor configuration: which policy runs, how often.

    Parameters
    ----------
    policy:
        Registry name (see :data:`POLICY_REGISTRY`).
    policy_kwargs:
        Constructor kwargs of the policy (JSON-native values only).
    interval_cycles:
        Allocator invocation period in simulated cycles.
    apply:
        Whether decisions are pushed back via affinity bits.
    """

    policy: str
    policy_kwargs: Tuple[Tuple[str, Any], ...] = ()
    interval_cycles: float = 8_000_000.0
    apply: bool = True

    @classmethod
    def make(
        cls,
        policy: str,
        policy_kwargs: Optional[TMapping[str, Any]] = None,
        interval_cycles: float = 8_000_000.0,
        apply: bool = True,
    ) -> "MonitorSpec":
        """Build from a kwargs dict (stored internally as sorted items)."""
        items = tuple(sorted((policy_kwargs or {}).items()))
        return cls(policy, items, float(interval_cycles), bool(apply))

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The policy constructor kwargs as a dict."""
        return dict(self.policy_kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form."""
        return {
            "policy": self.policy,
            "policy_kwargs": self.kwargs,
            "interval_cycles": self.interval_cycles,
            "apply": self.apply,
        }

    @classmethod
    def from_dict(cls, d: TMapping[str, Any]) -> "MonitorSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls.make(
            d["policy"], d["policy_kwargs"], d["interval_cycles"], d["apply"]
        )


IndexGroups = Tuple[Tuple[int, ...], ...]


def _normalize_groups(groups: Optional[Sequence[Sequence[int]]]) -> Optional[IndexGroups]:
    if groups is None:
        return None
    return tuple(tuple(sorted(int(i) for i in g)) for g in groups)


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation, as pure data.

    Parameters
    ----------
    machine:
        Machine description (:func:`machine_to_dict` form).
    workload:
        What runs (:class:`WorkloadSpec`).
    mapping:
        Optional pinned placement as groups of *task indices*; group
        position is the core number. ``None`` means the simulator's
        default round-robin placement.
    monitor:
        Optional phase-1 monitor (:class:`MonitorSpec`).
    signature:
        Optional full :class:`~repro.core.signature.SignatureConfig`
        kwargs (attaches the signature hardware).
    scheduler:
        Optional full :class:`~repro.sched.os_model.SchedulerConfig`
        kwargs.
    overhead:
        Optional :class:`~repro.virt.overhead.VirtualizationOverhead`
        kwargs (``vm`` workloads only).
    seed:
        Simulation seed (cache placement, Dom0 workload).
    batch_accesses:
        Interleaving grain of the simulator.
    min_wall_cycles / max_wall_cycles:
        Optional wall-clock bounds (phase-1 gathering / truncated runs).
    faults:
        Optional signature fault-injection plan — the ``to_dict`` form of
        a :class:`~repro.faults.injectors.SignatureFaultInjector`
        (``{"kind": ..., ...}``). ``None`` (the default) runs fault-free
        and is **omitted from the canonical dict**, so pre-existing spec
        keys and cached outcomes stay valid.
    backend:
        Which simulation backend executes the spec — one of
        :data:`~repro.estimate.dispatch.BACKENDS`. The default
        ``"exact"`` is **omitted from the canonical dict** (same
        backward-compatibility pattern as ``faults``); estimate
        backends enter the content address, so exact and estimated
        outcomes never share a cache entry.
    estimator:
        Optional :class:`~repro.estimate.options.EstimatorOptions`
        kwargs for the estimate backends (``None`` means defaults, and
        is omitted from the canonical dict). Rejected when
        ``backend="exact"`` — silent no-op knobs would poison cache
        keys.
    """

    machine: TMapping[str, Any]
    workload: WorkloadSpec
    mapping: Optional[IndexGroups] = None
    monitor: Optional[MonitorSpec] = None
    signature: Optional[TMapping[str, Any]] = None
    scheduler: Optional[TMapping[str, Any]] = None
    overhead: Optional[TMapping[str, Any]] = None
    seed: int = 0
    batch_accesses: int = 256
    min_wall_cycles: Optional[float] = None
    max_wall_cycles: Optional[float] = None
    faults: Optional[TMapping[str, Any]] = None
    backend: str = "exact"
    estimator: Optional[TMapping[str, Any]] = None

    #: Every field with a canonical serialisation in :meth:`to_dict`.
    #: A field added to the dataclass but not here (and to ``to_dict``)
    #: would silently drop out of the content address — hashing fails
    #: loudly instead.
    _SERIALISED_FIELDS = frozenset({
        "machine", "workload", "mapping", "monitor", "signature",
        "scheduler", "overhead", "seed", "batch_accesses",
        "min_wall_cycles", "max_wall_cycles", "faults", "backend",
        "estimator",
    })

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.estimator is not None:
            if self.backend == "exact":
                raise ConfigurationError(
                    "estimator options are meaningless on the exact "
                    "backend; set backend='analytical' or 'sampled'"
                )
            # Validate eagerly: unknown estimator knobs fail at spec
            # construction, not in a worker process.
            EstimatorOptions.from_dict(self.estimator)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (the input to key hashing).

        Fails loudly (:class:`~repro.errors.JobError`) if the dataclass
        has grown a field this method does not serialise — an unknown
        extension field must never be silently excluded from the
        content address.
        """
        unhandled = {
            f.name for f in fields(self)
        } - self._SERIALISED_FIELDS
        if unhandled:
            raise JobError(
                f"run spec fields {sorted(unhandled)} have no canonical "
                "serialisation; extend RunSpec.to_dict (and bump the "
                "spec schema if semantics changed) before hashing"
            )
        d = {
            "schema": SPEC_SCHEMA_VERSION,
            "machine": dict(self.machine),
            "workload": self.workload.to_dict(),
            "mapping": (
                None if self.mapping is None
                else [list(g) for g in self.mapping]
            ),
            "monitor": None if self.monitor is None else self.monitor.to_dict(),
            "signature": None if self.signature is None else dict(self.signature),
            "scheduler": None if self.scheduler is None else dict(self.scheduler),
            "overhead": None if self.overhead is None else dict(self.overhead),
            "seed": self.seed,
            "batch_accesses": self.batch_accesses,
            "min_wall_cycles": self.min_wall_cycles,
            "max_wall_cycles": self.max_wall_cycles,
        }
        if self.faults is not None:
            d["faults"] = dict(self.faults)
        if self.backend != "exact":
            d["backend"] = self.backend
        if self.estimator is not None:
            d["estimator"] = dict(self.estimator)
        return d

    @classmethod
    def from_dict(cls, d: TMapping[str, Any]) -> "RunSpec":
        """Rebuild from :meth:`to_dict` output (schema-checked).

        Unknown keys fail loudly: a spec dict carrying a field this
        version cannot serialise back would round-trip to a *different*
        content address, so it is rejected outright.
        """
        schema = d.get("schema")
        if schema != SPEC_SCHEMA_VERSION:
            raise JobError(
                f"run spec schema {schema!r} != supported {SPEC_SCHEMA_VERSION}"
            )
        unknown = set(d) - cls._SERIALISED_FIELDS - {"schema"}
        if unknown:
            raise JobError(
                f"run spec dict carries unknown fields {sorted(unknown)}; "
                "refusing to round-trip a spec this version cannot rehash"
            )
        return cls(
            machine=dict(d["machine"]),
            workload=WorkloadSpec.from_dict(d["workload"]),
            mapping=_normalize_groups(d.get("mapping")),
            monitor=(
                None if d.get("monitor") is None
                else MonitorSpec.from_dict(d["monitor"])
            ),
            signature=None if d.get("signature") is None else dict(d["signature"]),
            scheduler=None if d.get("scheduler") is None else dict(d["scheduler"]),
            overhead=None if d.get("overhead") is None else dict(d["overhead"]),
            seed=d["seed"],
            batch_accesses=d["batch_accesses"],
            min_wall_cycles=d.get("min_wall_cycles"),
            max_wall_cycles=d.get("max_wall_cycles"),
            faults=None if d.get("faults") is None else dict(d["faults"]),
            backend=d.get("backend", "exact"),
            estimator=(
                None if d.get("estimator") is None else dict(d["estimator"])
            ),
        )


def make_run_spec(
    machine: MachineConfig,
    workload: WorkloadSpec,
    *,
    mapping: Optional[Sequence[Sequence[int]]] = None,
    monitor: Optional[MonitorSpec] = None,
    signature: Optional[SignatureConfig] = None,
    scheduler: Optional[SchedulerConfig] = None,
    overhead: Optional[TMapping[str, Any]] = None,
    seed: int = 0,
    batch_accesses: int = 256,
    min_wall_cycles: Optional[float] = None,
    max_wall_cycles: Optional[float] = None,
    faults: Optional[TMapping[str, Any]] = None,
    backend: str = "exact",
    estimator: Optional[TMapping[str, Any]] = None,
) -> RunSpec:
    """Build a :class:`RunSpec` from live configuration objects."""
    return RunSpec(
        machine=machine_to_dict(machine),
        workload=workload,
        mapping=_normalize_groups(mapping),
        monitor=monitor,
        signature=None if signature is None else asdict(signature),
        scheduler=None if scheduler is None else asdict(scheduler),
        overhead=None if overhead is None else dict(overhead),
        seed=seed,
        batch_accesses=batch_accesses,
        min_wall_cycles=min_wall_cycles,
        max_wall_cycles=max_wall_cycles,
        faults=None if faults is None else dict(faults),
        backend=backend,
        estimator=None if estimator is None else dict(estimator),
    )


# ---------------------------------------------------------------------------
# Outcomes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TaskOutcome:
    """Per-task summary of one executed spec (index-space ids)."""

    index: int
    name: str
    process: int
    user_cycles: Optional[float]
    completions: int
    context_switches: int


@dataclass(frozen=True)
class RunOutcome:
    """JSON-safe summary of one simulation, in the spec's index namespace.

    ``decisions``/``majority`` are canonical mappings serialised as
    groups of task indices (each group sorted, groups in canonical
    order). ``cached`` is a parent-side annotation — it is *not* part of
    the persisted form. ``degradations`` carries the monitor's structured
    degradation events (empty for healthy runs, and omitted from the
    persisted form when empty so pre-existing cache entries stay valid).
    """

    wall_cycles: float
    l2_miss_rate: float
    tasks: Tuple[TaskOutcome, ...]
    decisions: Tuple[IndexGroups, ...] = ()
    majority: Optional[IndexGroups] = None
    degradations: Tuple[Dict[str, Any], ...] = ()
    cached: bool = field(default=False, compare=False)

    def user_time(self, name: str) -> float:
        """First-completion user time of the named task (first match)."""
        for t in self.tasks:
            if t.name == name:
                if t.user_cycles is None:
                    raise SimulationError(f"task {name!r} never completed")
                return t.user_cycles
        raise KeyError(f"no task named {name!r}")

    def process_time(self, process: int) -> float:
        """Slowest-thread first-completion time of one process index."""
        times = [t.user_cycles for t in self.tasks if t.process == process]
        if not times or any(x is None for x in times):
            raise SimulationError(f"process {process} never completed")
        return max(times)

    def decisions_mappings(self) -> List[Mapping]:
        """The phase-1 decision history as :class:`Mapping` objects."""
        return [Mapping.from_groups(groups) for groups in self.decisions]

    def majority_mapping(self) -> Optional[Mapping]:
        """The majority decision as a :class:`Mapping` (or ``None``)."""
        if self.majority is None:
            return None
        return Mapping.from_groups(self.majority)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form (what the result cache stores)."""
        d = {
            "wall_cycles": self.wall_cycles,
            "l2_miss_rate": self.l2_miss_rate,
            "tasks": [asdict(t) for t in self.tasks],
            "decisions": [[list(g) for g in m] for m in self.decisions],
            "majority": (
                None if self.majority is None
                else [list(g) for g in self.majority]
            ),
        }
        if self.degradations:
            d["degradations"] = [dict(e) for e in self.degradations]
        return d

    @classmethod
    def from_dict(cls, d: TMapping[str, Any], cached: bool = False) -> "RunOutcome":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            wall_cycles=d["wall_cycles"],
            l2_miss_rate=d["l2_miss_rate"],
            tasks=tuple(TaskOutcome(**t) for t in d["tasks"]),
            decisions=tuple(
                _normalize_groups(m) for m in d.get("decisions", ())
            ),
            majority=_normalize_groups(d.get("majority")),
            degradations=tuple(
                dict(e) for e in d.get("degradations", ())
            ),
            cached=cached,
        )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
def _mapping_groups(mapping: Mapping) -> IndexGroups:
    """Serialise a canonical index-space mapping as sorted groups."""
    return tuple(tuple(sorted(g)) for g in mapping.groups)


def _build_native_tasks(workload: WorkloadSpec):
    """Build + normalise tasks for 'spec'/'parsec' workloads.

    Returns ``(tasks, processes)``; *processes* is ``None`` for the
    single-threaded kind.
    """
    from repro.perf.runner import build_parsec_processes, build_tasks

    if workload.kind == "spec":
        tasks = build_tasks(
            list(workload.names),
            instructions=workload.instructions,
            seed=workload.seed,
        )
        for i, task in enumerate(tasks):
            task.tid = i
            task.process_id = i
        return tasks, None
    processes = build_parsec_processes(
        list(workload.names),
        instructions_per_thread=workload.instructions,
        seed=workload.seed,
    )
    tasks = [t for p in processes for t in p.tasks]
    for i, task in enumerate(tasks):
        task.tid = i
    for pi, process in enumerate(processes):
        process.process_id = pi
        for task in process.tasks:
            task.process_id = pi
    return tasks, processes


def execute_spec(payload: TMapping[str, Any]) -> Dict[str, Any]:
    """Execute one serialised :class:`RunSpec`; return the outcome dict.

    This is the worker-side entry point of the orchestration subsystem:
    it is a module-level function (picklable by reference), takes only
    JSON-native data and returns only JSON-native data. Task/process ids
    are normalised to the spec's index namespace before the run, so the
    result is bit-for-bit identical in any host process.
    """
    from repro.telemetry.context import current as telemetry_current, init_from_env

    # Worker processes re-initialise telemetry from REPRO_TRACE (spawned
    # workers inherit the environment but not live objects); in the
    # parent this is a no-op unless the env var is set and nothing is
    # configured yet.
    tel = init_from_env() or telemetry_current()
    spec = payload if isinstance(payload, RunSpec) else RunSpec.from_dict(payload)
    tel_span = (
        tel.tracer.begin(
            "job.execute_spec",
            kind=spec.workload.kind,
            names="+".join(spec.workload.names),
        )
        if tel is not None and tel.tracer is not None
        else None
    )
    try:
        return _execute_spec_inner(spec)
    finally:
        if tel_span is not None:
            tel.tracer.end(tel_span)
        if tel is not None and tel.autoflush:
            tel.flush_part()


def _execute_spec_inner(spec: RunSpec) -> Dict[str, Any]:
    """Build and run the simulation one :class:`RunSpec` describes.

    The heartbeat ticks at the phase boundaries (build / run / finish)
    are no-ops outside a supervised worker; under supervision they let
    the watchdog tell a *hung* worker from one that is merely between
    ticker beats during a long build.
    """
    heartbeat_tick("build")
    machine = machine_from_dict(spec.machine)
    signature = (
        None if spec.signature is None else SignatureConfig(**spec.signature)
    )
    scheduler = (
        None if spec.scheduler is None else SchedulerConfig(**spec.scheduler)
    )
    mapping = (
        None if spec.mapping is None else Mapping.from_groups(spec.mapping)
    )
    injector = _build_injector(spec)

    heartbeat_tick("run")
    if spec.backend != "exact":
        result = _execute_estimated(spec, machine, scheduler, mapping)
    elif spec.workload.kind == "vm":
        result = _execute_vm(
            spec, machine, signature, scheduler, mapping, injector
        )
    else:
        from repro.perf.runner import run_mix

        tasks, _ = _build_native_tasks(spec.workload)
        monitor = _build_monitor(spec, vm=False)
        result = run_mix(
            machine,
            tasks,
            mapping=mapping,
            monitor=monitor,
            signature_config=signature,
            scheduler_config=scheduler,
            batch_accesses=spec.batch_accesses,
            seed=spec.seed,
            min_wall_cycles=spec.min_wall_cycles,
            max_wall_cycles=spec.max_wall_cycles,
            signature_injector=injector,
        )

    heartbeat_tick("finish")
    outcome = RunOutcome(
        wall_cycles=result.wall_cycles,
        l2_miss_rate=result.l2_miss_rate,
        tasks=tuple(
            TaskOutcome(
                index=t.tid,
                name=t.name,
                process=t.process_id,
                user_cycles=t.first_completion_cycles,
                completions=t.completions,
                context_switches=t.context_switches,
            )
            for t in result.tasks
        ),
        decisions=tuple(_mapping_groups(d) for d in result.decisions),
        majority=(
            None if result.majority_mapping is None
            else _mapping_groups(result.majority_mapping)
        ),
        degradations=tuple(result.degradations),
    )
    return outcome.to_dict()


def _execute_estimated(spec: RunSpec, machine, scheduler, mapping):
    """Run a spec through an estimate backend (loudly rejecting the rest).

    The estimate backends answer plain measurement questions (user
    times, degradations, miss rates); features that need the exact
    engine's event stream — monitors, signature hardware, fault
    injection, virtualization, wall-cycle bounds — are configuration
    errors, not silent downgrades.
    """
    from repro.estimate.dispatch import estimate_mix

    unsupported = [
        name
        for name, value in (
            ("monitor", spec.monitor),
            ("signature", spec.signature),
            ("overhead", spec.overhead),
            ("faults", spec.faults),
            ("min_wall_cycles", spec.min_wall_cycles),
            ("max_wall_cycles", spec.max_wall_cycles),
        )
        if value is not None
    ]
    if unsupported:
        raise ConfigurationError(
            f"the {spec.backend!r} backend does not support "
            f"{', '.join(unsupported)}; use backend='exact'"
        )
    if spec.workload.kind == "vm":
        raise ConfigurationError(
            f"the {spec.backend!r} backend does not support 'vm' "
            "workloads; use backend='exact'"
        )
    tasks, _ = _build_native_tasks(spec.workload)
    result, _report = estimate_mix(
        machine,
        tasks,
        backend=spec.backend,
        mapping=mapping,
        scheduler_config=scheduler,
        batch_accesses=spec.batch_accesses,
        seed=spec.seed,
        options=EstimatorOptions.from_dict(spec.estimator),
    )
    return result


def _build_injector(spec: RunSpec):
    """Instantiate the spec's signature fault injector (or ``None``).

    Imported lazily: :mod:`repro.faults` imports this module (the chaos
    harness wraps :func:`execute_spec`), so a top-level import would
    cycle.
    """
    if spec.faults is None:
        return None
    from repro.faults.injectors import build_injector

    return build_injector(spec.faults)


def _build_monitor(spec: RunSpec, vm: bool):
    """Instantiate the monitor (or Dom0 agent) described by the spec.

    Non-VM monitors get the signature filter's entry count (when the spec
    attaches signature hardware) so the saturation health check is armed;
    with the default ``saturation_fraction`` of 1.0 this cannot trigger
    on a healthy run — only a saturating fault reaches a full filter.
    """
    if spec.monitor is None:
        return None
    policy = build_policy(spec.monitor.policy, spec.monitor.kwargs)
    if vm:
        from repro.virt.dom0 import Dom0AllocationAgent

        return Dom0AllocationAgent(
            policy,
            interval_cycles=spec.monitor.interval_cycles,
            apply=spec.monitor.apply,
        )
    capacity = (
        None if spec.signature is None
        else SignatureConfig(**spec.signature).num_entries
    )
    return UserLevelMonitor(
        policy,
        interval_cycles=spec.monitor.interval_cycles,
        apply=spec.monitor.apply,
        signature_capacity=capacity,
    )


def _execute_vm(spec, machine, signature, scheduler, mapping, injector=None):
    """Build the hypervisor stack for a 'vm' spec and run it."""
    # Imported lazily: repro.virt.dom0 imports repro.perf.experiment,
    # which imports this module — a top-level import would cycle.
    from repro.virt.dom0 import _build_vms
    from repro.virt.hypervisor import Hypervisor
    from repro.virt.overhead import VirtualizationOverhead

    vms = _build_vms(
        list(spec.workload.names), spec.workload.instructions, spec.workload.seed
    )
    overhead = (
        None if spec.overhead is None
        else VirtualizationOverhead(**spec.overhead)
    )
    hypervisor = Hypervisor(machine, vms, overhead=overhead, seed=spec.seed)
    index = 0
    for vi, vm in enumerate(hypervisor.vms):
        for vcpu in vm.vcpus:
            vcpu.tid = index
            vcpu.process_id = vi
            index += 1
    if hypervisor.dom0_task is not None:
        hypervisor.dom0_task.tid = index
        hypervisor.dom0_task.process_id = len(hypervisor.vms)
    monitor = _build_monitor(spec, vm=True)
    return hypervisor.run(
        mapping=mapping,
        signature_config=signature,
        monitor=monitor,
        scheduler_config=scheduler,
        batch_accesses=spec.batch_accesses,
        seed=spec.seed,
        min_wall_cycles=spec.min_wall_cycles,
        max_wall_cycles=spec.max_wall_cycles,
        signature_injector=injector,
    )
