"""Persisted poison-spec quarantine: a durable denylist of spec keys.

A *poison* spec fails terminally every time it runs — a pathological
parameter combination that crashes the simulator, hangs a worker, or
blows the memory budget deterministically. The circuit breaker stops it
within one process, but a resumed campaign (new process, same journal)
would innocently resubmit it and crash the pool every wave all over
again. The quarantine is the breaker's durable memory: when a key's
circuit trips, the orchestrator writes it here, and every later run —
including resume-after-crash — consults the file *before* submitting.

Format mirrors :class:`~repro.jobs.journal.RunJournal` (the same
durability rules, machine-checked by RPR2xx): one JSON line per key,
written with a single ``write``, flushed and fsynced before the caller
proceeds::

    {"version": 1, "key": "<sha256>", "reason": "...", "failures": N}\n

Loading tolerates a torn tail and garbled lines (counted in
:attr:`PoisonQuarantine.corrupt_lines`, never raised), duplicate keys
are benign (last record wins), and a quarantined spec surfaces as a
structured :class:`~repro.jobs.failures.JobFailure` with
``kind='quarantined'`` — flowing into ``SweepResult.failures`` exactly
like PR 2's degradation events, so excluded runs are *named* in the
final report rather than silently rerun or silently dropped.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError

__all__ = ["QUARANTINE_SCHEMA_VERSION", "PoisonQuarantine"]

#: Version of the quarantine line schema; bump to orphan old files.
QUARANTINE_SCHEMA_VERSION = 1


class PoisonQuarantine:
    """Durable key → reason denylist backing the circuit breaker.

    Parameters
    ----------
    path:
        Quarantine file; created (with parents) on the first add. An
        existing directory at this path is rejected immediately.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        if self.path.exists() and self.path.is_dir():
            raise ConfigurationError(
                f"quarantine path {self.path} is a directory"
            )
        self.corrupt_lines = 0
        self._records: Dict[str, Dict[str, Any]] = self._load()

    def _load(self) -> Dict[str, Dict[str, Any]]:
        records: Dict[str, Dict[str, Any]] = {}
        self.corrupt_lines = 0
        try:
            text = self.path.read_text(encoding="ascii")
        except FileNotFoundError:
            return records
        except (OSError, UnicodeDecodeError):
            self.corrupt_lines += 1
            return records
        for line in text.split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if record["version"] != QUARANTINE_SCHEMA_VERSION:
                    raise ValueError("quarantine schema mismatch")
                key = record["key"]
                if not isinstance(key, str) or not key:
                    raise ValueError("malformed quarantine record")
            except (ValueError, KeyError, TypeError):
                self.corrupt_lines += 1
                continue
            records[key] = record
        return records

    def reload(self) -> None:
        """Re-read the file (another process may have quarantined keys)."""
        self._records = self._load()

    def add(self, key: str, reason: str, failures: int = 0) -> None:
        """Durably quarantine *key* (idempotent; fsynced before return)."""
        record = {
            "version": QUARANTINE_SCHEMA_VERSION,
            "key": key,
            "reason": str(reason),
            "failures": int(failures),
        }
        self._records[key] = record
        # Canonical one-line JSON (sorted keys, no whitespace) — the same
        # shape as repro.jobs.keys.canonical_json, inlined so the
        # supervise package never imports repro.jobs (which imports it).
        line = (
            json.dumps(
                record, sort_keys=True, separators=(",", ":"),
                allow_nan=False,
            )
            + "\n"
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._tail_is_torn():
            line = "\n" + line
        with open(self.path, "a", encoding="ascii") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def _tail_is_torn(self) -> bool:
        """True when the file is non-empty and lacks a final newline."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (FileNotFoundError, OSError):
            return False

    def reason(self, key: str) -> Optional[str]:
        """Why *key* is quarantined (``None`` if it is not)."""
        record = self._records.get(key)
        return None if record is None else record.get("reason", "")

    def keys(self):
        """The quarantined keys (sorted)."""
        return sorted(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"PoisonQuarantine({str(self.path)!r}, {len(self._records)} key(s))"
        )
