"""Parent-side watchdog: hang detection and per-worker resource budgets.

The :class:`Watchdog` is pure policy — it owns no processes and no
clocks. The worker pool feeds it what it observed (worker-side start
stamps, the heartbeat board snapshot, "now") and gets back structured
verdicts; the pool then does the killing. Keeping the judgement free of
side effects makes every decision unit-testable with fabricated beats.

Two independent checks per running job:

* **hang** — the age of the job's most recent heartbeat (or of its
  start, if it never ticked) exceeds ``hang_timeout``. A *slow* job
  keeps ticking and is never flagged; only a job whose worker stopped
  proving liveness is. This fires well before the per-job wall-clock
  timeout, which remains the backstop for slow-but-alive jobs.
* **over_budget** — the worker's self-reported RSS high-water mark
  (carried on every heartbeat) exceeds ``max_rss_mb``. A runaway
  allocation is caught while the job still ticks, long before the OS
  OOM killer turns it into an anonymous ``BrokenProcessPool``.

Verdicts carry a machine-readable ``kind`` (``'hung'`` /
``'over_budget'``) that flows into job events, `JobFailure.kind`, the
circuit breaker, and ultimately the quarantine's reason strings —
graceful-degradation consumers see *why* a worker was put down, not
just that it died.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.supervise.heartbeat import Beat

__all__ = ["WatchdogVerdict", "Watchdog"]


@dataclass(frozen=True)
class WatchdogVerdict:
    """One condemned job: which, why, and the evidence."""

    index: int
    kind: str  # 'hung' | 'over_budget'
    detail: str


class Watchdog:
    """Judges running jobs from heartbeat evidence.

    Parameters
    ----------
    hang_timeout:
        Seconds of heartbeat silence after which a started job is
        declared hung (``None`` disables hang detection).
    max_rss_mb:
        Worker RSS high-water budget in MB (``None`` disables the
        memory check).
    """

    def __init__(
        self,
        hang_timeout: Optional[float] = None,
        max_rss_mb: Optional[float] = None,
    ):
        if hang_timeout is not None and hang_timeout <= 0:
            raise ConfigurationError("hang_timeout must be > 0")
        if max_rss_mb is not None and max_rss_mb <= 0:
            raise ConfigurationError("max_rss_mb must be > 0")
        self.hang_timeout = hang_timeout
        self.max_rss_mb = max_rss_mb

    @property
    def enabled(self) -> bool:
        """Whether any check is armed (the pool skips the board if not)."""
        return self.hang_timeout is not None or self.max_rss_mb is not None

    def last_seen(
        self,
        wave: int,
        index: int,
        starts: Mapping[int, float],
        beats: Mapping[Tuple[int, int], Beat],
    ) -> Optional[float]:
        """When job *index* last proved liveness (start or latest beat)."""
        stamp = starts.get(index)
        beat = beats.get((wave, index))
        if beat is not None:
            stamp = beat[2] if stamp is None else max(stamp, beat[2])
        return stamp

    def max_heartbeat_age(
        self,
        wave: int,
        running: Sequence[int],
        starts: Mapping[int, float],
        beats: Mapping[Tuple[int, int], Beat],
        now: float,
    ) -> float:
        """Oldest heartbeat age among started *running* jobs (gauge feed)."""
        ages = [
            now - stamp
            for stamp in (
                self.last_seen(wave, i, starts, beats) for i in running
            )
            if stamp is not None
        ]
        return max(ages, default=0.0)

    def inspect(
        self,
        wave: int,
        running: Sequence[int],
        starts: Mapping[int, float],
        beats: Mapping[Tuple[int, int], Beat],
        now: float,
    ) -> List[WatchdogVerdict]:
        """Condemn any started job that is hung or over its RSS budget.

        Jobs without a start record are still queued — a queued job
        cannot be hung, so it is never judged.
        """
        verdicts: List[WatchdogVerdict] = []
        for index in running:
            if index not in starts:
                continue
            beat = beats.get((wave, index))
            if (
                self.max_rss_mb is not None
                and beat is not None
                and beat[1] > self.max_rss_mb * 1024.0
            ):
                verdicts.append(
                    WatchdogVerdict(
                        index=index,
                        kind="over_budget",
                        detail=(
                            f"worker RSS {beat[1] / 1024.0:.0f} MB exceeded "
                            f"budget {self.max_rss_mb:g} MB"
                        ),
                    )
                )
                continue
            if self.hang_timeout is None:
                continue
            stamp = self.last_seen(wave, index, starts, beats)
            age = now - stamp if stamp is not None else 0.0
            if age >= self.hang_timeout:
                verdicts.append(
                    WatchdogVerdict(
                        index=index,
                        kind="hung",
                        detail=(
                            f"no heartbeat for {age:.2f}s "
                            f"(hang timeout {self.hang_timeout:g}s)"
                        ),
                    )
                )
        return verdicts
