"""One bundle of supervision policy for the orchestration stack.

:class:`SupervisionConfig` is how callers (the CLI, experiment drivers,
tests) switch the supervision subsystem on: it carries the heartbeat /
watchdog knobs consumed by :class:`~repro.jobs.pool.WorkerPool`, the
retry policy, and the breaker / quarantine knobs consumed by
:class:`~repro.jobs.orchestrator.Orchestrator`. Everything defaults to
*off* — an orchestrator built without a config (or with the default
one) runs the exact pre-supervision code paths, and the no-fault
baseline test pins that supervision **enabled** still produces
byte-identical outcomes (supervision may only change *when workers are
killed*, never *what results are*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.supervise.breaker import CircuitBreaker
from repro.supervise.quarantine import PoisonQuarantine
from repro.supervise.retry import RetryPolicy
from repro.supervise.watchdog import Watchdog

__all__ = ["SupervisionConfig"]

#: Default worker heartbeat period (seconds) when supervision is armed.
DEFAULT_HEARTBEAT_INTERVAL = 0.2


@dataclass
class SupervisionConfig:
    """Everything the supervision subsystem needs, in one object.

    Parameters
    ----------
    hang_timeout:
        Kill a started job after this many seconds of heartbeat silence
        (``None`` disables hang detection).
    heartbeat_interval:
        Worker ticker period; must be comfortably under ``hang_timeout``
        (a ticker that beats slower than the grace period would declare
        every healthy job hung).
    max_rss_mb:
        Per-worker RSS high-water budget (``None`` disables).
    retry:
        The :class:`~repro.supervise.retry.RetryPolicy` for
        crash-recovery backoff; defaults to the policy's own defaults
        (capped, decorrelated jitter, seed 0).
    breaker_threshold / breaker_cooldown_waves:
        Circuit-breaker trip count and half-open cool-down (in
        orchestration waves). ``breaker_threshold=None`` disables the
        breaker entirely.
    quarantine:
        Optional path of the persisted poison-spec denylist (consulted
        before submission, appended when a circuit trips).
    """

    hang_timeout: Optional[float] = None
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    max_rss_mb: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: Optional[int] = 3
    breaker_cooldown_waves: int = 2
    quarantine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be > 0")
        if (
            self.hang_timeout is not None
            and self.hang_timeout <= self.heartbeat_interval
        ):
            raise ConfigurationError(
                "hang_timeout must exceed heartbeat_interval "
                f"({self.hang_timeout} <= {self.heartbeat_interval})"
            )

    def watchdog(self) -> Watchdog:
        """The parent-side watchdog this config describes."""
        return Watchdog(
            hang_timeout=self.hang_timeout, max_rss_mb=self.max_rss_mb
        )

    def make_breaker(self, on_transition=None) -> Optional[CircuitBreaker]:
        """A fresh circuit breaker (``None`` when disabled)."""
        if self.breaker_threshold is None:
            return None
        return CircuitBreaker(
            threshold=self.breaker_threshold,
            cooldown_waves=self.breaker_cooldown_waves,
            on_transition=on_transition,
        )

    def make_quarantine(self) -> Optional[PoisonQuarantine]:
        """The persisted quarantine (``None`` when no path configured)."""
        if self.quarantine is None:
            return None
        return PoisonQuarantine(self.quarantine)
