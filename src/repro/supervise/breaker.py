"""Per-spec-key circuit breakers for repeated terminal failures.

A sweep that keeps resubmitting the same crashing spec pays for it
twice: the spec burns a worker (plus its whole retry budget) every
wave, and every crash of a shared worker pool charges innocent
bystanders a retry. The breaker stops the bleeding: after ``threshold``
*terminal* failures of one content-addressed key, further submissions
of that key **short-circuit** — the orchestrator answers with a
:class:`~repro.jobs.failures.JobFailure` immediately, without the spec
ever occupying a worker.

State machine (classic three-state breaker, per key)::

    closed ──(threshold terminal failures)──► open
    open ──(cooldown waves elapsed)──► half_open   [one probe allowed]
    half_open ──probe succeeds──► closed (counters reset)
    half_open ──probe fails──► open (cooldown restarts)

Cool-down is measured in **waves** — orchestration batches, advanced by
:meth:`CircuitBreaker.advance_wave` — not wall-clock seconds. Campaign
time is dominated by simulation, not by the clock on the wall: "retry
the key two batches from now" behaves identically on a laptop and on a
loaded CI box, and replays deterministically (the breaker makes no
random and no clock calls at all).

The breaker reports state transitions through an optional observer
callback (``on_transition(key, old, new)``) — the orchestrator wires it
to telemetry counters and to the poison-spec quarantine.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["STATE_CLOSED", "STATE_OPEN", "STATE_HALF_OPEN", "CircuitBreaker"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Tracks terminal failures per spec key and gates resubmission.

    Parameters
    ----------
    threshold:
        Consecutive terminal failures of one key that trip its circuit.
    cooldown_waves:
        Orchestration batches an open circuit stays closed to traffic
        before granting a half-open probe.
    on_transition:
        Optional observer ``(key, old_state, new_state)`` called on
        every state change (after the breaker's own bookkeeping).
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_waves: int = 2,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ):
        if threshold < 1:
            raise ConfigurationError("breaker threshold must be >= 1")
        if cooldown_waves < 1:
            raise ConfigurationError("breaker cooldown_waves must be >= 1")
        self.threshold = threshold
        self.cooldown_waves = cooldown_waves
        self.on_transition = on_transition
        self.wave = 0
        self._failures: Dict[str, int] = {}
        self._state: Dict[str, str] = {}
        self._opened_wave: Dict[str, int] = {}
        self._probe_wave: Dict[str, int] = {}
        self._last_error: Dict[str, str] = {}
        #: Every transition as ``(wave, key, old, new)`` — test evidence.
        self.transitions: List[Tuple[int, str, str, str]] = []

    # -- state access --------------------------------------------------
    def state(self, key: str) -> str:
        """The key's current circuit state."""
        return self._state.get(key, STATE_CLOSED)

    def failures(self, key: str) -> int:
        """Consecutive terminal failures recorded for the key."""
        return self._failures.get(key, 0)

    def last_error(self, key: str) -> str:
        """The most recent terminal error recorded for the key."""
        return self._last_error.get(key, "")

    def open_keys(self) -> List[str]:
        """Keys whose circuit is currently open (sorted)."""
        return sorted(
            k for k, s in self._state.items() if s == STATE_OPEN
        )

    # -- lifecycle -----------------------------------------------------
    def advance_wave(self) -> int:
        """Start a new orchestration wave (cool-downs age by one)."""
        self.wave += 1
        return self.wave

    def _transition(self, key: str, new: str) -> None:
        old = self.state(key)
        if old == new:
            return
        self._state[key] = new
        self.transitions.append((self.wave, key, old, new))
        if self.on_transition is not None:
            self.on_transition(key, old, new)

    def allow(self, key: str) -> bool:
        """Whether a submission of *key* may reach a worker this wave.

        An open circuit whose cool-down has elapsed grants exactly one
        half-open probe per wave; everything else short-circuits until
        the probe's outcome is recorded.
        """
        state = self.state(key)
        if state == STATE_CLOSED:
            return True
        if state == STATE_OPEN:
            if self.wave - self._opened_wave[key] >= self.cooldown_waves:
                self._transition(key, STATE_HALF_OPEN)
                self._probe_wave[key] = self.wave
                return True
            return False
        # half-open: one probe per wave — a second submission in the
        # same batch (or while the probe is unresolved) short-circuits.
        if self._probe_wave.get(key) == self.wave:
            return False
        self._probe_wave[key] = self.wave
        return True

    def record_success(self, key: str) -> None:
        """A submission of *key* completed: close and reset its circuit."""
        self._failures.pop(key, None)
        self._last_error.pop(key, None)
        self._opened_wave.pop(key, None)
        self._probe_wave.pop(key, None)
        self._transition(key, STATE_CLOSED)
        self._state.pop(key, None)

    # -- snapshot support ----------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """JSON-native breaker state for durable snapshots.

        The observer callback is runtime wiring, not state — it is
        neither exported nor touched by :meth:`restore`.
        """
        return {
            "wave": self.wave,
            "failures": dict(self._failures),
            "state": dict(self._state),
            "opened_wave": dict(self._opened_wave),
            "probe_wave": dict(self._probe_wave),
            "last_error": dict(self._last_error),
            "transitions": [list(entry) for entry in self.transitions],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Replace all breaker state from :meth:`export_state` output."""
        self.wave = int(state["wave"])
        self._failures = {k: int(v) for k, v in state["failures"].items()}
        self._state = dict(state["state"])
        self._opened_wave = {
            k: int(v) for k, v in state["opened_wave"].items()
        }
        self._probe_wave = {
            k: int(v) for k, v in state["probe_wave"].items()
        }
        self._last_error = dict(state["last_error"])
        self.transitions = [
            (int(wave), key, old, new)
            for wave, key, old, new in state["transitions"]
        ]

    def record_failure(self, key: str, error: str = "") -> bool:
        """Record one *terminal* failure; True when this trips the circuit.

        A failed half-open probe re-opens immediately (no need to climb
        back to the threshold — the circuit already proved unhealthy).
        """
        self._failures[key] = self._failures.get(key, 0) + 1
        if error:
            self._last_error[key] = error
        state = self.state(key)
        if state == STATE_HALF_OPEN or (
            state == STATE_CLOSED and self._failures[key] >= self.threshold
        ):
            self._opened_wave[key] = self.wave
            self._probe_wave.pop(key, None)
            self._transition(key, STATE_OPEN)
            return True
        return False
