"""The worker heartbeat protocol: liveness ticks on a shared board.

A per-job wall-clock timeout answers "did this job finish in time?" —
but only after burning the *entire* budget. Heartbeats answer the
cheaper question "is this job still making progress?" early: workers
tick a shared timestamp when a job starts, around each execution phase
(:func:`repro.jobs.spec.execute_spec` ticks its build/run/finish
boundaries), and from a background ticker thread while the job body
computes. The supervising parent reads the board and distinguishes

* **slow** — ticks keep arriving; leave the job alone (only its own
  wall-clock budget can end it), from
* **hung** — no tick within the hang grace period; the worker is wedged
  (deadlocked, stopped, stuck in a non-yielding syscall) and is killed
  proactively instead of waiting out the full per-job timeout.

The board is a ``multiprocessing.Manager().dict()`` proxy shared by the
pool and its spawn-started workers; each running job owns one slot keyed
``(wave, index)`` holding a plain ``(phase, rss_kb, timestamp)`` tuple
(wall timestamps — monotonic clocks are not comparable across
processes). Ticks also report the worker's resident-set high-water mark
so the parent-side resource watchdog rides the same channel.

Everything here is worker-process-global state guarded by a lock;
:func:`bind`/:func:`unbind` scope one job's slot, and :func:`tick` is a
cheap no-op when no board is bound — parents that run without
supervision never touch any of it.

``simulate_hang()`` exists for the chaos harness: it suspends all
future ticks from this process (including the ticker thread), emulating
a worker whose runtime itself is wedged — which is exactly the signal
the supervisor must catch.
"""

from __future__ import annotations

import resource
import sys
import threading
import time
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "Beat",
    "bind",
    "unbind",
    "tick",
    "current_rss_kb",
    "simulate_hang",
    "clear_hang",
    "HeartbeatTicker",
    "read_beats",
]

#: One board entry: (phase label, worker RSS high-water in KB, wall time).
Beat = Tuple[str, int, float]

_lock = threading.Lock()
_board: Optional[Any] = None  # Manager dict proxy (or any MutableMapping)
_slot: Optional[Tuple[int, int]] = None
_suspended = threading.Event()


def current_rss_kb() -> int:
    """This process's resident-set high-water mark, in KB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalised to KB. It is a *high-water* mark — it never decreases —
    which is the conservative reading a memory watchdog wants: a worker
    that ballooned once is killed and replaced by a fresh process rather
    than trusted to have shrunk.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def bind(board: Any, slot: Tuple[int, int]) -> None:
    """Attach this worker process to *slot* on *board* (one job's scope)."""
    global _board, _slot
    with _lock:
        _board = board
        _slot = slot


def unbind() -> None:
    """Detach from the board (ticks become no-ops again)."""
    global _board, _slot
    with _lock:
        _board = None
        _slot = None


def tick(phase: str = "run") -> bool:
    """Post one heartbeat for the bound slot; True if a beat was sent.

    No-op (False) when unbound, when the process is simulating a hang,
    or when the board proxy is unreachable (the parent killed the
    manager mid-job — the worker is about to die anyway and must not
    crash with a confusing proxy traceback first).
    """
    with _lock:
        board, slot = _board, _slot
    if board is None or slot is None or _suspended.is_set():
        return False
    try:
        board[slot] = (phase, current_rss_kb(), time.time())
    except Exception:  # repro: noqa[RPR203] — dead proxy == beat not sent
        return False
    return True


def simulate_hang() -> None:
    """Suspend all future ticks from this process (chaos harness hook).

    Emulates a wedged worker runtime: the job body may still be
    sleeping, but no heartbeat — not even the ticker thread's — reaches
    the board, so the supervisor must declare the worker hung.
    """
    _suspended.set()


def clear_hang() -> None:
    """Re-enable ticks (test teardown in in-process scenarios)."""
    _suspended.clear()


class HeartbeatTicker:
    """Daemon thread ticking the bound slot every *interval* seconds.

    Started by the pool's worker-side wrapper for the duration of one
    job: coarse-grained jobs that never cross an instrumented phase
    boundary still prove liveness. ``stop()`` is idempotent and always
    called before the job's result is returned.
    """

    def __init__(self, interval: float):
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-heartbeat", daemon=True
        )

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            tick("run")

    def start(self) -> None:
        """Begin ticking in the background."""
        self._thread.start()

    def stop(self) -> None:
        """Stop the ticker (does not join — the thread is a daemon)."""
        self._stop.set()


def read_beats(board: Any) -> Dict[Tuple[int, int], Beat]:
    """Parent-side snapshot of the board; empty on any proxy failure.

    A dead manager (mid-teardown race) must read as "no information",
    never as an exception inside the supervision loop.
    """
    try:
        return dict(board)
    except Exception:  # repro: noqa[RPR203] — dead proxy == empty board
        return {}
