"""Worker supervision for the orchestration stack (`repro.supervise`).

`repro.jobs` made the sweep campaign parallel and crash-tolerant;
`repro.faults` made its failure handling testable. This subpackage
closes the remaining gap — the *slow-death* failure modes that dominate
long campaigns at scale:

* :mod:`repro.supervise.heartbeat` — the worker heartbeat protocol:
  workers tick a shared board around each job phase (and from a
  background ticker thread), so the supervisor can tell *hung* from
  merely *slow* and kill wedged workers proactively instead of burning
  the full per-job timeout;
* :mod:`repro.supervise.watchdog` — parent-side judgement over the
  heartbeat evidence: hang detection plus per-worker RSS budgets
  (runaway memory is caught before the OS OOM killer anonymises it);
* :mod:`repro.supervise.retry` — :class:`RetryPolicy`, the single home
  of retry/backoff behaviour: capped exponential with seeded,
  deterministic decorrelated jitter (lint rule RPR303 keeps ad-hoc
  ``time.sleep`` retry loops from creeping back in);
* :mod:`repro.supervise.breaker` — a per-spec-key circuit breaker:
  after K terminal failures of one content-addressed key, submissions
  short-circuit to a :class:`~repro.jobs.failures.JobFailure` without
  occupying a worker; half-open probes are granted after a cool-down
  measured in orchestration waves (not wall-clock);
* :mod:`repro.supervise.quarantine` — the breaker's durable memory: a
  fsynced denylist file of poison specs, consulted on resume, surfacing
  excluded runs as structured failures in ``SweepResult.failures``;
* :mod:`repro.supervise.config` — :class:`SupervisionConfig`, the one
  object callers hand to :class:`~repro.jobs.orchestrator.Orchestrator`
  (CLI: ``--hang-timeout``, ``--quarantine``, ``--max-retries``).

Design rule, inherited from `docs/robustness.md` and pinned by the
no-fault baseline test: supervision may change *when workers are
killed* and *what gets excluded*, but with no faults present the
results of a supervised sweep are byte-identical to an unsupervised
one.
"""

from __future__ import annotations

from repro.supervise.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.supervise.config import SupervisionConfig
from repro.supervise.heartbeat import (
    HeartbeatTicker,
    current_rss_kb,
    read_beats,
    simulate_hang,
    tick,
)
from repro.supervise.quarantine import (
    QUARANTINE_SCHEMA_VERSION,
    PoisonQuarantine,
)
from repro.supervise.retry import JITTER_MODES, RetryPolicy, RetrySession
from repro.supervise.watchdog import Watchdog, WatchdogVerdict

__all__ = [
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "JITTER_MODES",
    "QUARANTINE_SCHEMA_VERSION",
    "CircuitBreaker",
    "SupervisionConfig",
    "HeartbeatTicker",
    "PoisonQuarantine",
    "RetryPolicy",
    "RetrySession",
    "Watchdog",
    "WatchdogVerdict",
    "current_rss_kb",
    "read_beats",
    "simulate_hang",
    "tick",
]
