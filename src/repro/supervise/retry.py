"""Deterministic retry policies: capped backoff with seeded jitter.

The worker pool's original crash-recovery sleep was
``backoff * 2**(wave-1)`` — unbounded (a deep retry chain sleeps for
minutes) and unjittered (every worker of a crashed wave retries at the
same instant, re-creating the thundering herd that killed the wave).
:class:`RetryPolicy` replaces it with the standard fix — exponential
backoff, capped, with *decorrelated jitter* — while keeping the repo's
determinism contract: every random draw comes from a stream derived
from the policy's seed via :func:`repro.utils.rng.derive_rng`, so the
exact sleep sequence of a retry chain is a pure function of
``(seed, jitter mode)`` and pins in tests.

A :class:`RetryPolicy` is immutable configuration; each retry *chain*
(one :meth:`~repro.jobs.pool.WorkerPool.run` call, one flaky resource)
opens its own :class:`RetrySession`, which owns the mutable state (the
previous delay, the private RNG). Sessions with the same policy always
produce the same delay sequence.

Jitter modes
------------
``none``
    Classic capped exponential: ``min(cap, base * 2**(attempt-1))``.
``equal``
    Half deterministic, half uniform: ``d/2 + uniform(0, d/2)`` of the
    capped exponential ``d`` — bounded below by ``d/2``.
``decorrelated``
    AWS-style decorrelated jitter: ``min(cap, uniform(base, prev*3))``
    — successive delays depend on the previous *drawn* delay, which
    spreads a herd fastest (the default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng

__all__ = ["JITTER_MODES", "RetryPolicy", "RetrySession"]

#: Recognised jitter strategies.
JITTER_MODES = ("none", "equal", "decorrelated")

#: Default ceiling on any single retry sleep (seconds).
DEFAULT_CAP = 30.0


@dataclass(frozen=True)
class RetryPolicy:
    """Immutable retry/backoff configuration (sessions do the drawing).

    Parameters
    ----------
    base:
        First-retry delay in seconds (must be > 0).
    cap:
        Hard ceiling on any single delay (must be >= base).
    jitter:
        One of :data:`JITTER_MODES`; default ``'decorrelated'``.
    seed:
        Root of the jitter stream — same seed, same delay sequence.
    """

    base: float = 0.5
    cap: float = DEFAULT_CAP
    jitter: str = "decorrelated"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ConfigurationError("retry base must be > 0")
        if self.cap < self.base:
            raise ConfigurationError("retry cap must be >= base")
        if self.jitter not in JITTER_MODES:
            raise ConfigurationError(
                f"unknown jitter mode {self.jitter!r}; expected {JITTER_MODES}"
            )

    def session(self) -> "RetrySession":
        """Open a fresh, deterministic retry chain."""
        return RetrySession(self)

    def preview(self, count: int) -> List[float]:
        """The first *count* delays a fresh session would produce."""
        session = self.session()
        return [session.next_delay() for _ in range(count)]


class RetrySession:
    """One retry chain: mutable state over an immutable policy.

    Every session derives a private RNG from the policy seed, so two
    sessions of the same policy replay the identical delay sequence —
    the regression test pins it float-for-float.
    """

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self.attempt = 0
        self._prev = policy.base
        self._rng = derive_rng(policy.seed, "supervise", "retry", policy.jitter)

    def next_delay(self) -> float:
        """The delay (seconds) to wait before the next retry attempt."""
        policy = self.policy
        self.attempt += 1
        if policy.jitter == "none":
            delay = policy.base * (2 ** (self.attempt - 1))
        elif policy.jitter == "equal":
            raw = min(policy.cap, policy.base * (2 ** (self.attempt - 1)))
            delay = raw / 2.0 + float(self._rng.uniform(0.0, raw / 2.0))
        else:  # decorrelated
            delay = float(self._rng.uniform(policy.base, self._prev * 3.0))
        delay = min(policy.cap, delay)
        self._prev = delay
        return delay

    def sleep(self) -> float:
        """Draw the next delay, sleep it, and return it.

        This is the **only** place the supervision subsystem calls
        ``time.sleep`` in a retry loop — lint rule RPR303 flags computed
        backoff sleeps everywhere else so retry behaviour stays
        centralised (and therefore capped, jittered and deterministic).
        """
        import time

        delay = self.next_delay()
        time.sleep(delay)
        return delay

    def reset(self) -> None:
        """Forget the chain's progress (next delay starts over)."""
        self.attempt = 0
        self._prev = self.policy.base
        self._rng = derive_rng(
            self.policy.seed, "supervise", "retry", self.policy.jitter
        )
