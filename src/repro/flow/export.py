"""Call-graph exporters: versioned JSON and Graphviz DOT.

Both renderings are **byte-deterministic**: nodes and edges are emitted
in sorted order, JSON uses sorted keys, and nothing timestamps the
output — two runs over the same tree produce identical bytes, which is
what lets CI diff the uploaded artifact and run the determinism
self-check with a plain ``cmp``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.flow.engine import FlowAnalysis

__all__ = ["CALLGRAPH_VERSION", "callgraph_json", "callgraph_dot"]

CALLGRAPH_VERSION = 1


def callgraph_json(analysis: FlowAnalysis) -> str:
    """The whole graph as versioned, diff-friendly JSON text."""
    symtab = analysis.symtab
    graph = analysis.graph
    functions: List[Dict[str, Any]] = []
    for qname in sorted(symtab.functions):
        fn = symtab.functions[qname]
        functions.append(
            {
                "qname": qname,
                "module": fn.module,
                "path": fn.path,
                "line": fn.lineno,
                "async": fn.is_async,
                "class": fn.class_qname,
            }
        )
    payload: Dict[str, Any] = {
        "version": CALLGRAPH_VERSION,
        "functions": functions,
        "edges": [
            {
                "caller": edge.caller,
                "callee": edge.callee,
                "line": edge.lineno,
                "kind": edge.kind,
            }
            for edge in graph.edges
        ],
        "unresolved": [
            {
                "caller": call.caller,
                "display": call.display,
                "line": call.lineno,
            }
            for call in graph.unresolved
        ],
        "summary": {
            "modules": len(symtab.contexts),
            "functions": len(symtab.functions),
            "classes": len(symtab.classes),
            "edges": len(graph.edges),
            "external_calls": len(graph.external),
            "unresolved_calls": len(graph.unresolved),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _dot_id(qname: str) -> str:
    return '"' + qname.replace('"', r"\"") + '"'


def callgraph_dot(analysis: FlowAnalysis) -> str:
    """Project-internal edges as Graphviz DOT text.

    Async functions render as doubled ellipses; ``task`` spawn edges are
    dashed and ``executor`` dispatches dotted, so the concurrency
    structure is visible at a glance in the rendered graph.
    """
    symtab = analysis.symtab
    graph = analysis.graph
    lines: List[str] = [
        "digraph callgraph {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="monospace"];',
    ]
    referenced = sorted(
        {edge.caller for edge in graph.edges}
        | {edge.callee for edge in graph.edges}
    )
    for qname in referenced:
        fn = symtab.functions.get(qname)
        attrs = []
        if fn is not None and fn.is_async:
            attrs.append("peripheries=2")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_dot_id(qname)}{suffix};")
    for edge in graph.edges:
        style = ""
        if edge.kind == "task":
            style = ' [style=dashed, label="task"]'
        elif edge.kind == "executor":
            style = ' [style=dotted, label="executor"]'
        lines.append(
            f"  {_dot_id(edge.caller)} -> {_dot_id(edge.callee)}{style};"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
