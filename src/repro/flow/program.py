"""The whole-program view: every loaded module of one analysis run.

A :class:`Program` wraps the :class:`~repro.lint.engine.LoadedModule`
list produced by :func:`~repro.lint.engine.load_modules` (parse-once:
the same parsed ASTs feed the per-file rules and the flow passes) and
indexes the subset that belongs to the project package tree — modules
with a dotted name derived from their ``src/`` layout path, or assigned
explicitly by tests via :meth:`Program.from_sources`.

Files without a dotted module name (tests, scripts, benchmarks) still
ride along for per-file linting but contribute no symbols: the
whole-program analysis is about the shipped package tree, whose
functions are the only ones reachable from more than one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from pathlib import Path

from repro.lint.context import ModuleContext
from repro.lint.engine import (
    DEFAULT_EXCLUDED_PARTS,
    LoadedModule,
    load_modules,
)
from repro.lint.suppress import SuppressionIndex

__all__ = ["Program", "load_program"]


class Program:
    """All loaded modules of one run, with the project subset indexed."""

    def __init__(self, modules: Sequence[LoadedModule]) -> None:
        self.modules: List[LoadedModule] = sorted(
            modules, key=lambda m: m.display
        )
        #: Dotted module name -> loaded module, for files that parse and
        #: carry a package identity. Later duplicates (the same dotted
        #: name loaded twice) are rejected deterministically: first
        #: display path wins, which keeps re-runs byte-identical.
        self.by_module: Dict[str, LoadedModule] = {}
        #: Display path -> loaded module, for suppression lookup.
        self.by_path: Dict[str, LoadedModule] = {}
        for module in self.modules:
            self.by_path.setdefault(module.display, module)
            context = module.context
            if context is not None and context.module is not None:
                self.by_module.setdefault(context.module, module)

    @property
    def contexts(self) -> Dict[str, ModuleContext]:
        """Dotted module name -> parsed context (project modules only)."""
        result: Dict[str, ModuleContext] = {}
        for name, module in self.by_module.items():
            assert module.context is not None
            result[name] = module.context
        return result

    def suppressions_for(self, path: str) -> Optional[SuppressionIndex]:
        """The suppression index of *path*, or ``None`` if unknown."""
        module = self.by_path.get(path)
        return None if module is None else module.suppressions

    @classmethod
    def from_sources(
        cls,
        sources: Sequence[Tuple[str, str, Optional[str]]],
    ) -> "Program":
        """Build a program from ``(path, source, module)`` triples.

        The test entry point: fixture files live outside ``src/`` but
        are analysed *as if* they formed a package tree by passing
        explicit dotted names.
        """
        return cls(
            [
                LoadedModule.parse(path, source, module=module)
                for path, source, module in sources
            ]
        )


def load_program(
    paths: Sequence[Union[str, Path]],
    excluded_parts: Sequence[str] = DEFAULT_EXCLUDED_PARTS,
    root: Optional[Union[str, Path]] = None,
) -> Program:
    """Discover and parse *paths* into a :class:`Program` (parse-once)."""
    return Program(load_modules(paths, excluded_parts, root=root))
