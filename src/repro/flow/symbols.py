"""Project symbol table: functions, classes, hierarchy, attribute types.

Built once per analysis run from a :class:`~repro.flow.program.Program`,
the table answers the questions the call-graph builder asks:

* **Which functions exist?** Every ``def``/``async def`` gets a
  qualified name: ``pkg.mod.func`` at module level,
  ``pkg.mod.Class.method`` inside a class, and
  ``outer.<locals>.inner`` for nested functions (CPython's own
  ``__qualname__`` convention), so nested executor helpers are distinct
  analysis scopes, exactly as the per-file rules treat them.
* **What does a dotted name mean here?** :meth:`SymbolTable.canonicalize`
  chases re-exports: ``repro.service.SchedulerService`` (imported from
  the package ``__init__``) resolves to
  ``repro.service.daemon.SchedulerService`` by following each module's
  import-alias map until a defined symbol is reached.
* **Which method does ``self.m()`` hit?** :meth:`SymbolTable.resolve_method`
  walks the class hierarchy (breadth-first over resolved project
  bases).
* **What type is ``self.attr``?** A light, deterministic inference:
  ``self.attr = ProjectClass(...)`` constructor assignments and
  ``self.attr = param`` where the parameter is annotated with a project
  class (``Optional[...]`` unwrapped) yield an attribute-type map per
  class, which is what lets ``self.durability.record_event(...)``
  resolve through :class:`~repro.durable.manager.DurabilityManager`.
  Conflicting assignments demote the attribute to unknown — a wrong
  edge is worse than a reported unresolved call.

Everything is collected in sorted order so two runs over the same tree
produce byte-identical tables, graphs, and reports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.flow.program import Program
from repro.lint.context import ModuleContext

__all__ = ["FunctionInfo", "ClassInfo", "SymbolTable"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """One project function or method."""

    qname: str
    module: str
    name: str
    path: str
    lineno: int
    is_async: bool
    class_qname: Optional[str]
    node: FunctionNode = field(repr=False, compare=False)
    #: Local name -> qname of functions visible by bare name from this
    #: function's body (its own nested defs plus the enclosing chain's).
    local_defs: Dict[str, str] = field(
        default_factory=dict, repr=False, compare=False
    )


@dataclass
class ClassInfo:
    """One project class: bases, methods, inferred attribute types."""

    qname: str
    module: str
    name: str
    path: str
    lineno: int
    #: Base-class expressions as written (dotted where resolvable).
    bases_raw: Tuple[str, ...] = ()
    #: Resolved project base-class qnames (link phase).
    bases: Tuple[str, ...] = ()
    #: Method name -> function qname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: Attribute name -> project class qname (light inference).
    attr_types: Dict[str, str] = field(default_factory=dict)


def _dotted(expr: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as a dotted string."""
    parts: List[str] = []
    cursor = expr
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    return ".".join(reversed(parts))


class SymbolTable:
    """Functions, classes, and name services of one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.contexts: Dict[str, ModuleContext] = program.contexts
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._canon_cache: Dict[str, str] = {}
        for module_name in sorted(self.contexts):
            self._collect_module(module_name, self.contexts[module_name])
        self._link_classes()
        self._infer_attr_types()

    # -- collection ---------------------------------------------------

    def _collect_module(self, module: str, context: ModuleContext) -> None:
        for node in context.tree.body:
            self._collect_node(node, module, context, prefix=module,
                               class_qname=None, enclosing=None)

    def _collect_node(
        self,
        node: ast.stmt,
        module: str,
        context: ModuleContext,
        prefix: str,
        class_qname: Optional[str],
        enclosing: Optional[FunctionInfo],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._collect_function(
                node, module, context, prefix, class_qname, enclosing
            )
        elif isinstance(node, ast.ClassDef):
            self._collect_class(node, module, context, prefix)
        elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                               ast.While)):
            # Conditionally defined symbols (TYPE_CHECKING guards,
            # version shims) still exist for analysis purposes.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._collect_node(
                        child, module, context, prefix, class_qname, enclosing
                    )

    def _collect_function(
        self,
        node: FunctionNode,
        module: str,
        context: ModuleContext,
        prefix: str,
        class_qname: Optional[str],
        enclosing: Optional[FunctionInfo],
    ) -> None:
        qname = f"{prefix}.{node.name}"
        info = FunctionInfo(
            qname=qname,
            module=module,
            name=node.name,
            path=context.path,
            lineno=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_qname=class_qname,
            node=node,
        )
        if enclosing is not None:
            info.local_defs.update(enclosing.local_defs)
        self.functions.setdefault(qname, info)
        if enclosing is not None:
            enclosing.local_defs[node.name] = qname
        nested_prefix = f"{qname}.<locals>"
        for child in node.body:
            self._collect_node(
                child, module, context, nested_prefix,
                class_qname=None, enclosing=info,
            )

    def _collect_class(
        self,
        node: ast.ClassDef,
        module: str,
        context: ModuleContext,
        prefix: str,
    ) -> None:
        qname = f"{prefix}.{node.name}"
        bases_raw: List[str] = []
        for base in node.bases:
            rendered = _dotted(base)
            if rendered is not None:
                bases_raw.append(rendered)
        info = ClassInfo(
            qname=qname,
            module=module,
            name=node.name,
            path=context.path,
            lineno=node.lineno,
            bases_raw=tuple(bases_raw),
        )
        self.classes.setdefault(qname, info)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(
                    child, module, context, qname,
                    class_qname=qname, enclosing=None,
                )
                info.methods.setdefault(child.name, f"{qname}.{child.name}")
            elif isinstance(child, ast.ClassDef):
                self._collect_class(child, module, context, qname)

    # -- linking ------------------------------------------------------

    def _link_classes(self) -> None:
        for qname in sorted(self.classes):
            info = self.classes[qname]
            context = self.contexts[info.module]
            resolved: List[str] = []
            for raw in info.bases_raw:
                base = self._resolve_base(raw, info.module, context)
                if base is not None:
                    resolved.append(base)
            info.bases = tuple(resolved)

    def _resolve_base(
        self, raw: str, module: str, context: ModuleContext
    ) -> Optional[str]:
        """Project class qname of one base expression, or ``None``."""
        # A sibling class in the same module shadows everything else.
        local = f"{module}.{raw}"
        if local in self.classes:
            return local
        head = raw.split(".", 1)[0]
        origin = context.aliases.get(head)
        if origin is not None:
            dotted = origin + raw[len(head):]
            canonical = self.canonicalize(dotted)
            if canonical in self.classes:
                return canonical
        canonical = self.canonicalize(raw)
        return canonical if canonical in self.classes else None

    # -- canonical names ----------------------------------------------

    def canonicalize(self, dotted: str) -> str:
        """Chase re-exports until *dotted* names a defined symbol.

        ``repro.service.SchedulerService.recover`` follows the package
        ``__init__``'s ``from repro.service.daemon import ...`` to
        ``repro.service.daemon.SchedulerService.recover``. Names that
        never land on a defined symbol are returned as deeply resolved
        as possible (callers then treat them as external).
        """
        cached = self._canon_cache.get(dotted)
        if cached is not None:
            return cached
        seen = {dotted}
        current = dotted
        while True:
            if current in self.functions or current in self.classes:
                break
            step = self._canonical_step(current)
            if step is None or step in seen:
                break
            seen.add(step)
            current = step
        self._canon_cache[dotted] = current
        return current

    def _canonical_step(self, dotted: str) -> Optional[str]:
        """One re-export hop: rewrite the head attr via module aliases."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix not in self.contexts:
                continue
            attrs = parts[cut:]
            origin = self.contexts[prefix].aliases.get(attrs[0])
            if origin is None:
                return None
            return ".".join([origin] + attrs[1:])
        return None

    # -- hierarchy ----------------------------------------------------

    def resolve_method(
        self, class_qname: str, method: str
    ) -> Optional[str]:
        """Function qname of *method* on *class_qname* (MRO-ish BFS)."""
        queue = [class_qname]
        seen = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            found = info.methods.get(method)
            if found is not None:
                return found
            queue.extend(info.bases)
        return None

    def attr_type(self, class_qname: str, attr: str) -> Optional[str]:
        """Inferred project class of ``self.<attr>`` on *class_qname*."""
        queue = [class_qname]
        seen = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            found = info.attr_types.get(attr)
            if found is not None:
                return found or None
            queue.extend(info.bases)
        return None

    # -- attribute-type inference -------------------------------------

    def _infer_attr_types(self) -> None:
        for qname in sorted(self.classes):
            info = self.classes[qname]
            context = self.contexts[info.module]
            for method_name in sorted(info.methods):
                method = self.functions.get(info.methods[method_name])
                if method is None:
                    continue
                self._infer_from_method(info, method, context)

    def _infer_from_method(
        self,
        klass: ClassInfo,
        method: FunctionInfo,
        context: ModuleContext,
    ) -> None:
        params = self._annotated_params(method.node, context)
        for stmt in ast.walk(method.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            inferred = ""
            if isinstance(stmt, ast.AnnAssign):
                inferred = self._annotation_class(stmt.annotation, context)
            if not inferred and isinstance(value, ast.Call):
                resolved = context.resolve(value.func)
                if resolved is not None:
                    canonical = self.canonicalize(resolved)
                    if canonical in self.classes:
                        inferred = canonical
            if not inferred and isinstance(value, ast.Name):
                inferred = params.get(value.id, "")
            if not inferred:
                continue
            known = klass.attr_types.get(target.attr)
            if known is None:
                klass.attr_types[target.attr] = inferred
            elif known != inferred:
                # Conflicting evidence: demote to unknown, loudly-ish
                # (the empty string blocks base-class lookup too).
                klass.attr_types[target.attr] = ""

    def _annotated_params(
        self, node: FunctionNode, context: ModuleContext
    ) -> Dict[str, str]:
        """Parameter name -> project class qname, from annotations."""
        result: Dict[str, str] = {}
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            if arg.annotation is None:
                continue
            inferred = self._annotation_class(arg.annotation, context)
            if inferred:
                result[arg.arg] = inferred
        return result

    def _annotation_class(
        self, annotation: ast.expr, context: ModuleContext
    ) -> str:
        """Project class named by an annotation (Optional unwrapped)."""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(
                    annotation.value, mode="eval"
                ).body
            except SyntaxError:
                return ""
        if isinstance(annotation, ast.Subscript):
            base = context.resolve(annotation.value)
            if base in ("typing.Optional", "Optional"):
                return self._annotation_class(annotation.slice, context)
            return ""
        resolved = context.resolve(annotation)
        if resolved is None and isinstance(annotation, ast.Name):
            # A class defined in this very module is a bound name, which
            # resolve() declines; try the module-local spelling.
            local = f"{context.module}.{annotation.id}"
            if local in self.classes:
                return local
            return ""
        if resolved is None:
            return ""
        canonical = self.canonicalize(resolved)
        return canonical if canonical in self.classes else ""
