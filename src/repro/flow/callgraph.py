"""Project call graph: who calls whom, and how.

The builder walks every project function body **in source order**
(skipping nested ``def``/``class`` bodies — those are their own
analysis scopes, mirroring the per-file rules) and resolves each call
expression to one of:

* a **project edge** — caller → callee qname, with a *kind*:
  ``call`` (plain synchronous/awaited invocation), ``task``
  (``asyncio.create_task`` / ``ensure_future`` / ``asyncio.run`` /
  ``loop.create_task`` — the callee runs concurrently on the loop), or
  ``executor`` (``asyncio.to_thread`` / ``run_in_executor`` — the
  callee runs on a worker thread, where blocking is sanctioned);
* an **external call** — a dotted name resolved outside the project
  (``time.time``, ``os.fsync``, ``json.dumps``). The subset the flow
  rules care about is categorised into *primitive calls*: ``clock``,
  ``entropy``, ``rng`` (mirroring RPR102's seeded/unseeded logic),
  and ``blocking`` (RPR501's list);
* an **unresolved call** — a genuinely dynamic target (method on a
  local variable, call through a callable parameter). These are
  recorded, counted, and exported — never silently dropped — because
  an unresolved call is exactly where a whole-program guarantee has a
  hole the reader should know about.

Resolution order for a call expression, most-specific first: nested
functions visible by bare name → sibling module-level symbols →
import-alias resolution (through re-exports, via
:meth:`~repro.flow.symbols.SymbolTable.canonicalize`) →
``self.method()`` / ``cls.method()`` through the class hierarchy →
``self.attr.method()`` through inferred attribute types.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.flow.symbols import FunctionInfo, SymbolTable
from repro.lint.rules.determinism import (
    CLOCK_CALLS,
    ENTROPY_CALLS,
    _NUMPY_SEEDABLE,
    _is_unseeded,
)
from repro.lint.rules.service_async import BLOCKING_CALLS

__all__ = [
    "KIND_CALL",
    "KIND_TASK",
    "KIND_EXECUTOR",
    "CallEdge",
    "ExternalCall",
    "PrimitiveCall",
    "UnresolvedCall",
    "Resolution",
    "CallGraph",
    "GraphBuilder",
    "iter_body_calls",
]

KIND_CALL = "call"
KIND_TASK = "task"
KIND_EXECUTOR = "executor"

#: ``asyncio`` module-level spawners whose first argument is the spawned
#: coroutine (or coroutine-producing call).
_TASK_SPAWNERS = ("asyncio.create_task", "asyncio.ensure_future",
                  "asyncio.run")
_THREAD_SPAWNERS = ("asyncio.to_thread",)


@dataclass(frozen=True, order=True)
class CallEdge:
    """One resolved project-internal call."""

    caller: str
    callee: str
    lineno: int
    kind: str


@dataclass(frozen=True, order=True)
class ExternalCall:
    """A call resolved to a dotted name outside the project."""

    caller: str
    target: str
    lineno: int


@dataclass(frozen=True, order=True)
class PrimitiveCall:
    """An external call the flow rules reason about."""

    caller: str
    target: str
    lineno: int
    category: str  # clock | entropy | rng | blocking


@dataclass(frozen=True, order=True)
class UnresolvedCall:
    """A call whose target could not be determined statically."""

    caller: str
    display: str
    lineno: int


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving one call expression."""

    kind: str  # "project" | "external" | "unresolved"
    target: str  # qname, dotted name, or display text
    spawn: str = KIND_CALL


def iter_body_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Call expressions executed directly by *node*'s body, in order.

    Nested ``def``/``async def``/``class`` bodies are skipped — each is
    its own analysis scope (its calls belong to *its* graph node).
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(child, ast.Call):
            yield child
        yield from iter_body_calls(child)


def _display(expr: ast.expr) -> str:
    """Best-effort source-ish rendering of a call target for reports."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return f"{_display(expr.value)}.{expr.attr}"
    if isinstance(expr, ast.Call):
        return f"{_display(expr.func)}(...)"
    if isinstance(expr, ast.Subscript):
        return f"{_display(expr.value)}[...]"
    return f"<{type(expr).__name__}>"


def _primitive_categories(dotted: str, call: ast.Call) -> List[str]:
    """Flow-rule categories of an external call (possibly several)."""
    categories: List[str] = []
    if dotted in CLOCK_CALLS:
        categories.append("clock")
    if dotted in ENTROPY_CALLS:
        categories.append("entropy")
    if dotted == "random.SystemRandom":
        categories.append("rng")
    elif dotted == "random.Random":
        if _is_unseeded(call):
            categories.append("rng")
    elif dotted.startswith("random."):
        categories.append("rng")
    elif dotted.startswith("numpy.random."):
        tail = dotted[len("numpy.random."):]
        if tail in _NUMPY_SEEDABLE:
            if _is_unseeded(call):
                categories.append("rng")
        else:
            categories.append("rng")
    if dotted in BLOCKING_CALLS:
        categories.append("blocking")
    return categories


class CallGraph:
    """The finished, indexed graph."""

    def __init__(
        self,
        edges: List[CallEdge],
        external: List[ExternalCall],
        primitives: List[PrimitiveCall],
        unresolved: List[UnresolvedCall],
    ) -> None:
        self.edges: List[CallEdge] = sorted(edges)
        self.external: List[ExternalCall] = sorted(external)
        self.primitives: List[PrimitiveCall] = sorted(primitives)
        self.unresolved: List[UnresolvedCall] = sorted(unresolved)
        self.by_caller: Dict[str, List[CallEdge]] = {}
        self.by_callee: Dict[str, List[CallEdge]] = {}
        for edge in self.edges:
            self.by_caller.setdefault(edge.caller, []).append(edge)
            self.by_callee.setdefault(edge.callee, []).append(edge)
        self.primitives_by_caller: Dict[str, List[PrimitiveCall]] = {}
        for primitive in self.primitives:
            self.primitives_by_caller.setdefault(
                primitive.caller, []
            ).append(primitive)

    def callees(self, qname: str) -> List[CallEdge]:
        """Outgoing edges of *qname* (sorted, possibly empty)."""
        return self.by_caller.get(qname, [])

    def callers(self, qname: str) -> List[CallEdge]:
        """Incoming edges of *qname* (sorted, possibly empty)."""
        return self.by_callee.get(qname, [])


class GraphBuilder:
    """Builds a :class:`CallGraph` over a symbol table's functions."""

    def __init__(self, symtab: SymbolTable) -> None:
        self.symtab = symtab

    # -- single-call resolution ---------------------------------------

    def resolve_call(
        self, fn: FunctionInfo, call: ast.Call
    ) -> Resolution:
        """Resolve one call expression in *fn*'s body.

        Also reused by the ordered-event (RPR603) pass, which needs the
        same resolution logic interleaved with its own event stream.
        """
        spawned = self._resolve_spawn(fn, call)
        if spawned is not None:
            return spawned[0]
        return self._resolve_plain(fn, call.func)

    def resolve_calls(
        self, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.Call, Resolution]]:
        """Resolve every call in *fn*'s body, in source order.

        Spawn wrappers consume their inner call expression —
        ``asyncio.create_task(self.worker())`` is one ``task`` edge to
        ``worker``, not a task edge plus a phantom synchronous call
        (the inner call builds a coroutine object; the body runs in the
        spawned task). The inner call's *argument* expressions still
        resolve normally — those do evaluate inline.
        """
        consumed: Set[int] = set()
        for call in iter_body_calls(fn.node):
            if id(call) in consumed:
                continue
            spawned = self._resolve_spawn(fn, call)
            if spawned is not None:
                resolution, inner = spawned
                if inner is not None:
                    consumed.add(id(inner))
                yield call, resolution
            else:
                yield call, self._resolve_plain(fn, call.func)

    def _resolve_spawn(
        self, fn: FunctionInfo, call: ast.Call
    ) -> Optional[Tuple[Resolution, Optional[ast.Call]]]:
        """Handle asyncio task/executor spawn wrappers.

        Returns ``(resolution, inner_call)`` where *inner_call* is the
        coroutine-building call expression the wrapper consumed (for
        deduplication), or ``None`` for a non-spawn call.
        """
        context = self.symtab.contexts[fn.module]
        resolved = context.resolve(call.func)
        kind: Optional[str] = None
        target_expr: Optional[ast.expr] = None
        if resolved in _TASK_SPAWNERS and call.args:
            kind, target_expr = KIND_TASK, call.args[0]
        elif resolved in _THREAD_SPAWNERS and call.args:
            kind, target_expr = KIND_EXECUTOR, call.args[0]
        elif resolved is None and isinstance(call.func, ast.Attribute):
            # loop.create_task(coro()) / loop.run_in_executor(None, fn, …)
            if call.func.attr == "create_task" and call.args:
                kind, target_expr = KIND_TASK, call.args[0]
            elif call.func.attr == "run_in_executor" and len(call.args) >= 2:
                kind, target_expr = KIND_EXECUTOR, call.args[1]
        if kind is None or target_expr is None:
            return None
        # create_task(self._run()) spawns the *coroutine function*; the
        # inner Call builds a coroutine object, it does not run the body
        # synchronously, so the spawned callee is the inner call's func.
        inner_call: Optional[ast.Call] = None
        if isinstance(target_expr, ast.Call):
            inner_call = target_expr
            target_expr = target_expr.func
        inner = self._resolve_plain(fn, target_expr)
        resolution = Resolution(
            kind=inner.kind, target=inner.target, spawn=kind
        )
        return resolution, inner_call

    def _resolve_plain(
        self, fn: FunctionInfo, func: ast.expr
    ) -> Resolution:
        symtab = self.symtab
        context = symtab.contexts[fn.module]
        # 1. Nested functions visible by bare name.
        if isinstance(func, ast.Name):
            local = fn.local_defs.get(func.id)
            if local is not None:
                return Resolution("project", local)
            # 2. Sibling module-level symbols (bound names, so the
            #    module alias map declines them).
            sibling = f"{fn.module}.{func.id}"
            if sibling in symtab.functions:
                return Resolution("project", sibling)
            if sibling in symtab.classes:
                return self._constructor(sibling)
        # 3. Import-alias resolution, chased through re-exports.
        resolved = context.resolve(func)
        if resolved is not None:
            canonical = symtab.canonicalize(resolved)
            if canonical in symtab.functions:
                return Resolution("project", canonical)
            if canonical in symtab.classes:
                return self._constructor(canonical)
            return Resolution("external", canonical)
        # 4. self.method() / cls.method() through the hierarchy.
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and fn.class_qname is not None
            ):
                method = symtab.resolve_method(fn.class_qname, func.attr)
                if method is not None:
                    return Resolution("project", method)
                return Resolution(
                    "unresolved", f"{receiver.id}.{func.attr}"
                )
            # 5. self.attr.method() through inferred attribute types.
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and fn.class_qname is not None
            ):
                attr_class = symtab.attr_type(
                    fn.class_qname, receiver.attr
                )
                if attr_class is not None:
                    method = symtab.resolve_method(attr_class, func.attr)
                    if method is not None:
                        return Resolution("project", method)
        return Resolution("unresolved", _display(func))

    def _constructor(self, class_qname: str) -> Resolution:
        """Edge target for instantiating a project class."""
        init = self.symtab.resolve_method(class_qname, "__init__")
        if init is not None and init in self.symtab.functions:
            return Resolution("project", init)
        # Default/dataclass-generated constructor: no project body runs.
        return Resolution("external", class_qname)

    # -- whole-graph build --------------------------------------------

    def build(self) -> CallGraph:
        """Resolve every call in every project function into the graph."""
        edges: List[CallEdge] = []
        external: List[ExternalCall] = []
        primitives: List[PrimitiveCall] = []
        unresolved: List[UnresolvedCall] = []
        for qname in sorted(self.symtab.functions):
            fn = self.symtab.functions[qname]
            for call, resolution in self.resolve_calls(fn):
                lineno = call.lineno
                if resolution.kind == "project":
                    edges.append(
                        CallEdge(qname, resolution.target, lineno,
                                 resolution.spawn)
                    )
                elif resolution.kind == "external":
                    external.append(
                        ExternalCall(qname, resolution.target, lineno)
                    )
                    for category in _primitive_categories(
                        resolution.target, call
                    ):
                        primitives.append(
                            PrimitiveCall(qname, resolution.target,
                                          lineno, category)
                        )
                else:
                    unresolved.append(
                        UnresolvedCall(qname, resolution.target, lineno)
                    )
        return CallGraph(edges, external, primitives, unresolved)
