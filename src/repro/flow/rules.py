"""RPR6xx — whole-program dataflow rules.

Each rule here follows an invariant *across* function and module
boundaries using the call graph, which is exactly what the per-file
RPR1xx/RPR5xx rules cannot do:

* **RPR601** — interprocedural determinism taint. A sim-core function
  that calls a helper *outside* the core packages which (transitively)
  reads a clock, OS entropy, or an unseeded RNG has the same
  reproducibility bug RPR101–103 ban, laundered through one call hop.
  Also flags iteration over ``set`` literals/constructors in sim-core
  functions that produce output — unordered iteration order escaping
  into results is PYTHONHASHSEED-dependent.
* **RPR602** — transitive async-blocking. RPR501 bans ``time.sleep``
  lexically inside ``async def``; this pass bans it at *any* depth
  through a chain of synchronous helpers called (not dispatched to an
  executor) from a service coroutine.
* **RPR603** — cross-function fsync-before-rename. RPR502 checks one
  function at a time; this pass inlines the callee event streams so a
  durable-scope function that delegates its publish to a helper in a
  *non*-durable module still needs an ``os.fsync`` ordered before it.
* **RPR604** — await-interleaving race. Async methods of service
  classes that mutate shared instance state on *both sides* of an
  ``await`` can interleave with a concurrent handler between the
  mutations; all mutation is supposed to flow through the single-writer
  ``_handle`` seam.

Every pass is deterministic: functions are visited in sorted-qname
order, worklists are seeded sorted, and each finding is deduplicated on
a stable key — two runs over the same tree emit byte-identical reports.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.flow.callgraph import KIND_CALL, PrimitiveCall
from repro.flow.symbols import FunctionInfo
from repro.lint.registry import (
    SCOPE_DURABLE,
    SCOPE_SERVICE,
    SCOPE_SIM_CORE,
    register_flow,
)
from repro.lint.violation import Violation

__all__ = ["SINGLE_WRITER_SEAMS"]

#: Method names that are the sanctioned single-writer mutation seam:
#: calls to them are not counted as shared-state mutations by RPR604,
#: because the seam runs on exactly one consumer task by construction.
SINGLE_WRITER_SEAMS: Tuple[str, ...] = ("_handle",)

#: Inline depth cap for the RPR603 event splice (cycles are skipped
#: outright; this bounds pathological deep chains).
_INLINE_DEPTH = 12

#: Per-file code waiving a flow source site, by primitive category: a
#: ``noqa`` that already waives the lexical rule at the source line also
#: waives the interprocedural findings seeded by that line.
_SOURCE_WAIVERS = {
    "clock": ("RPR101", "RPR601"),
    "rng": ("RPR102", "RPR601"),
    "entropy": ("RPR103", "RPR601"),
    "blocking": ("RPR501", "RPR602"),
}


def _violation(
    analysis: Any, fn: FunctionInfo, line: int, code: str, message: str
) -> Violation:
    context = analysis.symtab.contexts[fn.module]
    return Violation(
        path=context.path,
        line=line,
        col=1,
        code=code,
        message=message,
        source=context.source_line(line),
    )


def _source_waived(
    analysis: Any, primitive: PrimitiveCall
) -> bool:
    """Whether the primitive's own site carries a waiving ``noqa``."""
    fn = analysis.symtab.functions[primitive.caller]
    path = analysis.symtab.contexts[fn.module].path
    return any(
        analysis.covers(path, code, primitive.lineno)
        for code in _SOURCE_WAIVERS.get(primitive.category, ())
    )


def _site(analysis: Any, primitive: PrimitiveCall) -> str:
    fn = analysis.symtab.functions[primitive.caller]
    path = analysis.symtab.contexts[fn.module].path
    return f"{path}:{primitive.lineno}"


def _reverse_reach(
    analysis: Any,
    direct: Dict[str, PrimitiveCall],
    kinds: Optional[Tuple[str, ...]] = None,
    sync_only: bool = False,
) -> Tuple[Dict[str, PrimitiveCall], Dict[str, str]]:
    """Reverse-BFS from primitive-holding functions.

    Returns ``(root_primitive, next_hop)``: for every function that can
    reach a primitive, the primitive it reaches and the first callee on
    one shortest path there (for rendering). Seeded and traversed in
    sorted order, so ties always break the same way.
    """
    graph = analysis.graph
    functions = analysis.symtab.functions
    reach: Dict[str, PrimitiveCall] = dict(direct)
    hop: Dict[str, str] = {}
    queue = deque(sorted(direct))
    while queue:
        current = queue.popleft()
        for edge in graph.callers(current):
            if kinds is not None and edge.kind not in kinds:
                continue
            caller = edge.caller
            if caller in reach:
                continue
            if sync_only and caller in functions and (
                functions[caller].is_async
            ):
                # Async callers are their own analysis roots; the chain
                # below them is what this reach set is for.
                continue
            reach[caller] = reach[current]
            hop[caller] = current
            queue.append(caller)
    return reach, hop


def _render_path(
    analysis: Any,
    start: str,
    hop: Dict[str, str],
    primitive: PrimitiveCall,
) -> str:
    parts = [start]
    current = start
    seen = {start}
    while current in hop:
        current = hop[current]
        if current in seen:
            break
        seen.add(current)
        parts.append(current)
    parts.append(f"{primitive.target} ({_site(analysis, primitive)})")
    return " -> ".join(parts)


# ---------------------------------------------------------------------
# RPR601 — interprocedural determinism taint
# ---------------------------------------------------------------------


def _body_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """All nodes executed by *node*'s own body (nested scopes skipped)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
             ast.Lambda),
        ):
            continue
        yield child
        yield from _body_nodes(child)


def _has_output(fn: FunctionInfo) -> bool:
    """Whether *fn* returns or yields a value (results can escape)."""
    for node in _body_nodes(fn.node):
        if isinstance(node, ast.Return) and node.value is not None:
            return True
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _set_iteration_lines(analysis: Any, fn: FunctionInfo) -> List[int]:
    """Lines in *fn* that iterate a set literal/constructor directly."""
    context = analysis.symtab.contexts[fn.module]

    def is_set_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Set):
            return True
        if isinstance(expr, ast.Call):
            return context.resolve(expr.func) in ("set", "frozenset")
        return False

    lines: List[int] = []
    for node in _body_nodes(fn.node):
        if isinstance(node, ast.For) and is_set_expr(node.iter):
            lines.append(node.iter.lineno)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)
        ):
            for comp in node.generators:
                if is_set_expr(comp.iter):
                    lines.append(comp.iter.lineno)
    return sorted(set(lines))


@register_flow(
    "RPR601",
    "interprocedural-determinism-taint",
    "sim-core call path reaches a nondeterminism source outside the core",
    scope=SCOPE_SIM_CORE,
    rationale=(
        "RPR101-103 see one file at a time, so a wall-clock read or "
        "unseeded RNG draw moved into a helper module outside the core "
        "packages silently re-enters the simulation through an innocent-"
        "looking call. The taint pass follows every call chain from "
        "sim-core functions and flags the boundary edge where core code "
        "first calls into a tainted non-core helper. Unordered set "
        "iteration feeding a function's output is flagged for the same "
        "reason: iteration order depends on PYTHONHASHSEED. Like RPR1xx, "
        "findings can never be baselined — fix or noqa with justification."
    ),
)
def check_determinism_taint(analysis: Any) -> Iterator[Violation]:
    """Flag sim-core → tainted-non-core boundary edges (+ set iteration)."""
    symtab = analysis.symtab
    direct: Dict[str, PrimitiveCall] = {}
    for qname in sorted(analysis.graph.primitives_by_caller):
        for primitive in analysis.graph.primitives_by_caller[qname]:
            if primitive.category not in ("clock", "entropy", "rng"):
                continue
            if _source_waived(analysis, primitive):
                continue
            direct.setdefault(qname, primitive)
            break
    reach, hop = _reverse_reach(analysis, direct)

    def is_core(qname: str) -> bool:
        fn = symtab.functions.get(qname)
        if fn is None:
            return False
        return symtab.contexts[fn.module].is_sim_core

    flagged: Set[Tuple[str, str]] = set()
    for qname in sorted(symtab.functions):
        if not is_core(qname):
            continue
        fn = symtab.functions[qname]
        for edge in analysis.graph.callees(qname):
            callee = edge.callee
            if callee not in reach or is_core(callee):
                continue
            key = (qname, callee)
            if key in flagged:
                continue
            flagged.add(key)
            primitive = reach[callee]
            path = _render_path(analysis, callee, hop, primitive)
            yield _violation(
                analysis, fn, edge.lineno, "RPR601",
                f"sim-core function {qname} calls {callee}, which "
                f"reaches nondeterministic {primitive.target}() "
                f"[{primitive.category}] outside the simulation core: "
                f"{path}; results must be a pure function of the seed",
            )
        if _has_output(fn):
            for line in _set_iteration_lines(analysis, fn):
                yield _violation(
                    analysis, fn, line, "RPR601",
                    f"sim-core function {qname} iterates a set while "
                    "producing output; set iteration order depends on "
                    "PYTHONHASHSEED and leaks into results — sort the "
                    "elements first",
                )


# ---------------------------------------------------------------------
# RPR602 — transitive async-blocking
# ---------------------------------------------------------------------


@register_flow(
    "RPR602",
    "transitive-blocking-in-async",
    "service coroutine reaches a blocking call through sync helpers",
    scope=SCOPE_SERVICE,
    rationale=(
        "RPR501 bans blocking calls lexically inside async def; wrapping "
        "the same time.sleep in a synchronous helper defeats it while "
        "stalling the event loop just as thoroughly. This pass follows "
        "plain (non-executor, non-task) call chains from every service "
        "coroutine into synchronous project helpers and flags the first "
        "hop whose subtree reaches a blocking primitive. Executor and "
        "task dispatches are exempt — that is the sanctioned pattern."
    ),
)
def check_transitive_blocking(analysis: Any) -> Iterator[Violation]:
    """Flag async→sync-helper edges whose subtree blocks."""
    symtab = analysis.symtab
    direct: Dict[str, PrimitiveCall] = {}
    for qname in sorted(analysis.graph.primitives_by_caller):
        fn = symtab.functions[qname]
        if fn.is_async:
            continue  # lexically-async blocking is RPR501's finding
        for primitive in analysis.graph.primitives_by_caller[qname]:
            if primitive.category != "blocking":
                continue
            if _source_waived(analysis, primitive):
                continue
            direct.setdefault(qname, primitive)
            break
    reach, hop = _reverse_reach(
        analysis, direct, kinds=(KIND_CALL,), sync_only=True
    )
    flagged: Set[Tuple[str, str]] = set()
    for qname in sorted(symtab.functions):
        fn = symtab.functions[qname]
        if not fn.is_async:
            continue
        if not symtab.contexts[fn.module].in_package("repro.service"):
            continue
        for edge in analysis.graph.callees(qname):
            if edge.kind != KIND_CALL:
                continue
            callee = symtab.functions.get(edge.callee)
            if callee is None or callee.is_async:
                continue
            if edge.callee not in reach:
                continue
            key = (qname, edge.callee)
            if key in flagged:
                continue
            flagged.add(key)
            primitive = reach[edge.callee]
            path = _render_path(analysis, edge.callee, hop, primitive)
            yield _violation(
                analysis, fn, edge.lineno, "RPR602",
                f"'async def {fn.name}' reaches blocking "
                f"{primitive.target}() through synchronous helpers: "
                f"{qname} -> {path}; the chain stalls the event loop — "
                "await an async equivalent or dispatch the helper via "
                "run_in_executor / asyncio.to_thread",
            )


# ---------------------------------------------------------------------
# RPR603 — cross-function fsync-before-rename
# ---------------------------------------------------------------------

#: Rename spellings followed across functions. ``os.replace`` is
#: included here (unlike RPR502): per-file it is RPR201's finding, but
#: a helper in a non-durable module publishing via os.replace without a
#: prior fsync in the *combined* sequence is exactly the cross-function
#: hole this pass exists to close.
_RENAME_TARGETS = ("os.replace", "os.rename", "shutil.move")
_RENAME_METHODS = frozenset({"rename", "replace"})


@dataclass(frozen=True)
class _PublishEvent:
    """One fsync or rename in a (possibly inlined) event stream."""

    kind: str  # "fsync" | "rename"
    label: str
    site_module: str
    site_line: int


def _rename_label(analysis: Any, fn: FunctionInfo,
                  call: ast.Call) -> Optional[str]:
    context = analysis.symtab.contexts[fn.module]
    resolved = context.resolve(call.func)
    if resolved in _RENAME_TARGETS:
        return resolved
    if resolved is not None:
        return None
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _RENAME_METHODS
        and len(call.args) == 1
        and not call.keywords
    ):
        return f".{func.attr}"
    return None


def _durable_module(analysis: Any, module: str) -> bool:
    context = analysis.symtab.contexts.get(module)
    if context is None:
        return False
    return context.in_package("repro.durable") or context.in_package(
        "repro.service"
    )


def _publish_events(
    analysis: Any,
    qname: str,
    memo: Dict[str, List[_PublishEvent]],
    stack: Set[str],
    depth: int,
) -> List[_PublishEvent]:
    """Flattened fsync/rename stream of *qname* and its call subtree."""
    cached = memo.get(qname)
    if cached is not None:
        return cached
    if qname in stack or depth > _INLINE_DEPTH:
        return []
    fn = analysis.symtab.functions.get(qname)
    if fn is None:
        return []
    stack.add(qname)
    events: List[_PublishEvent] = []
    for call, resolution in analysis.builder.resolve_calls(fn):
        if resolution.spawn != KIND_CALL:
            continue  # task/executor work is not ordered with this body
        if resolution.kind == "external" and resolution.target == "os.fsync":
            events.append(
                _PublishEvent("fsync", "os.fsync", fn.module, call.lineno)
            )
            continue
        label = _rename_label(analysis, fn, call)
        if label is not None:
            events.append(
                _PublishEvent("rename", label, fn.module, call.lineno)
            )
            continue
        if resolution.kind == "project":
            events.extend(
                _publish_events(analysis, resolution.target, memo,
                                stack, depth + 1)
            )
    stack.discard(qname)
    memo[qname] = events
    return events


@register_flow(
    "RPR603",
    "cross-function-unsynced-publish",
    "durable-state code reaches a rename with no fsync ordered before it",
    scope=SCOPE_DURABLE,
    rationale=(
        "RPR201/RPR502 check fsync-before-rename one function at a time, "
        "so a durable-layer function that delegates its publish to a "
        "helper in a non-durable module escapes both. This pass splices "
        "callee event streams into each durable-scope function and flags "
        "any helper-side rename with no fsync anywhere earlier in the "
        "combined order. Renames inside durable modules stay the per-"
        "file rules' findings and are not re-flagged here."
    ),
)
def check_cross_function_publish(analysis: Any) -> Iterator[Violation]:
    """Flag helper renames unordered after any fsync, per durable root."""
    symtab = analysis.symtab
    memo: Dict[str, List[_PublishEvent]] = {}
    flagged: Set[Tuple[str, str, int]] = set()
    for qname in sorted(symtab.functions):
        fn = symtab.functions[qname]
        if not _durable_module(analysis, fn.module):
            continue
        fsync_seen = False
        for call, resolution in analysis.builder.resolve_calls(fn):
            if resolution.spawn != KIND_CALL:
                continue
            if resolution.kind == "external" and (
                resolution.target == "os.fsync"
            ):
                fsync_seen = True
                continue
            if _rename_label(analysis, fn, call) is not None:
                continue  # direct renames are RPR201/RPR502 findings
            if resolution.kind != "project":
                continue
            for event in _publish_events(
                analysis, resolution.target, memo, set(), 1
            ):
                if event.kind == "fsync":
                    fsync_seen = True
                    continue
                if fsync_seen:
                    continue
                if _durable_module(analysis, event.site_module):
                    continue  # that module's own per-file finding
                key = (qname, event.site_module, event.site_line)
                if key in flagged:
                    continue
                flagged.add(key)
                yield _violation(
                    analysis, fn, call.lineno, "RPR603",
                    f"durable-scope function {qname} calls "
                    f"{resolution.target}, which publishes via "
                    f"{event.label}() ({event.site_module}:"
                    f"{event.site_line}) with no os.fsync ordered "
                    "before it anywhere on the path; a crash can "
                    "commit an empty or truncated state file",
                )


# ---------------------------------------------------------------------
# RPR604 — await-interleaving race
# ---------------------------------------------------------------------

_RaceEvent = Tuple[str, int, str]  # ("await"|"mut", lineno, attr name)


def _self_store_attr(target: ast.expr) -> Optional[str]:
    """Attr name if *target* stores into ``self`` state, else ``None``.

    Covers plain attribute stores (``self.x = …``), container-slot
    stores (``self.x[k] = …``), and either buried in tuple/list
    unpacking targets.
    """
    if isinstance(target, ast.Attribute) and isinstance(
        target.value, ast.Name
    ) and target.value.id == "self":
        return target.attr
    if isinstance(target, ast.Subscript):
        value = target.value
        if isinstance(value, ast.Attribute) and isinstance(
            value.value, ast.Name
        ) and value.value.id == "self":
            return value.attr
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            found = _self_store_attr(element)
            if found is not None:
                return found
    return None


def _direct_self_mutation(fn: FunctionInfo) -> bool:
    """Whether *fn*'s own body stores into ``self`` state."""
    for node in _body_nodes(fn.node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if _self_store_attr(target) is not None:
                return True
    return False


def _mutates_self(
    analysis: Any, qname: str, stack: Optional[Set[str]] = None
) -> bool:
    """Whether method *qname* mutates instance state, transitively.

    Follows plain calls into same-class methods (the hierarchy already
    resolved them); seam methods (:data:`SINGLE_WRITER_SEAMS`) are
    excluded — mutation through the seam is the sanctioned pattern.
    Memoised per analysis; cycles conservatively report ``False`` for
    the back edge (the cycle entry still reports its own stores).
    """
    memo: Dict[str, bool] = analysis.mutation_memo
    cached = memo.get(qname)
    if cached is not None:
        return cached
    if stack is None:
        stack = set()
    if qname in stack:
        return False
    fn = analysis.symtab.functions.get(qname)
    if fn is None or fn.class_qname is None:
        memo[qname] = False
        return False
    if _direct_self_mutation(fn):
        memo[qname] = True
        return True
    stack.add(qname)
    result = False
    for _call, resolution in analysis.builder.resolve_calls(fn):
        if resolution.kind != "project" or resolution.spawn != KIND_CALL:
            continue
        target = analysis.symtab.functions.get(resolution.target)
        if target is None or target.class_qname != fn.class_qname:
            continue
        if target.name in SINGLE_WRITER_SEAMS:
            continue
        if _mutates_self(analysis, resolution.target, stack):
            result = True
            break
    stack.discard(qname)
    memo[qname] = result
    return result


class _RaceWalker:
    """CFG-lite evaluator for mutation/await interleaving.

    State is ``(mutated, awaited_after_mutation)`` booleans, ``None``
    for a dead branch. Branches merge by union (either path may run);
    loops iterate their body to a small fixpoint so a mutation late in
    iteration *n* followed by an await early in iteration *n+1* is
    seen. The walk stops at the first finding — one violation per
    function is enough signal.
    """

    def __init__(self, analysis: Any, fn: FunctionInfo) -> None:
        self.analysis = analysis
        self.fn = fn
        self.context = analysis.symtab.contexts[fn.module]
        self.finding: Optional[Tuple[int, str]] = None

    # -- mutation classification --------------------------------------

    def _is_self_store(self, target: ast.expr) -> Optional[str]:
        """Attr name if *target* stores into ``self`` state."""
        return _self_store_attr(target)

    def _call_mutates(self, call: ast.Call) -> bool:
        """Whether *call* invokes a same-class method that mutates self."""
        fn = self.fn
        if fn.class_qname is None:
            return False
        resolution = self.analysis.builder.resolve_call(fn, call)
        if resolution.kind != "project" or resolution.spawn != KIND_CALL:
            return False
        target = self.analysis.symtab.functions.get(resolution.target)
        if target is None or target.class_qname != fn.class_qname:
            return False
        if target.name in SINGLE_WRITER_SEAMS:
            return False
        return _mutates_self(self.analysis, resolution.target)

    # -- expression event streams -------------------------------------

    def _expr_events(self, expr: ast.expr) -> List[_RaceEvent]:
        events: List[_RaceEvent] = []
        if isinstance(expr, ast.Lambda):
            return events
        if isinstance(expr, ast.Await):
            events.extend(self._expr_events(expr.value))
            if isinstance(expr.value, ast.Call) and self._call_mutates(
                expr.value
            ):
                events.append(("mut", expr.lineno, "<method>"))
            events.append(("await", expr.lineno, ""))
            return events
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                events.extend(self._expr_events(child))
        if isinstance(expr, ast.Call) and self._call_mutates(expr):
            events.append(("mut", expr.lineno, "<method>"))
        return events

    # -- state machine -------------------------------------------------

    def _apply(
        self,
        state: Optional[Tuple[bool, bool]],
        events: List[_RaceEvent],
    ) -> Optional[Tuple[bool, bool]]:
        if state is None:
            return None
        mutated, awaited = state
        for kind, lineno, name in events:
            if kind == "await":
                awaited = awaited or mutated
            else:
                if awaited and self.finding is None:
                    self.finding = (lineno, name)
                mutated = True
        return (mutated, awaited)

    @staticmethod
    def _merge(
        first: Optional[Tuple[bool, bool]],
        second: Optional[Tuple[bool, bool]],
    ) -> Optional[Tuple[bool, bool]]:
        if first is None:
            return second
        if second is None:
            return first
        return (first[0] or second[0], first[1] or second[1])

    def _stmt_events(self, stmt: ast.stmt) -> List[_RaceEvent]:
        """Linear events of a non-branching statement."""
        events: List[_RaceEvent] = []
        if isinstance(stmt, ast.Assign):
            events.extend(self._expr_events(stmt.value))
            for target in stmt.targets:
                name = self._is_self_store(target)
                if name is not None:
                    events.append(("mut", stmt.lineno, name))
        elif isinstance(stmt, ast.AugAssign):
            events.extend(self._expr_events(stmt.value))
            name = self._is_self_store(stmt.target)
            if name is not None:
                events.append(("mut", stmt.lineno, name))
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                events.extend(self._expr_events(stmt.value))
                name = self._is_self_store(stmt.target)
                if name is not None:
                    events.append(("mut", stmt.lineno, name))
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                events.extend(self._expr_events(stmt.value))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                name = self._is_self_store(target)
                if name is not None:
                    events.append(("mut", stmt.lineno, name))
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    events.extend(self._expr_events(child))
        return events

    def _run_body(
        self,
        body: List[ast.stmt],
        state: Optional[Tuple[bool, bool]],
    ) -> Optional[Tuple[bool, bool]]:
        for stmt in body:
            if state is None:
                return None
            state = self._run_stmt(stmt, state)
        return state

    def _run_stmt(
        self,
        stmt: ast.stmt,
        state: Optional[Tuple[bool, bool]],
    ) -> Optional[Tuple[bool, bool]]:
        if state is None:
            return None
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return state
        if isinstance(stmt, ast.Return):
            self._apply(state, self._stmt_events(stmt))
            return None
        if isinstance(stmt, (ast.Raise, ast.Break, ast.Continue)):
            return None
        if isinstance(stmt, ast.If):
            state = self._apply(state, self._expr_events(stmt.test))
            taken = self._run_body(stmt.body, state)
            skipped = self._run_body(stmt.orelse, state)
            return self._merge(taken, skipped)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head: List[_RaceEvent] = []
            if isinstance(stmt, ast.While):
                head = self._expr_events(stmt.test)
            else:
                head = self._expr_events(stmt.iter)
                if isinstance(stmt, ast.AsyncFor):
                    head.append(("await", stmt.lineno, ""))
            # Bounded fixpoint: run the body a few times so a mutation
            # at the bottom of one iteration meets an await at the top
            # of the next.
            merged = state
            for _ in range(4):
                loop_state = self._apply(merged, head)
                loop_state = self._run_body(stmt.body, loop_state)
                combined = self._merge(merged, loop_state)
                if combined == merged:
                    break
                merged = combined
            merged = self._apply(merged, head)  # final test/iter eval
            return self._run_body(stmt.orelse, merged)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            events: List[_RaceEvent] = []
            for item in stmt.items:
                events.extend(self._expr_events(item.context_expr))
            if isinstance(stmt, ast.AsyncWith):
                events.append(("await", stmt.lineno, ""))
            state = self._apply(state, events)
            state = self._run_body(stmt.body, state)
            if isinstance(stmt, ast.AsyncWith):
                state = self._apply(
                    state, [("await", stmt.lineno, "")]
                )
            return state
        if isinstance(stmt, ast.Try):
            after_body = self._run_body(stmt.body, state)
            merged = after_body
            for handler in stmt.handlers:
                # An exception can fire anywhere in the body, so the
                # handler starts from the body-entry state too.
                handled = self._run_body(handler.body, state)
                merged = self._merge(merged, handled)
            merged = self._merge(
                merged, self._run_body(stmt.orelse, after_body)
            )
            return self._run_body(stmt.finalbody, merged)
        return self._apply(state, self._stmt_events(stmt))

    def run(self) -> Optional[Tuple[int, str]]:
        self._run_body(list(self.fn.node.body), (False, False))
        return self.finding


@register_flow(
    "RPR604",
    "await-interleaving-race",
    "service state mutated on both sides of an await outside the seam",
    scope=SCOPE_SERVICE,
    rationale=(
        "Every await is a point where another handler coroutine can run "
        "on the same event loop. An async service method that mutates "
        "shared instance state, awaits, then mutates again has published "
        "a half-updated view to whatever interleaves — the class of race "
        "the single-writer _handle seam exists to prevent. Calls through "
        "the seam are exempt; everything else should either mutate only "
        "before its first await or route the mutation through the seam."
    ),
)
def check_await_interleaving(analysis: Any) -> Iterator[Violation]:
    """Flag async service methods mutating self across an await."""
    symtab = analysis.symtab
    for qname in sorted(symtab.functions):
        fn = symtab.functions[qname]
        if not fn.is_async or fn.class_qname is None:
            continue
        if not symtab.contexts[fn.module].in_package("repro.service"):
            continue
        finding = _RaceWalker(analysis, fn).run()
        if finding is None:
            continue
        lineno, name = finding
        what = (
            "instance state (via a mutating method call)"
            if name == "<method>"
            else f"attribute 'self.{name}'"
        )
        yield _violation(
            analysis, fn, lineno, "RPR604",
            f"'async def {fn.name}' mutates {what} after an await that "
            "followed an earlier mutation; a concurrent handler can "
            "observe or clobber the half-updated state between the two "
            "writes — mutate only before the first await, or route the "
            "write through the single-writer _handle seam",
        )
