"""The flow engine: build the analysis once, run every flow pass.

:func:`analyze` turns a :class:`~repro.flow.program.Program` into a
:class:`FlowAnalysis` — symbol table, call graph, and the shared
services the RPR6xx passes consume (suppression lookup, the memoised
mutation summary). :func:`run_flow` then executes every registered flow
rule (or a selected subset) over it and returns the surviving, sorted
violations plus the run's statistics.

Suppression filtering happens twice, deliberately: passes consult
:meth:`FlowAnalysis.covers` at *source sites* (a ``noqa[RPR101]`` on a
clock read also de-taints every interprocedural path seeded by it), and
the engine filters final findings at their *report sites* — so both the
cause and the boundary edge can be waived independently.

Telemetry: one guarded read per run, counters only, byte-identical
output when telemetry is disabled (the repository-wide contract).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.flow.callgraph import CallGraph, GraphBuilder
from repro.flow.program import Program
from repro.flow.symbols import SymbolTable
from repro.lint.registry import FlowRule, all_flow_rules
from repro.lint.violation import Violation
from repro.telemetry.context import current as telemetry_current

__all__ = ["FlowAnalysis", "FlowResult", "analyze", "run_flow"]


class FlowAnalysis:
    """Everything a flow pass needs, built once per run."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.symtab = SymbolTable(program)
        self.builder = GraphBuilder(self.symtab)
        self.graph: CallGraph = self.builder.build()
        #: Shared memo for the RPR604 mutation summary (rules module).
        self.mutation_memo: Dict[str, bool] = {}

    def covers(self, path: str, code: str, line: int) -> bool:
        """Whether a ``noqa``/``noqa-file`` waives *code* at *path:line*."""
        suppressions = self.program.suppressions_for(path)
        return suppressions is not None and suppressions.covers(code, line)


class FlowResult:
    """Outcome of one whole-program analysis run."""

    def __init__(
        self,
        violations: List[Violation],
        analysis: FlowAnalysis,
    ) -> None:
        self.violations = violations
        self.analysis = analysis
        graph = analysis.graph
        self.stats: Dict[str, int] = {
            "modules": len(analysis.symtab.contexts),
            "functions": len(analysis.symtab.functions),
            "classes": len(analysis.symtab.classes),
            "call_edges": len(graph.edges),
            "external_calls": len(graph.external),
            "primitive_calls": len(graph.primitives),
            "unresolved_calls": len(graph.unresolved),
            "findings": len(violations),
        }

    @property
    def ok(self) -> bool:
        """True when no flow findings survived suppression filtering."""
        return not self.violations


def analyze(program: Program) -> FlowAnalysis:
    """Build the whole-program analysis (symbols + call graph)."""
    return FlowAnalysis(program)


def run_flow(
    program: Program,
    rules: Optional[Sequence[FlowRule]] = None,
    analysis: Optional[FlowAnalysis] = None,
) -> FlowResult:
    """Run the flow passes over *program* and return the findings.

    Pass *analysis* to reuse an already-built graph (the CLI builds it
    once for both the passes and the export).
    """
    if analysis is None:
        analysis = analyze(program)
    active = all_flow_rules() if rules is None else list(rules)
    found: List[Violation] = []
    for rule in active:
        for violation in rule.check(analysis):
            if analysis.covers(
                violation.path, violation.code, violation.line
            ):
                continue
            found.append(violation)
    result = FlowResult(sorted(found), analysis)
    tel = telemetry_current()
    if tel is not None and tel.metrics is not None:
        tel.metrics.counter("flow_runs_total").inc()
        tel.metrics.counter("flow_modules_total").inc(
            result.stats["modules"]
        )
        tel.metrics.counter("flow_functions_total").inc(
            result.stats["functions"]
        )
        tel.metrics.counter("flow_call_edges_total").inc(
            result.stats["call_edges"]
        )
        tel.metrics.counter("flow_unresolved_calls_total").inc(
            result.stats["unresolved_calls"]
        )
        tel.metrics.counter("flow_findings_total").inc(
            result.stats["findings"]
        )
    return result
