"""repro.flow — whole-program call-graph and dataflow analysis.

The per-file linter (:mod:`repro.lint`) checks one module at a time;
this package parses the tree once (sharing the same
:class:`~repro.lint.engine.LoadedModule` objects), resolves imports
into a project symbol table, builds a call graph — method calls
resolved through the class hierarchy, ``asyncio`` task and executor
dispatches tracked as their own edge kinds — and runs interprocedural
passes (the RPR6xx rule family) over it:

* RPR601 — sim-core call paths reaching nondeterminism sources
* RPR602 — service coroutines reaching blocking calls through helpers
* RPR603 — durable-state renames with no fsync ordered before them
* RPR604 — service state mutated on both sides of an ``await``

Entry points: ``repro-cli lint --flow`` (combined with the per-file
rules, one parse), :func:`~repro.flow.engine.run_flow`
programmatically, and the exporters in :mod:`repro.flow.export` for the
call-graph JSON/DOT artifacts CI uploads.
"""

from repro.flow.engine import FlowAnalysis, FlowResult, analyze, run_flow
from repro.flow.export import callgraph_dot, callgraph_json
from repro.flow.program import Program, load_program

__all__ = [
    "FlowAnalysis",
    "FlowResult",
    "Program",
    "analyze",
    "callgraph_dot",
    "callgraph_json",
    "load_program",
    "run_flow",
]
