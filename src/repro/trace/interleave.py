"""Deterministic interleaving of labelled traces.

Offline analyses (and some tests) need a merged view of several cores'
streams with controllable granularity — the closed-loop simulator does this
implicitly through its virtual clock, but standalone signature studies use
these helpers.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.trace.record import LabelledTrace
from repro.utils.validation import require_positive

__all__ = ["round_robin", "proportional"]


def round_robin(
    traces: Sequence[LabelledTrace], chunk: int = 64
) -> List[LabelledTrace]:
    """Interleave traces in fixed-size chunks, round-robin.

    Returns a list of chunk-sized :class:`LabelledTrace` pieces in merged
    order (sources preserved), continuing until every input is exhausted.
    """
    require_positive(chunk, "chunk")
    if not traces:
        raise WorkloadError("round_robin needs at least one trace")
    positions = [0] * len(traces)
    merged: List[LabelledTrace] = []
    while True:
        progressed = False
        for i, trace in enumerate(traces):
            start = positions[i]
            if start >= len(trace):
                continue
            piece = trace.slice(start, start + chunk)
            positions[i] = start + len(piece)
            merged.append(piece)
            progressed = True
        if not progressed:
            return merged


def proportional(
    traces: Sequence[LabelledTrace],
    rates: Sequence[float],
    chunk: int = 64,
) -> List[LabelledTrace]:
    """Interleave traces with per-source issue rates.

    A source with twice the rate contributes chunks twice as often —
    approximating cores running at different effective speeds. Uses a
    deterministic largest-deficit-first schedule.
    """
    require_positive(chunk, "chunk")
    if len(traces) != len(rates) or not traces:
        raise WorkloadError("traces and rates must align and be non-empty")
    rate_arr = np.asarray(rates, dtype=np.float64)
    if (rate_arr <= 0).any():
        raise WorkloadError("rates must be positive")
    positions = [0] * len(traces)
    credit = np.zeros(len(traces), dtype=np.float64)
    merged: List[LabelledTrace] = []
    # Smooth weighted round-robin: grow credits by rate, emit the richest
    # live source, charge it the total rate mass of live sources.
    while True:
        live = np.array(
            [positions[i] < len(t) for i, t in enumerate(traces)], dtype=bool
        )
        if not live.any():
            return merged
        credit[live] += rate_arr[live]
        masked = np.where(live, credit, -np.inf)
        i = int(np.argmax(masked))
        credit[i] -= float(rate_arr[live].sum())
        start = positions[i]
        piece = traces[i].slice(start, start + chunk)
        positions[i] = start + len(piece)
        merged.append(piece)
