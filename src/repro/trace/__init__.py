"""Trace containers and offline interleaving helpers."""

from repro.trace.interleave import proportional, round_robin
from repro.trace.record import LabelledTrace, windows

__all__ = ["proportional", "round_robin", "LabelledTrace", "windows"]
