"""Trace containers: labelled block-address streams.

These are used when driving the signature unit or a cache *offline* —
without the full closed-loop simulator — e.g. in the Figure 2/5 time-series
harnesses and in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.utils.validation import require_positive
from repro.workloads.base import BLOCK_BYTES

__all__ = ["LabelledTrace", "windows"]


@dataclass(frozen=True)
class LabelledTrace:
    """A block-address trace attributed to one requester (core or process).

    Attributes
    ----------
    source:
        Core/process identifier the accesses originate from.
    blocks:
        int64 array of block addresses, in program order.
    """

    source: int
    blocks: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.blocks, dtype=np.int64)
        object.__setattr__(self, "blocks", arr)
        if self.source < 0:
            raise WorkloadError(f"source must be >= 0, got {self.source}")

    def __len__(self) -> int:
        return len(self.blocks)

    def byte_addresses(self) -> np.ndarray:
        """Block addresses expanded to (line-aligned) byte addresses."""
        return self.blocks * BLOCK_BYTES

    def slice(self, start: int, stop: int) -> "LabelledTrace":
        """A sub-trace covering ``[start, stop)``."""
        return LabelledTrace(source=self.source, blocks=self.blocks[start:stop])


def windows(trace: LabelledTrace, window: int) -> Iterator[LabelledTrace]:
    """Split a trace into consecutive fixed-size windows (last may be short)."""
    require_positive(window, "window")
    for start in range(0, len(trace), window):
        yield trace.slice(start, start + window)
