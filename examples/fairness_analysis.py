#!/usr/bin/env python
"""Scenario: is the symbiotic schedule fair, or does it sacrifice someone?

The paper claims its policies "improve performance while providing
fairness across workloads" but never quantifies fairness. This script
measures it: per-job slowdowns versus solo execution under every mapping
of a contentious mix, with Jain's index over normalised progress and the
max/min slowdown spread.

Run:  python examples/fairness_analysis.py  [--fast]
"""

import sys

from repro.alloc import WeightedInterferenceGraphPolicy
from repro.analysis.fairness import fairness_report, slowdowns
from repro.perf import core2duo, run_solo, two_phase
from repro.utils.tables import format_table

MIX = ["mcf", "povray", "libquantum", "gobmk"]


def main(fast: bool = False) -> None:
    machine = core2duo()
    instructions = 2_000_000 if fast else 6_000_000
    result = two_phase(
        machine,
        MIX,
        WeightedInterferenceGraphPolicy(seed=5),
        instructions=instructions,
        seed=5,
        phase1_min_wall=60_000_000.0 if fast else 160_000_000.0,
    )
    solo = {
        name: run_solo(machine, name, instructions=instructions, seed=5).user_time(name)
        for name in MIX
    }

    rows = []
    reports = {}
    for mapping, times in result.mapping_times.items():
        sd = slowdowns(times, solo)
        reports[mapping] = fairness_report(times, solo)
        marker = " <- chosen" if mapping == result.chosen_mapping else ""
        rows.append(
            [
                str(mapping) + marker,
                reports[mapping]["jain_index"],
                reports[mapping]["unfairness"],
                max(sd, key=sd.get),
                reports[mapping]["max_slowdown"],
            ]
        )
    print(f"mix: {', '.join(MIX)}\n")
    print(
        format_table(
            ["mapping", "Jain index", "unfairness", "worst-hit job", "its slowdown"],
            rows,
            title="fairness per mapping (vs solo execution)",
            float_digits=3,
        )
    )
    chosen = reports[result.chosen_mapping]
    fairest = max(reports.values(), key=lambda r: r["jain_index"])
    if chosen["jain_index"] >= fairest["jain_index"] - 1e-6:
        print(
            "\nReading: the symbiotic (chosen) schedule is also the fairest "
            "mapping —\nco-locating the heavy interferers protects the victim "
            "without punishing anyone,\nsupporting the paper's unquantified "
            "fairness claim."
        )
    else:
        print(
            "\nReading: at this (reduced) scale the chosen schedule is not the "
            "fairest\nmapping — phase-1 signatures need the full budget to "
            "separate the candidates\n(rerun without --fast); the fairest "
            "mapping above shows what the policy aims for."
        )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
