#!/usr/bin/env python
"""Scenario: symbiotic vcpu placement on a Xen-like hypervisor.

Four single-benchmark VMs share a Core 2 Duo (the paper's Section 4.2
virtualized setup). The Dom0 control domain queries per-VM Bloom-filter
signatures over the hypercall interface and pins vcpus; the script
compares the chosen placement against the best/worst static mappings and
shows the virtualization-dampened improvements of Figure 11.

Run:  python examples/vm_scheduling.py  [--fast]
"""

import sys

from repro.alloc import WeightedInterferenceGraphPolicy
from repro.perf import core2duo
from repro.utils.tables import format_percent, format_table
from repro.virt import VirtualizationOverhead, vm_two_phase

MIX = ["mcf", "povray", "libquantum", "gobmk"]


def main(fast: bool = False) -> None:
    machine = core2duo()
    overhead = VirtualizationOverhead()
    result = vm_two_phase(
        machine,
        MIX,
        WeightedInterferenceGraphPolicy(),
        instructions=2_000_000 if fast else 6_000_000,
        overhead=overhead,
        phase1_min_wall=60_000_000.0 if fast else 160_000_000.0,
        seed=3,
    )

    print(f"VMs: {', '.join(MIX)}  (one benchmark per VM, plus Dom0)")
    print(
        f"overhead model: CPI x{overhead.cpi_multiplier}, "
        f"+{overhead.per_access_cycles:.0f} cycles/L2-ref, "
        f"+{overhead.vm_switch_cycles:.0f} cycles/world-switch"
    )
    print(f"Dom0 decisions: {len(result.decisions)}")
    print(f"chosen vcpu placement: {result.chosen_mapping}\n")

    rows = [
        [
            name,
            machine.seconds(result.worst_time(name)),
            machine.seconds(result.chosen_time(name)),
            format_percent(result.improvement(name)),
        ]
        for name in MIX
    ]
    print(
        format_table(
            ["VM", "worst (s)", "chosen (s)", "improvement"],
            rows,
            title="per-VM user time (simulated seconds)",
            float_digits=4,
        )
    )
    print(
        "\nReading: improvements are smaller than the native run of the "
        "same mix\n(examples/native_consolidation.py) — the paper's Figure "
        "11 observation — but\nthe ordering of winners is preserved."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
