#!/usr/bin/env python
"""Scenario: consolidating four batch jobs on a dual-core server.

The situation the paper's introduction motivates: an operator packs four
SPEC-like jobs onto one Core 2 Duo. The OS's default placement can put two
cache-incompatible jobs on opposite cores, slowing both; this script runs
the paper's full two-phase methodology and shows what the symbiotic
schedule buys for each job, against the best and worst possible mappings.

Run:  python examples/native_consolidation.py  [--fast]
"""

import sys

from repro.alloc import WeightedInterferenceGraphPolicy
from repro.perf import core2duo, two_phase
from repro.utils.tables import format_percent, format_table

MIX = ["mcf", "povray", "libquantum", "gobmk"]


def main(fast: bool = False) -> None:
    machine = core2duo()
    instructions = 2_000_000 if fast else 6_000_000
    result = two_phase(
        machine,
        MIX,
        WeightedInterferenceGraphPolicy(),
        instructions=instructions,
        phase1_min_wall=60_000_000.0 if fast else 160_000_000.0,
        seed=3,
    )

    print(f"mix: {', '.join(MIX)}")
    print(f"phase-1 allocator decisions: {len(result.decisions)}")
    print(f"chosen schedule:  {result.chosen_mapping}")
    print(f"default schedule: {result.default_mapping}\n")

    rows = []
    for name in MIX:
        rows.append(
            [
                name,
                machine.seconds(result.worst_time(name)),
                machine.seconds(result.chosen_time(name)),
                machine.seconds(result.best_time(name)),
                format_percent(result.improvement(name)),
                format_percent(result.oracle_improvement(name)),
            ]
        )
    print(
        format_table(
            [
                "job",
                "worst (s)",
                "chosen (s)",
                "best (s)",
                "improvement",
                "oracle",
            ],
            rows,
            title="user time per mapping (simulated seconds)",
            float_digits=4,
        )
    )
    print(
        "\nReading: 'improvement' is the chosen schedule's gain over each "
        "job's worst-case mapping\n(the paper's Figure 10 metric); 'oracle' "
        "is the best any policy could have achieved."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
