#!/usr/bin/env python
"""Quickstart: Bloom-filter cache signatures in five minutes.

Builds the paper's core pipeline by hand, at a small scale:

1. a shared L2 cache with the split-CBF signature unit attached,
2. two synthetic workloads driving it from different cores,
3. the per-quantum signature sample (RBV / occupancy / symbiosis),
4. one allocation decision from the weighted interference-graph policy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cache import SetAssociativeCache, tiny_cache
from repro.core import SignatureConfig, SignatureUnit
from repro.perf import build_tasks, core2duo, run_mix
from repro.alloc import UserLevelMonitor, WeightedInterferenceGraphPolicy
from repro.perf.runner import default_signature_config
from repro.sched.os_model import SchedulerConfig


def manual_signature_demo() -> None:
    """Drive the signature hardware directly (no simulator)."""
    print("=" * 64)
    print("1. The signature hardware, by hand")
    print("=" * 64)
    cache = SetAssociativeCache(tiny_cache(sets=64, ways=4), num_cores=2)
    sig = SignatureUnit(SignatureConfig(num_cores=2, num_sets=64, ways=4))

    rng = np.random.default_rng(0)
    # Core 0 runs a small-footprint task; core 1 a larger streaming one
    # (kept below cache capacity so both footprints stay resident).
    small = rng.integers(0, 32, 2000)
    stream = np.arange(180) + 10_000

    for blocks, core in [(small, 0), (stream, 1)]:
        result = cache.access_batch(core, blocks)
        sig.record_events(
            core,
            result.fills,
            result.fill_slots,
            result.evictions,
            result.evict_slots,
            result.evict_fill_pos,
        )

    for core in (0, 1):
        sample = sig.on_context_switch(core)
        print(
            f"core {core}: occupancy weight = {sample.occupancy:4d}   "
            f"symbiosis with cores = {sample.symbiosis}"
        )
    print("-> the streaming task's footprint dwarfs the small task's;")
    print("   symbiosis quantifies how much their footprints collide.\n")


def scheduling_demo() -> None:
    """Run the full phase-1 pipeline on the paper's Core 2 Duo model."""
    print("=" * 64)
    print("2. Phase-1 signature gathering + allocation decision")
    print("=" * 64)
    machine = core2duo()
    # A classic incompatible mix: two cache-hungry tasks, two light ones.
    tasks = build_tasks(
        ["mcf", "povray", "libquantum", "gobmk"], instructions=1_500_000
    )
    monitor = UserLevelMonitor(
        WeightedInterferenceGraphPolicy(), interval_cycles=8_000_000.0
    )
    result = run_mix(
        machine,
        tasks,
        monitor=monitor,
        signature_config=default_signature_config(machine),
        scheduler_config=SchedulerConfig(
            num_cores=2, timeslice_cycles=8_000_000.0, context_smoothing=0.6
        ),
        min_wall_cycles=80_000_000.0,
    )
    names = {t.tid: t.name for t in tasks}

    def fmt(mapping):
        return " | ".join(
            "{" + ",".join(names[i] for i in sorted(g)) + "}"
            for g in mapping.groups
        )

    print(f"allocator invocations: {len(result.decisions)}")
    if result.majority_mapping:
        print(f"majority decision:     {fmt(result.majority_mapping)}")
        print("-> the policy herds the two heavy cache users onto one core,")
        print("   so they timeshare instead of thrashing each other.")
    for task in result.tasks:
        print(
            f"  {task.name:11s} completions={task.completions:2d} "
            f"user time={machine.seconds(task.user_cycles)*1e3:7.2f} ms-equivalent"
        )


if __name__ == "__main__":
    manual_signature_demo()
    scheduling_demo()
