#!/usr/bin/env python
"""Scenario: choosing the Bloom-filter hash function (paper Section 5.3).

Compares the four indexing schemes — XOR folding, XOR-inverse-reverse,
modulo, and presence bits — on two axes:

1. signature *fidelity*: how well each scheme's occupancy weight tracks
   the true per-core resident footprint under contention, and how fast
   the bit vector saturates;
2. the saturation argument for k=1: adding hash functions fills a
   line-count-sized filter and destroys the signal.

Run:  python examples/hash_function_study.py
"""

import numpy as np

from repro.cache import SetAssociativeCache, tiny_cache
from repro.core import SignatureConfig, SignatureUnit
from repro.utils.tables import format_table
from repro.workloads.patterns import HotColdGenerator, StreamGenerator


def drive(unit: SignatureUnit, cache: SetAssociativeCache, steps: int = 40):
    """Interleave a reusing task (core 0) and a streaming task (core 1)."""
    reuser = HotColdGenerator(3000, 1500, hot_fraction=0.9, seed=1)
    streamer = StreamGenerator(1 << 22, base_block=1 << 24, seed=2)
    errors = []
    for _ in range(steps):
        for core, gen in ((0, reuser), (1, streamer)):
            blocks = gen.next_batch(512)
            r = cache.access_batch(core, blocks)
            unit.record_events(
                core, r.fills, r.fill_slots, r.evictions, r.evict_slots,
                r.evict_fill_pos,
            )
        true_resident = int(cache.occupancy_by_core()[0])
        measured = unit.core_occupancy(0)
        errors.append(abs(measured - true_resident) / max(true_resident, 1))
    return float(np.mean(errors)), unit.core_filters[1].popcount() / unit.num_entries


def main() -> None:
    rows = []
    for kind in ["xor", "xor_inverse_reverse", "modulo", "presence"]:
        cache = SetAssociativeCache(tiny_cache(sets=512, ways=8), num_cores=2)
        unit = SignatureUnit(
            SignatureConfig(num_cores=2, num_sets=512, ways=8, hash_kind=kind)
        )
        err, streamer_fill = drive(unit, cache)
        rows.append([kind, err, streamer_fill])
    print(
        format_table(
            ["indexing scheme", "footprint tracking error", "streamer CF fill"],
            rows,
            title="Section 5.3: hash schemes under contention",
            float_digits=3,
        )
    )

    rows = []
    for k in [1, 2, 4]:
        unit = SignatureUnit(
            SignatureConfig(num_cores=1, num_sets=512, ways=8, num_hashes=k,
                            counter_bits=8)
        )
        blocks = np.random.default_rng(0).integers(0, 1 << 22, 3000)
        unit.record_fill_batch(0, blocks)
        rows.append([k, unit.core_occupancy(0) / unit.num_entries])
    print()
    print(
        format_table(
            ["hash functions (k)", "filter fill fraction"],
            rows,
            title="why the paper uses k=1: multiple hashes saturate the filter",
            float_digits=3,
        )
    )
    print(
        "\nReading: the three hash schemes track comparably; presence bits "
        "are exact but\n(being 1:1 with lines) saturate for heavy users, "
        "and k>1 fills the filter —\nboth of which destroy the scheduling "
        "signal (paper Figure 14)."
    )


if __name__ == "__main__":
    main()
