#!/usr/bin/env python
"""Scenario: thread-aware two-phase allocation for PARSEC-like apps.

Two four-thread applications share a Core 2 Duo. Naive interference-graph
allocation would read intra-process data *sharing* as interference and
scatter sibling threads; the paper's two-phase algorithm (Section 3.3.4)
first groups each process's threads by occupancy weight, then runs the
weighted interference MIN-CUT with those groups pinned.

Run:  python examples/multithreaded_parsec.py  [--fast]
"""

import sys

from repro.perf import core2duo
from repro.perf.experiment import parsec_two_phase
from repro.utils.tables import format_percent, format_table

MIX = ["ferret", "streamcluster", "blackscholes", "bodytrack"]


def main(fast: bool = False) -> None:
    machine = core2duo()
    result = parsec_two_phase(
        machine,
        MIX,
        instructions_per_thread=800_000 if fast else 2_000_000,
        seed=3,
        phase1_min_wall=60_000_000.0 if fast else 160_000_000.0,
    )

    print(f"applications: {', '.join(MIX)}  (4 threads each, 16 tasks on 2 cores)")
    print(f"phase-1 decisions: {len(result.decisions)}")
    print(f"chosen thread placement: {result.chosen_mapping}\n")

    rows = [
        [
            name,
            machine.seconds(result.worst_time(name)),
            machine.seconds(result.chosen_time(name)),
            format_percent(result.improvement(name)),
        ]
        for name in MIX
    ]
    print(
        format_table(
            ["application", "worst (s)", "chosen (s)", "improvement"],
            rows,
            title="per-application user time (slowest thread, simulated s)",
            float_digits=4,
        )
    )
    print(
        "\nReading: gains are modest relative to the single-threaded mixes "
        "— the paper's\nFigure 12 observation (PARSEC working sets are "
        "smaller and more compute-bound)."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
